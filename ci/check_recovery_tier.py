#!/usr/bin/env python3
"""Gate the tiered recovery ladder: peer RAM replicas before disk.

Reads three ucp-chaos-v1 reports from the chaos-smoke job:

  * a hot sweep (--hot-replicas K, one fault per cell) where every
    single-rank kill after the first save boundary MUST recover from the
    surviving peers' in-memory replicas ("peer"), never touching disk;
  * a multi-fault sweep (--faults-per-cell > K) where the lost set
    exceeds the replication factor, so every cell MUST fall back to the
    committed disk checkpoint ("disk") — still bitwise-equal;
  * the plain disk sweep (no hot tier) as the latency baseline.

Every cell must already be ok (bitwise-equal losses, fsck-clean tree,
exactly one restart) — the chaos tool fails cells that recover from the
wrong tier, and this gate re-asserts the per-cell source so a report
regression cannot slip through. On top of that it checks the tier's
point: the median peer recovery must be faster than the median disk
recovery, because the RAM path skips the convert pass and every
checkpoint read.

The companion metrics reports prove the supervisor's counters agree with
the journal-derived reports: the hot sweep counts only
recovery/source_peer, the multi-fault sweep only recovery/fallback_disk,
and no replica was ever rejected for a CRC mismatch.

Usage: check_recovery_tier.py HOT_report HOT_metrics MULTI_report \
           MULTI_metrics DISK_report table.md
"""

import json
import statistics
import sys


def load_report(path):
    with open(path) as f:
        report = json.load(f)
    assert report["schema"] == "ucp-chaos-v1", f"{path}: bad schema tag"
    assert report["cells"], f"{path}: empty cell matrix"
    assert report["failed"] == 0, f"{path}: {report['failed']} chaos cell(s) failed"
    return report


def load_counters(path):
    with open(path) as f:
        metrics = json.load(f)
    assert metrics["schema"] == "ucp-metrics-v1", f"{path}: bad schema tag"
    return {c["name"]: c["value"] for c in metrics["counters"]}


def check_cells(report, path, want_source, want_faults):
    """Assert every cell recovered once, correctly, from `want_source`."""
    times = []
    for cell in report["cells"]:
        label = f"{path}: step {cell['kill_step']} {cell['kind']} -> {cell['target']}"
        assert cell["ok"], f"{label}: not ok: {cell.get('error')}"
        assert cell["restarts"] == 1, f"{label}: expected exactly one restart"
        assert cell["bitwise_equal"], f"{label}: recovered losses diverged"
        assert cell["fsck_clean"], f"{label}: checkpoint tree not fsck-clean"
        assert cell["faults"] == want_faults, \
            f"{label}: expected {want_faults} fault(s), got {cell['faults']}"
        assert cell["recovery_source"] == want_source, \
            f"{label}: recovered from {cell['recovery_source']}, want {want_source}"
        assert cell["recovery_ms"] is not None, f"{label}: no recovery_ms"
        times.append(cell["recovery_ms"])
    return times


def main(hot_report_path, hot_metrics_path, multi_report_path,
         multi_metrics_path, disk_report_path, table_path):
    hot = load_report(hot_report_path)
    multi = load_report(multi_report_path)
    disk = load_report(disk_report_path)

    k = hot["hot_replicas"]
    assert k is not None and k >= 1, f"{hot_report_path}: hot tier not armed"
    assert multi["hot_replicas"] == k, f"{multi_report_path}: hot tier not armed"
    assert multi["faults_per_cell"] > k, (
        f"{multi_report_path}: {multi['faults_per_cell']} fault(s) per cell does "
        f"not exceed K={k}; nothing forces the disk fallback")
    assert disk["hot_replicas"] is None, \
        f"{disk_report_path}: baseline must run without the hot tier"

    hot_ms = check_cells(hot, hot_report_path, "peer", hot["faults_per_cell"])
    multi_ms = check_cells(multi, multi_report_path, "disk", multi["faults_per_cell"])
    disk_ms = check_cells(disk, disk_report_path, "disk", disk["faults_per_cell"])

    # The supervisor's counters must tell the same story as the journals.
    hot_counters = load_counters(hot_metrics_path)
    assert hot_counters.get("recovery/source_peer", 0) == len(hot_ms), \
        f"{hot_metrics_path}: recovery/source_peer != {len(hot_ms)} cells"
    assert hot_counters.get("recovery/fallback_disk", 0) == 0, \
        f"{hot_metrics_path}: a hot cell silently fell back to disk"
    for name in ("hot/replica_rejected", "hot/replica_errors"):
        assert hot_counters.get(name, 0) == 0, \
            f"{hot_metrics_path}: {name} = {hot_counters.get(name)}"
    multi_counters = load_counters(multi_metrics_path)
    assert multi_counters.get("recovery/fallback_disk", 0) == len(multi_ms), \
        f"{multi_metrics_path}: recovery/fallback_disk != {len(multi_ms)} cells"
    assert multi_counters.get("recovery/source_peer", 0) == 0, \
        f"{multi_metrics_path}: a beyond-K lost set recovered from peers"

    hot_med = statistics.median(hot_ms)
    disk_med = statistics.median(disk_ms)
    multi_med = statistics.median(multi_ms)

    rows = [
        "| sweep | cells | faults/cell | source | median recovery (ms) | worst (ms) |",
        "|---|---|---|---|---|---|",
        f"| hot tier (K={k}) | {len(hot_ms)} | {hot['faults_per_cell']} | peer "
        f"| {hot_med:.0f} | {max(hot_ms)} |",
        f"| beyond-K fallback (K={k}) | {len(multi_ms)} | {multi['faults_per_cell']} "
        f"| disk | {multi_med:.0f} | {max(multi_ms)} |",
        f"| disk baseline (no hot tier) | {len(disk_ms)} | {disk['faults_per_cell']} "
        f"| disk | {disk_med:.0f} | {max(disk_ms)} |",
    ]
    with open(table_path, "w") as f:
        f.write("\n".join(rows) + "\n")

    print(f"peer recovery median {hot_med:.0f} ms over {len(hot_ms)} cell(s); "
          f"disk baseline median {disk_med:.0f} ms; "
          f"beyond-K fallback median {multi_med:.0f} ms")
    assert hot_med < disk_med, (
        f"peer-memory recovery ({hot_med:.0f} ms median) is not faster than the "
        f"disk path it shadows ({disk_med:.0f} ms median): the hot tier is not "
        f"pulling its weight")
    print("recovery-tier gate ok")


if __name__ == "__main__":
    main(*sys.argv[1:7])
