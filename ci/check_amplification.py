#!/usr/bin/env python3
"""Gate read amplification on the ranged load path (Fig. 13).

Reads the ucp-metrics-v1 report the load-scaling bench writes, checks
every target's ranged path reads at most 1.15x the bytes it needs and
strictly less than the full path, and that DP-replica targets hit the
session atom cache. Writes a per-target markdown table (second argument)
for the CI job summary.

Usage: check_amplification.py BENCH_load.json fig13_table.md
"""

import json
import sys


def main(report_path: str, table_path: str) -> None:
    with open(report_path) as f:
        report = json.load(f)
    assert report["schema"] == "ucp-metrics-v1", "bad schema tag"
    counters = {c["name"]: c["value"] for c in report["counters"]}
    targets = sorted({n.split("/")[1] for n in counters if n.startswith("load/")})
    assert targets, f"{report_path} has no load targets"

    rows = ["| target | ranged read | needed | amplification | full read |",
            "|---|---|---|---|---|"]
    for t in targets:
        read = counters[f"load/{t}/ranged_bytes_read"]
        needed = counters[f"load/{t}/ranged_bytes_needed"]
        full = counters[f"load/{t}/full_bytes_read"]
        ratio = read / max(needed, 1)
        rows.append(f"| {t} | {read} B | {needed} B | {ratio:.3f}x | {full} B |")
        print(f"{t}: ranged reads {read} B for {needed} B needed "
              f"({ratio:.3f}x), full path reads {full} B")
        assert ratio <= 1.15, \
            f"{t}: ranged path reads {ratio:.3f}x the needed bytes (gate: 1.15)"
        assert read < full, \
            f"{t}: ranged path ({read} B) should read less than full ({full} B)"
    dp_heavy = [t for t in targets if counters[f"load/{t}/tp"] == 1]
    for t in dp_heavy:
        assert counters[f"load/{t}/cache_hits"] > 0, \
            f"{t}: DP replicas should hit the session atom cache"

    with open(table_path, "w") as f:
        f.write("\n".join(rows) + "\n")
    print(f"read-amplification gate ok over {len(targets)} targets")


if __name__ == "__main__":
    main(sys.argv[1], sys.argv[2])
