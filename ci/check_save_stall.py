#!/usr/bin/env python3
"""Gate the training stall added by the born-universal save pipeline.

Reads two ucp-metrics-v1 reports from overlapped training runs — a
baseline with the universal save pipeline disabled (native checkpoints
only) and a run with the pipeline on — and compares the time training
actually blocks on checkpointing: the snapshot copy, the drain of the
previous background writer, and the marker publish. Atom assembly runs on
the background writer threads, so turning the pipeline on may grow the
blocking total by at most 10% plus an absolute noise slack.

Also sanity-checks that the pipeline run really ran the pipeline (its
assembly spans and atom counters are present and non-zero) and merges
both runs' stall numbers into BENCH_ci.json when asked.

Usage: check_save_stall.py baseline.json pipeline.json table.md [BENCH_ci.json]
"""

import json
import sys

# Spans on the training critical path: everything else about a save runs
# on the background writer threads. The end-of-run writer join
# (save/final_drain) is shutdown latency — there is no training left to
# overlap with — so it is reported but not gated.
BLOCKING_SPANS = ("save/snapshot", "save/drain", "save/publish")
# Spans that prove the pipeline ran (all on the writer threads).
PIPELINE_SPANS = ("save/exchange", "save/assemble", "save/atoms", "save/manifest",
                  "save/publish_universal")
REL_SLACK = 1.10  # pipeline blocking may be at most 10% over baseline...
ABS_SLACK = 0.25  # ...plus this many seconds, since tiny CI runs are noise-bound


def load(path):
    with open(path) as f:
        report = json.load(f)
    assert report["schema"] == "ucp-metrics-v1", f"{path}: bad schema tag"
    spans = {s["path"]: s["total_secs"] for s in report["spans"]}
    counters = {c["name"]: c["value"] for c in report["counters"]}
    return report, spans, counters


def blocking_total(spans, path):
    missing = [s for s in BLOCKING_SPANS if s not in spans]
    assert not missing, f"{path}: missing blocking spans {missing}"
    return sum(spans[s] for s in BLOCKING_SPANS)


def main(baseline_path, pipeline_path, table_path, merge_path=None):
    _, base_spans, _ = load(baseline_path)
    _, pipe_spans, pipe_counters = load(pipeline_path)

    for span in PIPELINE_SPANS:
        assert span in pipe_spans, f"{pipeline_path}: pipeline span {span} missing"
    for name in ("save/universal_atoms", "save/universal_bytes"):
        assert pipe_counters.get(name, 0) > 0, f"counter {name} missing or zero"

    base_total = blocking_total(base_spans, baseline_path)
    pipe_total = blocking_total(pipe_spans, pipeline_path)
    budget = base_total * REL_SLACK + ABS_SLACK

    rows = ["| span | baseline (native only) | pipeline (born-universal) |",
            "|---|---|---|"]
    for s in BLOCKING_SPANS:
        rows.append(f"| {s} | {base_spans[s]:.4f}s | {pipe_spans[s]:.4f}s |")
    rows.append(f"| **blocking total** | **{base_total:.4f}s** | **{pipe_total:.4f}s** |")
    background = sum(pipe_spans[s] for s in PIPELINE_SPANS)
    rows.append(f"| assembly (background) | — | {background:.4f}s |")
    rows.append(f"| final drain (shutdown) | {base_spans.get('save/final_drain', 0):.4f}s "
                f"| {pipe_spans.get('save/final_drain', 0):.4f}s |")
    with open(table_path, "w") as f:
        f.write("\n".join(rows) + "\n")

    print(f"blocking: baseline {base_total:.4f}s, pipeline {pipe_total:.4f}s "
          f"(budget {budget:.4f}s); assembly off-path {background:.4f}s, "
          f"{pipe_counters['save/universal_atoms']} atoms / "
          f"{pipe_counters['save/universal_bytes']} B published at save time")
    assert pipe_total <= budget, (
        f"born-universal pipeline stalls training: blocking went "
        f"{base_total:.4f}s -> {pipe_total:.4f}s (budget {budget:.4f}s = "
        f"{REL_SLACK}x + {ABS_SLACK}s)")

    if merge_path:
        with open(merge_path) as f:
            merged = json.load(f)
        delta_pct = 0 if base_total == 0 else (pipe_total / base_total - 1) * 100
        merged["counters"].extend([
            {"name": "save_stall/baseline_blocking_usecs",
             "value": int(base_total * 1e6)},
            {"name": "save_stall/pipeline_blocking_usecs",
             "value": int(pipe_total * 1e6)},
            {"name": "save_stall/delta_pct", "value": round(delta_pct)},
        ])
        with open(merge_path, "w") as f:
            json.dump(merged, f, indent=2, sort_keys=True)
        print(f"merged save-stall delta ({delta_pct:+.1f}%) into {merge_path}")
    print("save-stall gate ok")


if __name__ == "__main__":
    main(*sys.argv[1:5])
