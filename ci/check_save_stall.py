#!/usr/bin/env python3
"""Gate the training stall added by the born-universal save pipeline.

Reads two ucp-metrics-v1 reports from overlapped training runs — a
baseline with the universal save pipeline disabled (native checkpoints
only) and a run with the pipeline on — and compares the time training
actually blocks on checkpointing: the snapshot copy, the drain of the
previous background writer, and the marker publish. Atom assembly runs on
the background writer threads, so turning the pipeline on may grow the
blocking total by at most 10% plus an absolute noise slack.

Also sanity-checks that the pipeline run really ran the pipeline (its
assembly spans and atom counters are present and non-zero) and merges
both runs' stall numbers into BENCH_ci.json when asked.

With --cadence the script instead gates a BENCH_cadence.json sweep
(`ucp bench --cadence`): per-iteration checkpointing (--save-every 1)
must not stall training more per save than the coarsest cadence does
(same 10% + absolute slack budget), and the MoE run's steady-state
per-save exchange volume must collapse below half of a full-model save —
the dirty filter really has to drop frozen experts.

Usage: check_save_stall.py baseline.json pipeline.json table.md [BENCH_ci.json]
       check_save_stall.py --cadence BENCH_cadence.json table.md [BENCH_ci.json]
"""

import json
import sys

# Spans on the training critical path: everything else about a save runs
# on the background writer threads. The end-of-run writer join
# (save/final_drain) is shutdown latency — there is no training left to
# overlap with — so it is reported but not gated.
BLOCKING_SPANS = ("save/snapshot", "save/drain", "save/publish")
# Spans that prove the pipeline ran (all on the writer threads).
PIPELINE_SPANS = ("save/exchange", "save/assemble", "save/atoms", "save/manifest",
                  "save/publish_universal")
REL_SLACK = 1.10  # pipeline blocking may be at most 10% over baseline...
ABS_SLACK = 0.25  # ...plus this many seconds, since tiny CI runs are noise-bound
# --cadence: steady-state per-save exchange bytes of the MoE every=1 run
# must land below this fraction of one full-model save.
MOE_STEADY_MAX = 0.50


def load(path):
    with open(path) as f:
        report = json.load(f)
    assert report["schema"] == "ucp-metrics-v1", f"{path}: bad schema tag"
    spans = {s["path"]: s["total_secs"] for s in report["spans"]}
    counters = {c["name"]: c["value"] for c in report["counters"]}
    return report, spans, counters


def blocking_total(spans, path):
    missing = [s for s in BLOCKING_SPANS if s not in spans]
    assert not missing, f"{path}: missing blocking spans {missing}"
    return sum(spans[s] for s in BLOCKING_SPANS)


def cadence_cells(spans, counters):
    """Per-(model, cadence) cells of a BENCH_cadence.json report."""
    cells = {}
    for name, value in counters.items():
        parts = name.split("/")
        if len(parts) != 4 or parts[0] != "cadence" or not parts[2].startswith("every"):
            continue
        model, every, field = parts[1], int(parts[2][len("every"):]), parts[3]
        cells.setdefault((model, every), {})[field] = value
    for (model, every), cell in cells.items():
        span = spans.get(f"cadence/{model}/every{every}/blocking")
        assert span is not None, f"missing blocking span for {model} every={every}"
        assert cell.get("saves", 0) > 0, f"{model} every={every}: no saves recorded"
        cell["blocking_per_save"] = span / cell["saves"]
        cell["bytes_per_save"] = cell["exchange_bytes"] / cell["saves"]
    return cells


def cadence_main(report_path, table_path, merge_path=None):
    _, raw_spans, counters = load(report_path)
    spans = {s: raw_spans[s] for s in raw_spans}
    cells = cadence_cells(spans, counters)
    models = sorted({m for m, _ in cells})
    assert "moe" in models and "dense" in models, f"models in sweep: {models}"

    rows = ["| model | every | saves | block/save (s) | bytes/save | mesh reuse | atoms skipped |",
            "|---|---|---|---|---|---|---|"]
    for model, every in sorted(cells):
        c = cells[(model, every)]
        rows.append(f"| {model} | {every} | {c['saves']} | {c['blocking_per_save']:.6f} "
                    f"| {c['bytes_per_save']:.0f} | {c['mesh_reuse']} | {c['atoms_skipped']} |")

    failures = []
    for model in models:
        cadences = sorted(e for m, e in cells if m == model)
        assert cadences[0] == 1, f"{model}: sweep is missing the every=1 cell"
        tight, coarse = cells[(model, 1)], cells[(model, cadences[-1])]
        # Per-iteration saves reuse one persistent mesh; only the first
        # claim per rank builds endpoints.
        assert tight["mesh_reuse"] > 0, f"{model} every=1: persistent mesh never reused"
        budget = coarse["blocking_per_save"] * REL_SLACK + ABS_SLACK
        line = (f"{model}: block/save {tight['blocking_per_save']:.6f}s at every=1 vs "
                f"{coarse['blocking_per_save']:.6f}s at every={cadences[-1]} "
                f"(budget {budget:.6f}s)")
        print(line)
        if tight["blocking_per_save"] > budget:
            failures.append(line)

    # MoE incremental volume: the coarsest cadence takes exactly one save,
    # which exchanges the full model (every block dirty after the first
    # optimizer steps). Subtract that first full save from the every=1
    # total to get the steady-state incremental per-save volume.
    moe1 = cells[("moe", 1)]
    full_bytes = cells[("moe", sorted(e for m, e in cells if m == "moe")[-1])]["exchange_bytes"]
    assert moe1["saves"] > 1, "moe every=1 took a single save; nothing incremental to gate"
    steady = (moe1["exchange_bytes"] - full_bytes) / (moe1["saves"] - 1)
    ratio = steady / full_bytes
    rows.append(f"| **moe steady-state** | 1 | — | — | **{steady:.0f} "
                f"({ratio * 100:.1f}% of full)** | — | — |")
    print(f"moe: steady-state {steady:.0f} B/save vs full save {full_bytes} B "
          f"({ratio * 100:.1f}%, limit {MOE_STEADY_MAX * 100:.0f}%)")
    if ratio >= MOE_STEADY_MAX:
        failures.append(f"moe steady-state exchange is {ratio * 100:.1f}% of a full save "
                        f"(limit {MOE_STEADY_MAX * 100:.0f}%): the dirty filter is not "
                        f"dropping frozen experts")
    if moe1["atoms_skipped"] == 0:
        failures.append("moe every=1 never hard-linked a clean atom")

    with open(table_path, "w") as f:
        f.write("\n".join(rows) + "\n")
    assert not failures, "cadence gate failed:\n  " + "\n  ".join(failures)

    if merge_path:
        with open(merge_path) as f:
            merged = json.load(f)
        merged["counters"].extend([
            {"name": "cadence/moe_steady_bytes_per_save", "value": int(steady)},
            {"name": "cadence/moe_full_save_bytes", "value": int(full_bytes)},
            {"name": "cadence/every1_blocking_usecs",
             "value": int(cells[("dense", 1)]["blocking_per_save"] * 1e6)},
        ])
        with open(merge_path, "w") as f:
            json.dump(merged, f, indent=2, sort_keys=True)
        print(f"merged cadence summary into {merge_path}")
    print("cadence gate ok")


def main(baseline_path, pipeline_path, table_path, merge_path=None):
    _, base_spans, _ = load(baseline_path)
    _, pipe_spans, pipe_counters = load(pipeline_path)

    for span in PIPELINE_SPANS:
        assert span in pipe_spans, f"{pipeline_path}: pipeline span {span} missing"
    for name in ("save/universal_atoms", "save/universal_bytes"):
        assert pipe_counters.get(name, 0) > 0, f"counter {name} missing or zero"

    base_total = blocking_total(base_spans, baseline_path)
    pipe_total = blocking_total(pipe_spans, pipeline_path)
    budget = base_total * REL_SLACK + ABS_SLACK

    rows = ["| span | baseline (native only) | pipeline (born-universal) |",
            "|---|---|---|"]
    for s in BLOCKING_SPANS:
        rows.append(f"| {s} | {base_spans[s]:.4f}s | {pipe_spans[s]:.4f}s |")
    rows.append(f"| **blocking total** | **{base_total:.4f}s** | **{pipe_total:.4f}s** |")
    background = sum(pipe_spans[s] for s in PIPELINE_SPANS)
    rows.append(f"| assembly (background) | — | {background:.4f}s |")
    rows.append(f"| final drain (shutdown) | {base_spans.get('save/final_drain', 0):.4f}s "
                f"| {pipe_spans.get('save/final_drain', 0):.4f}s |")
    with open(table_path, "w") as f:
        f.write("\n".join(rows) + "\n")

    print(f"blocking: baseline {base_total:.4f}s, pipeline {pipe_total:.4f}s "
          f"(budget {budget:.4f}s); assembly off-path {background:.4f}s, "
          f"{pipe_counters['save/universal_atoms']} atoms / "
          f"{pipe_counters['save/universal_bytes']} B published at save time")
    assert pipe_total <= budget, (
        f"born-universal pipeline stalls training: blocking went "
        f"{base_total:.4f}s -> {pipe_total:.4f}s (budget {budget:.4f}s = "
        f"{REL_SLACK}x + {ABS_SLACK}s)")

    if merge_path:
        with open(merge_path) as f:
            merged = json.load(f)
        delta_pct = 0 if base_total == 0 else (pipe_total / base_total - 1) * 100
        merged["counters"].extend([
            {"name": "save_stall/baseline_blocking_usecs",
             "value": int(base_total * 1e6)},
            {"name": "save_stall/pipeline_blocking_usecs",
             "value": int(pipe_total * 1e6)},
            {"name": "save_stall/delta_pct", "value": round(delta_pct)},
        ])
        with open(merge_path, "w") as f:
            json.dump(merged, f, indent=2, sort_keys=True)
        print(f"merged save-stall delta ({delta_pct:+.1f}%) into {merge_path}")
    print("save-stall gate ok")


if __name__ == "__main__":
    if sys.argv[1] == "--cadence":
        cadence_main(*sys.argv[2:5])
    else:
        main(*sys.argv[1:5])
