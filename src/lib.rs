//! # Universal Checkpointing (UCP) — Rust reproduction
//!
//! A from-scratch reproduction of *"Universal Checkpointing: Efficient and
//! Flexible Checkpointing for Large Scale Distributed Training"* (Lian et
//! al.), including the entire substrate the paper builds on: a
//! deterministic in-process distributed-training simulator with
//! tensor/pipeline/data/sequence parallelism and ZeRO-partitioned AdamW
//! over a transformer model family.
//!
//! This facade crate re-exports the workspace's public surface and hosts
//! the integration tests and runnable examples. Start with
//! [`trainer::TrainConfig`] and [`trainer::train_run`] to train, and
//! [`core::convert_to_universal`] / [`trainer::ResumeMode::Universal`] to
//! reshard a checkpoint onto a new parallelism strategy.
//!
//! ```no_run
//! use ucp_repro::model::ModelConfig;
//! use ucp_repro::parallel::{ParallelConfig, ZeroStage};
//! use ucp_repro::trainer::{train_run, TrainConfig, TrainPlan};
//!
//! let cfg = TrainConfig::quick(
//!     ModelConfig::gpt3_tiny(),
//!     ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1),
//!     42,
//! );
//! let run = train_run(&TrainPlan::simple(cfg, 10)).unwrap();
//! println!("final loss: {:?}", run.losses.last());
//! ```

/// Dense tensors and deterministic RNG.
pub use ucp_tensor as tensor;

/// In-process SPMD cluster and collectives.
pub use ucp_collectives as collectives;

/// Transformer model family with hand-written autograd.
pub use ucp_model as model;

/// Parallelism topology and ZeRO flat partitioning.
pub use ucp_parallel as parallel;

/// AdamW, gradient clipping, LR schedules.
pub use ucp_optim as optim;

/// UCPT container format and checkpoint I/O.
pub use ucp_storage as storage;

/// Scoped timers, counters, histograms, and metric reports.
pub use ucp_telemetry as telemetry;

/// Universal Checkpointing: patterns, language, operations.
pub use ucp_core as core;

/// Distributed training simulator and run drivers.
pub use ucp_trainer as trainer;
