//! MoE resharding: the Fig. 5 sub-patterns in action.
//!
//! A Mixtral-style mixture-of-experts model (8 experts, top-2 routing,
//! grouped-query attention) trains with expert weights *unsharded*
//! (TP=1, DP=4), then resumes with the 3-D expert tensors split across
//! TP=2 — exercising the `fragment_params` sub-patterns for 3-D MoE
//! weights and variable-size fused QKV (GQA) that §3.2 describes.
//!
//! ```sh
//! cargo run --release --example moe_resharding
//! ```

use ucp_repro::core::convert::ConvertOptions;
use ucp_repro::core::language::UcpSpec;
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::trainer::{convert_checkpoint, train_run, ResumeMode, TrainConfig, TrainPlan};

fn main() {
    let dir = std::env::temp_dir().join("ucp_moe_reshard");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let model = ModelConfig::moe_tiny();
    println!(
        "model: {} ({} params, {} experts, top-{} routing, {} q-heads / {} kv-heads)",
        model.family,
        model.num_parameters(),
        model.num_experts,
        model.top_k,
        model.num_heads,
        model.num_kv_heads
    );

    // Show what the UCP language derives for the interesting parameters.
    let spec = UcpSpec::from_model(&model, 2, &[]);
    for name in [
        "layers.0.moe.experts.dense_h_to_4h.weight",
        "layers.0.moe.experts.dense_4h_to_h.weight",
        "layers.0.moe.router.weight",
        "layers.0.attention.query_key_value.weight",
    ] {
        println!("  pattern[{name}] = {}", spec.pattern_of(name).unwrap());
    }

    // Source: experts unsharded, pure DP.
    let source = TrainConfig::quick(
        model.clone(),
        ParallelConfig::new(1, 2, 4, 1, ZeroStage::Zero1),
        31,
    );
    println!("\ntraining source {} (8 ranks)...", source.parallel.label());
    let run = train_run(&TrainPlan {
        config: source,
        until_iteration: 12,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(12),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    println!("  loss @12: {:.4}", run.losses.last().unwrap().1);

    let (manifest, _) = convert_checkpoint(&dir, 12, &ConvertOptions::default()).unwrap();
    let moe_atom = manifest
        .atom("layers.0.moe.experts.dense_h_to_4h.weight")
        .unwrap();
    println!(
        "  atom {} shape {} pattern {}",
        moe_atom.name, moe_atom.shape, moe_atom.pattern
    );

    // Target: expert FFN dimension split across TP=2.
    let target = TrainConfig::quick(model, ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1), 31);
    println!(
        "resuming target {} (8 ranks, experts TP-sharded)...",
        target.parallel.label()
    );
    let resumed = train_run(&TrainPlan {
        config: target,
        until_iteration: 24,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 12,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap();
    println!("  loss @24: {:.4}", resumed.losses.last().unwrap().1);
    println!("MoE expert tensors were split along their 3-D FFN dimension and training continued");
    std::fs::remove_dir_all(&dir).ok();
}
