//! Quickstart: train a tiny GPT, checkpoint, convert to a universal
//! checkpoint, and resume under a different parallelism strategy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ucp_repro::core::convert::ConvertOptions;
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::trainer::{convert_checkpoint, train_run, ResumeMode, TrainConfig, TrainPlan};

fn main() {
    let dir = std::env::temp_dir().join("ucp_quickstart");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // 1. Train a GPT-3-style tiny model with 3-D parallelism:
    //    TP=2, PP=2, DP=1 (4 simulated ranks), ZeRO-1.
    let source = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1),
        42,
    );
    println!("training source strategy {} ...", source.parallel.label());
    let run = train_run(&TrainPlan {
        config: source,
        until_iteration: 20,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(20),
        checkpoint_dir: Some(dir.clone()),
    })
    .expect("source training");
    for (it, loss) in run.losses.iter().step_by(5) {
        println!("  iteration {it:>3}: loss {loss:.4}");
    }

    // 2. Convert the distributed checkpoint into a universal checkpoint.
    //    This is lazy: it runs now, at resume time, not during training.
    let (manifest, stats) =
        convert_checkpoint(&dir, 20, &ConvertOptions::default()).expect("conversion");
    println!(
        "converted {} parameters into atom checkpoints ({} bytes, extract {:.3}s + union {:.3}s)",
        manifest.params.len(),
        stats.bytes_written,
        stats.extract_secs,
        stats.union_secs
    );

    // 3. Resume under a completely different strategy: pure data
    //    parallelism, DP=2, ZeRO-2 — different rank count, different
    //    sharding, same training trajectory.
    let target = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero2),
        42,
    );
    println!(
        "resuming under target strategy {} ...",
        target.parallel.label()
    );
    let resumed = train_run(&TrainPlan {
        config: target,
        until_iteration: 40,
        resume: ResumeMode::Universal {
            dir: dir.clone(),
            step: 20,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .expect("target resume");
    for (it, loss) in resumed.losses.iter().step_by(5) {
        println!("  iteration {it:>3}: loss {loss:.4}");
    }
    println!(
        "loss continued smoothly across the reconfiguration: {:.4} -> {:.4}",
        run.losses.last().unwrap().1,
        resumed.losses.last().unwrap().1
    );
    std::fs::remove_dir_all(&dir).ok();
}
