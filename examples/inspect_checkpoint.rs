//! Checkpoint inspector: prints the structure of a native distributed
//! checkpoint and its universal counterpart — file layout, flat ZeRO
//! layout with alignment padding, per-parameter patterns, and atom index.
//!
//! ```sh
//! cargo run --release --example inspect_checkpoint
//! ```

use ucp_repro::core::checkpoint::{load_model_states, load_optim_states};
use ucp_repro::core::convert::ConvertOptions;
use ucp_repro::core::manifest::UcpManifest;
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::storage::layout;
use ucp_repro::trainer::{convert_checkpoint, train_run, ResumeMode, TrainConfig, TrainPlan};

fn main() {
    let dir = std::env::temp_dir().join("ucp_inspect");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // Produce a checkpoint to inspect: TP2 × DP2 ZeRO-2 GPT.
    let cfg = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero2),
        5,
    );
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 4,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(4),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();

    let step_dir = layout::step_dir(&dir, 4);
    println!(
        "=== native distributed checkpoint: {} ===",
        step_dir.display()
    );
    println!(
        "total size: {} bytes; latest marker: step {:?}",
        layout::dir_size_bytes(&step_dir),
        layout::read_latest(&dir)
    );

    let (common, params) = load_model_states(&step_dir, 0, 0).unwrap();
    println!(
        "\nmodel_states (tp=0, pp=0): iteration {}, strategy {}, {} bf16 shards",
        common.iteration,
        common.parallel.label(),
        params.len()
    );
    for (name, t) in params.iter().take(5) {
        println!("  {:<50} {} {}", name, t.shape(), t.dtype());
    }
    println!("  ... ({} more)", params.len().saturating_sub(5));

    let (_, shard) = load_optim_states(&step_dir, 1, 0, 0).unwrap();
    println!(
        "\noptim_states (dp=1, tp=0, pp=0): flat chunk of {} elements (alignment {}, {} slots)",
        shard.fp32.len(),
        shard.layout.alignment,
        shard.layout.slots.len()
    );
    println!("  flat layout (first 5 slots):");
    for slot in shard.layout.slots.iter().take(5) {
        println!(
            "    [{:>7}..{:>7}) {:<50} {} ({} pad)",
            slot.offset,
            slot.offset + slot.padded_len,
            slot.name,
            slot.shape,
            slot.padded_len - slot.len
        );
    }
    let straddlers = shard
        .layout
        .slots
        .iter()
        .filter(|s| shard.layout.fragments_of(s).len() > 1)
        .count();
    println!(
        "  {} of {} parameters straddle DP-chunk boundaries (flat fragment_params)",
        straddlers,
        shard.layout.slots.len()
    );

    convert_checkpoint(&dir, 4, &ConvertOptions::default()).unwrap();
    let universal = layout::universal_dir(&dir, 4);
    println!("\n=== universal checkpoint: {} ===", universal.display());
    println!("total size: {} bytes", layout::dir_size_bytes(&universal));
    let manifest = UcpManifest::load(&universal).unwrap();
    println!(
        "manifest: iteration {}, source {}, {} atoms",
        manifest.iteration,
        manifest.source_label,
        manifest.params.len()
    );
    println!("  atom index (first 8):");
    for atom in manifest.params.iter().take(8) {
        println!("    {:<50} {} {}", atom.name, atom.shape, atom.pattern);
    }
    std::fs::remove_dir_all(&dir).ok();
}
