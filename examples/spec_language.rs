//! The UCP specification language: derive, inspect, author, serialize, and
//! plug a pattern spec into conversion.
//!
//! ```sh
//! cargo run --release --example spec_language
//! ```

use ucp_repro::core::convert::{convert_to_universal, ConvertOptions};
use ucp_repro::core::language::{UcpSpec, UcpSpecBuilder};
use ucp_repro::core::pattern::{FragmentSpec, ParamPattern};
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

fn main() {
    // 1. Derive a spec from a model's parameter inventory: every parameter
    //    gets the pattern its TP partitioning implies.
    let model = ModelConfig::llama_tiny();
    let derived = UcpSpec::from_model(&model, 2, &[]);
    println!(
        "derived spec for {} at TP=2 ({} rules):",
        model.family,
        derived.rules().len()
    );
    for rule in derived.rules().iter().take(4) {
        println!("  {:<45} -> {}", rule.glob, rule.pattern);
    }
    println!("  ...");

    // 2. Author rules by hand with globs — `*` stays within a dotted
    //    segment, `**` crosses segments.
    let custom = UcpSpecBuilder::new()
        .rule("layers.*.input_layernorm.weight", ParamPattern::ToAverage)
        .rule(
            "layers.*.attention.query_key_value.weight",
            ParamPattern::Fragment(FragmentSpec::Grouped {
                dim: 0,
                sections: vec![32, 16, 16],
            }),
        )
        .build();

    // 3. The textual form of the language: JSON you can keep in a file.
    let json = custom.to_json().unwrap();
    println!("\ncustom spec as JSON ({} bytes):", json.len());
    println!("{}", json.lines().take(12).collect::<Vec<_>>().join("\n"));
    println!("  ...");
    let reloaded = UcpSpec::from_json(&json).unwrap();
    assert_eq!(reloaded, custom);

    // 4. Plug the custom rules into a real conversion: user rules override
    //    the derived ones; everything else falls back.
    let dir = std::env::temp_dir().join("ucp_spec_language");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = TrainConfig::quick(
        ModelConfig::gpt3_tiny(),
        ParallelConfig::new(2, 1, 1, 1, ZeroStage::Zero1),
        8,
    );
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: 2,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.clone()),
    })
    .unwrap();
    let override_spec = UcpSpecBuilder::new()
        .rule("layers.*.input_layernorm.weight", ParamPattern::ToAverage)
        .build();
    let (manifest, _) = convert_to_universal(
        &dir,
        2,
        &ConvertOptions {
            spec_override: Some(override_spec),
            ..ConvertOptions::default()
        },
    )
    .unwrap();
    println!(
        "\nafter conversion with the override:\n  {:<45} -> {}\n  {:<45} -> {}",
        "layers.0.input_layernorm.weight",
        manifest
            .atom("layers.0.input_layernorm.weight")
            .unwrap()
            .pattern,
        "layers.0.post_attention_layernorm.weight",
        manifest
            .atom("layers.0.post_attention_layernorm.weight")
            .unwrap()
            .pattern,
    );
    std::fs::remove_dir_all(&dir).ok();
}
