//! Cross-framework restore: ingest a checkpoint written by a *different*
//! framework ("litsim", a PyTorch-Lightning-style consolidated single-file
//! format) and resume distributed training from it.
//!
//! ```sh
//! cargo run --release --example cross_framework
//! ```

use ucp_repro::core::adapter::{save_litsim_checkpoint, LitSimAdapter, SourceAdapter};
use ucp_repro::model::{param_specs, ModelConfig};
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::tensor::{DetRng, Tensor};
use ucp_repro::trainer::{train_run, ResumeMode, TrainConfig, TrainPlan};

fn main() {
    let base = std::env::temp_dir().join("ucp_cross_framework");
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base).unwrap();
    let model = ModelConfig::gpt3_tiny();
    let seed = 12;

    // Another framework produced a consolidated single-file checkpoint:
    // full fp32 weights plus Adam moments under its own key scheme. We
    // fabricate one here with the same deterministic initialization our
    // trainer would use at iteration 0, plus zero moments.
    let rng = DetRng::new(seed);
    let states: Vec<(String, Tensor, Tensor, Tensor)> = param_specs(&model)
        .into_iter()
        .map(|s| {
            let w = s.materialize_full(&rng);
            let zeros = Tensor::zeros(s.shape.clone());
            (s.name, w, zeros.clone(), zeros)
        })
        .collect();
    let foreign = base.join("litsim.ckpt");
    save_litsim_checkpoint(&foreign, &model, 0, seed, 0, 0, &states).unwrap();
    println!(
        "foreign checkpoint written: {} ({} params, framework 'litsim')",
        foreign.display(),
        states.len()
    );

    // Adapt it into a universal checkpoint.
    let adapter = LitSimAdapter;
    let manifest = adapter.convert(&foreign, &base, 0).unwrap();
    println!(
        "adapted to UCP: source = {}, {} atoms",
        manifest.source_label,
        manifest.params.len()
    );

    // Resume it as a 3-D-parallel DeepSpeed-style run.
    let target = TrainConfig::quick(
        model,
        ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1),
        seed,
    );
    println!("resuming under {} (8 ranks)...", target.parallel.label());
    let run = train_run(&TrainPlan {
        config: target,
        until_iteration: 10,
        resume: ResumeMode::Universal {
            dir: base.clone(),
            step: 0,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .unwrap();
    for (it, loss) in &run.losses {
        println!("  iteration {it:>2}: loss {loss:.4}");
    }
    println!("a Lightning-style checkpoint now trains under 3-D parallelism");
    std::fs::remove_dir_all(&base).ok();
}
