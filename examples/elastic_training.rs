//! Elastic training under hardware failure — the paper's headline
//! motivation (Fig. 1).
//!
//! A job trains on 8 "GPUs" (TP2 × DP4). Half the hardware fails. With
//! native checkpoints the job is stuck waiting for repairs; with UCP it
//! resumes immediately on the 4 healthy GPUs (TP2 × DP2), and later scales
//! back out to 8 when capacity returns — without any loss-curve
//! discontinuity.
//!
//! ```sh
//! cargo run --release --example elastic_training
//! ```

use ucp_repro::core::convert::ConvertOptions;
use ucp_repro::model::ModelConfig;
use ucp_repro::parallel::{ParallelConfig, ZeroStage};
use ucp_repro::trainer::{
    convert_checkpoint, train_run, ResumeMode, TrainConfig, TrainError, TrainPlan,
};

fn phase(cfg: TrainConfig, until: u64, resume: ResumeMode, dir: &std::path::Path, ckpt: u64) {
    let label = cfg.parallel.label();
    let world = cfg.parallel.world_size();
    let run = train_run(&TrainPlan {
        config: cfg,
        until_iteration: until,
        resume,
        checkpoint_every: Some(ckpt),
        checkpoint_dir: Some(dir.to_path_buf()),
    })
    .expect("phase");
    let (it, loss) = run.losses.last().unwrap();
    println!("  [{label} | {world} GPUs] trained to iteration {it}, loss {loss:.4}");
}

fn main() {
    let dir = std::env::temp_dir().join("ucp_elastic");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let model = ModelConfig::gpt3_tiny();
    let seed = 7;

    let full = ParallelConfig::new(2, 1, 4, 1, ZeroStage::Zero1); // 8 GPUs
    let degraded = ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1); // 4 GPUs

    println!("phase 1: healthy cluster, 8 GPUs");
    phase(
        TrainConfig::quick(model.clone(), full, seed),
        10,
        ResumeMode::Fresh,
        &dir,
        10,
    );

    println!("!! simulated hardware failure: 4 of 8 GPUs lost");

    // Native resume on the shrunken cluster fails — this is the status quo
    // UCP replaces.
    let err = train_run(&TrainPlan {
        config: TrainConfig::quick(model.clone(), degraded, seed),
        until_iteration: 20,
        resume: ResumeMode::Native {
            dir: dir.clone(),
            step: 10,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    })
    .map(|_| ())
    .unwrap_err();
    let is_mismatch = matches!(
        err,
        TrainError::Config(ref m) if m.contains("convert it to a universal checkpoint")
    ) || err
        .to_string()
        .contains("convert it to a universal checkpoint");
    println!("  native resume on 4 GPUs: REFUSED ({err})");
    assert!(is_mismatch);

    // UCP path: convert once, resume on the healthy half.
    convert_checkpoint(&dir, 10, &ConvertOptions::default()).expect("conversion");
    println!("phase 2: continue on the 4 healthy GPUs via UCP");
    phase(
        TrainConfig::quick(model.clone(), degraded, seed),
        20,
        ResumeMode::Universal {
            dir: dir.clone(),
            step: 10,
        },
        &dir,
        20,
    );

    println!("++ capacity restored: scale back out to 8 GPUs");
    convert_checkpoint(&dir, 20, &ConvertOptions::default()).expect("conversion");
    phase(
        TrainConfig::quick(model, full, seed),
        30,
        ResumeMode::Universal {
            dir: dir.clone(),
            step: 20,
        },
        &dir,
        30,
    );
    println!("done: the job rode through failure and recovery with zero lost progress");
    std::fs::remove_dir_all(&dir).ok();
}
