//! Golden-file tests: the JSON and Prometheus renderings of a fixed
//! report must match the committed artifacts byte-for-byte, so any
//! schema drift is an explicit, reviewed diff.
//!
//! To regenerate after an intentional schema change:
//! `UCP_BLESS=1 cargo test -p ucp-telemetry --test golden`

use std::path::PathBuf;

use ucp_telemetry::{BucketStat, CounterStat, HistStat, Report, SpanStat};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// A report with every feature exercised: nested span paths, counters,
/// a histogram with spread-out buckets, and label characters that need
/// escaping in both output formats.
fn fixture() -> Report {
    Report {
        label: "golden \"run\"".to_string(),
        spans: vec![
            SpanStat {
                path: "convert".into(),
                count: 1,
                total_secs: 2.5,
                min_secs: 2.5,
                max_secs: 2.5,
            },
            SpanStat {
                path: "convert/atom_write".into(),
                count: 12,
                total_secs: 0.36,
                min_secs: 0.01,
                max_secs: 0.09,
            },
            SpanStat {
                path: "convert/extract".into(),
                count: 4,
                total_secs: 1.0,
                min_secs: 0.2,
                max_secs: 0.3,
            },
        ],
        counters: vec![
            CounterStat {
                name: "convert/atoms_written".into(),
                value: 12,
            },
            CounterStat {
                name: "convert/bytes_written".into(),
                value: 1048576,
            },
            CounterStat {
                name: "convert/fragments".into(),
                value: 48,
            },
        ],
        histograms: vec![HistStat {
            name: "load/atom_read_ns".into(),
            count: 7,
            sum: 7300000,
            min: 100000,
            max: 2100000,
            buckets: vec![
                BucketStat {
                    le: 131071,
                    count: 2,
                },
                BucketStat {
                    le: 1048575,
                    count: 3,
                },
                BucketStat {
                    le: 2097151,
                    count: 1,
                },
                BucketStat {
                    le: 4194303,
                    count: 1,
                },
            ],
        }],
    }
}

fn check_or_bless(name: &str, rendered: &str) {
    let path = golden_dir().join(name);
    if std::env::var("UCP_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        rendered, expected,
        "{name} drifted from its golden file; run with UCP_BLESS=1 if intentional"
    );
}

#[test]
fn json_matches_golden_file() {
    check_or_bless("report.json", &fixture().to_json());
}

#[test]
fn prometheus_matches_golden_file() {
    check_or_bless("report.prom", &fixture().to_prometheus());
}

#[test]
fn golden_json_parses_back_to_the_fixture() {
    let path = golden_dir().join("report.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    let parsed = Report::from_json(&text).unwrap();
    assert_eq!(parsed, fixture());
}

#[test]
fn end_to_end_recorder_to_file() {
    let rec = ucp_telemetry::Recorder::new();
    {
        let _outer = rec.span("convert");
        let _inner = rec.span("extract");
        rec.count("convert/bytes_written", 4096);
        rec.observe("load/atom_read_ns", 250_000);
    }
    let report = rec.report("e2e");
    let dir = std::env::temp_dir().join(format!("ucp-telemetry-e2e-{}", std::process::id()));
    let path = dir.join("metrics.json");
    report.write_json_file(&path).unwrap();
    let back = Report::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(back.label, "e2e");
    assert_eq!(back.counter("convert/bytes_written"), Some(4096));
    assert!(back.span("convert/extract").unwrap().total_secs >= 0.0);
    assert_eq!(back.hist("load/atom_read_ns").unwrap().count, 1);
}
