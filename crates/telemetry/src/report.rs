//! The metrics report: the one schema shared by `ucp --metrics-out`,
//! the bench harness, and CI's perf-smoke artifact.
//!
//! A [`Report`] is plain data — span timings, counters, histograms — with
//! a deterministic JSON form (sorted keys, stable field set, `schema`
//! version tag) and a Prometheus text rendering for scrape-style
//! consumers. Reports merge, so a multi-command run (train → convert →
//! load) can accumulate into one artifact.

use crate::hist::Histogram;
use crate::json::Json;

/// Schema tag embedded in every JSON report.
pub const SCHEMA: &str = "ucp-metrics-v1";

/// Aggregated timing of one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Slash-separated phase path (e.g. `convert/extract`).
    pub path: String,
    /// Completed span count.
    pub count: u64,
    /// Total seconds across completions.
    pub total_secs: f64,
    /// Shortest completion (seconds).
    pub min_secs: f64,
    /// Longest completion (seconds).
    pub max_secs: f64,
}

/// A monotonic counter's final value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStat {
    /// Counter name (e.g. `convert/bytes_written`).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One histogram bucket of the *JSON* form: observations `<= le` not
/// counted by earlier buckets (per-bucket counts). This is only the
/// storage shape — [`Report::to_prometheus`] converts to the standard
/// cumulative `_bucket`/`_sum`/`_count` series real scrapers expect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketStat {
    /// Inclusive upper bound.
    pub le: u64,
    /// Observations in this bucket.
    pub count: u64,
}

/// A histogram's summary and non-empty buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistStat {
    /// Histogram name (e.g. `load/atom_read_ns`).
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Non-empty buckets in ascending bound order.
    pub buckets: Vec<BucketStat>,
}

impl HistStat {
    /// Summarize a histogram (empty histograms keep `min = 0`).
    pub fn from_histogram(name: &str, h: &Histogram) -> HistStat {
        HistStat {
            name: name.to_string(),
            count: h.count,
            sum: h.sum,
            min: if h.is_empty() { 0 } else { h.min },
            max: h.max,
            buckets: h
                .nonzero_buckets()
                .into_iter()
                .map(|(le, count)| BucketStat { le, count })
                .collect(),
        }
    }

    /// Mean observed value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Rebuild a [`Histogram`] from this summary. Bucket-resolution
    /// lossless: per-bucket counts and count/sum/min/max all survive, so
    /// quantiles computed from a parsed JSON report match the live ones.
    pub fn to_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        h.count = self.count;
        h.sum = self.sum;
        h.min = if self.count == 0 { u64::MAX } else { self.min };
        h.max = self.max;
        for b in &self.buckets {
            // The bound's bit length is its bucket index (le = 2^i - 1),
            // and stays right even if a huge bound lost precision in JSON.
            h.buckets[Histogram::bucket_index(b.le)] += b.count;
        }
        h
    }

    /// Approximate quantile (`q` in `[0, 1]`) over the summarized buckets.
    pub fn quantile(&self, q: f64) -> u64 {
        self.to_histogram().quantile(q)
    }
}

/// A full metrics report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Run label (command or bench configuration).
    pub label: String,
    /// Span timings, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistStat>,
}

impl Report {
    /// Look up a span by exact path.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Look up a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistStat> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Fold `other` into this report: spans/counters/histograms with the
    /// same key accumulate; the label keeps `self`'s unless empty.
    pub fn merge(&mut self, other: &Report) {
        if self.label.is_empty() {
            self.label = other.label.clone();
        }
        for s in &other.spans {
            match self.spans.iter_mut().find(|x| x.path == s.path) {
                Some(mine) => {
                    mine.count += s.count;
                    mine.total_secs += s.total_secs;
                    mine.min_secs = mine.min_secs.min(s.min_secs);
                    mine.max_secs = mine.max_secs.max(s.max_secs);
                }
                None => self.spans.push(s.clone()),
            }
        }
        for c in &other.counters {
            match self.counters.iter_mut().find(|x| x.name == c.name) {
                Some(mine) => mine.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|x| x.name == h.name) {
                Some(mine) => {
                    let was_empty = mine.count == 0;
                    mine.count += h.count;
                    mine.sum += h.sum;
                    mine.min = if was_empty {
                        h.min
                    } else {
                        mine.min.min(h.min)
                    };
                    mine.max = mine.max.max(h.max);
                    for b in &h.buckets {
                        match mine.buckets.iter_mut().find(|x| x.le == b.le) {
                            Some(mb) => mb.count += b.count,
                            None => mine.buckets.push(b.clone()),
                        }
                    }
                    mine.buckets.sort_by_key(|b| b.le);
                }
                None => self.histograms.push(h.clone()),
            }
        }
        self.spans.sort_by(|a, b| a.path.cmp(&b.path));
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Deterministic pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("path", Json::Str(s.path.clone())),
                    ("count", Json::Num(s.count as f64)),
                    ("total_secs", Json::Num(round6(s.total_secs))),
                    ("min_secs", Json::Num(round6(s.min_secs))),
                    ("max_secs", Json::Num(round6(s.max_secs))),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("name", Json::Str(c.name.clone())),
                    ("value", Json::Num(c.value as f64)),
                ])
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                Json::obj(vec![
                    ("name", Json::Str(h.name.clone())),
                    ("count", Json::Num(h.count as f64)),
                    ("sum", Json::Num(h.sum as f64)),
                    ("min", Json::Num(h.min as f64)),
                    ("max", Json::Num(h.max as f64)),
                    (
                        "buckets",
                        Json::Arr(
                            h.buckets
                                .iter()
                                .map(|b| {
                                    Json::obj(vec![
                                        ("le", Json::Num(b.le as f64)),
                                        ("count", Json::Num(b.count as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            ("schema", Json::Str(SCHEMA.to_string())),
            ("label", Json::Str(self.label.clone())),
            ("spans", Json::Arr(spans)),
            ("counters", Json::Arr(counters)),
            ("histograms", Json::Arr(histograms)),
        ]);
        let mut text = doc.pretty();
        text.push('\n');
        text
    }

    /// Parse a JSON report (accepts any `ucp-metrics-v1` document).
    pub fn from_json(text: &str) -> Result<Report, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema field")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema '{schema}'"));
        }
        let label = doc
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let field = |v: &Json, k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or(format!("missing numeric field '{k}'"))
        };
        let ffield = |v: &Json, k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or(format!("missing numeric field '{k}'"))
        };
        let sfield = |v: &Json, k: &str| -> Result<String, String> {
            Ok(v.get(k)
                .and_then(Json::as_str)
                .ok_or(format!("missing string field '{k}'"))?
                .to_string())
        };
        let mut spans = Vec::new();
        for s in doc.get("spans").and_then(Json::as_arr).unwrap_or(&[]) {
            spans.push(SpanStat {
                path: sfield(s, "path")?,
                count: field(s, "count")?,
                total_secs: ffield(s, "total_secs")?,
                min_secs: ffield(s, "min_secs")?,
                max_secs: ffield(s, "max_secs")?,
            });
        }
        let mut counters = Vec::new();
        for c in doc.get("counters").and_then(Json::as_arr).unwrap_or(&[]) {
            counters.push(CounterStat {
                name: sfield(c, "name")?,
                value: field(c, "value")?,
            });
        }
        let mut histograms = Vec::new();
        for h in doc.get("histograms").and_then(Json::as_arr).unwrap_or(&[]) {
            let mut buckets = Vec::new();
            for b in h.get("buckets").and_then(Json::as_arr).unwrap_or(&[]) {
                buckets.push(BucketStat {
                    le: field(b, "le")?,
                    count: field(b, "count")?,
                });
            }
            histograms.push(HistStat {
                name: sfield(h, "name")?,
                count: field(h, "count")?,
                sum: field(h, "sum")?,
                min: field(h, "min")?,
                max: field(h, "max")?,
                buckets,
            });
        }
        Ok(Report {
            label,
            spans,
            counters,
            histograms,
        })
    }

    /// Prometheus text exposition rendering. Span totals and counters
    /// become counters; histograms use the standard cumulative-bucket
    /// `_bucket`/`_sum`/`_count` triple.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let label = escape_label(&self.label);
        if !self.spans.is_empty() {
            out.push_str("# TYPE ucp_span_seconds_total counter\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "ucp_span_seconds_total{{run=\"{label}\",path=\"{}\"}} {}\n",
                    escape_label(&s.path),
                    fmt_f64(s.total_secs)
                ));
            }
            out.push_str("# TYPE ucp_span_count_total counter\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "ucp_span_count_total{{run=\"{label}\",path=\"{}\"}} {}\n",
                    escape_label(&s.path),
                    s.count
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("# TYPE ucp_counter_total counter\n");
            for c in &self.counters {
                out.push_str(&format!(
                    "ucp_counter_total{{run=\"{label}\",name=\"{}\"}} {}\n",
                    escape_label(&c.name),
                    c.value
                ));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("# TYPE ucp_hist histogram\n");
            for h in &self.histograms {
                let name = escape_label(&h.name);
                let mut cumulative = 0u64;
                for b in &h.buckets {
                    cumulative += b.count;
                    out.push_str(&format!(
                        "ucp_hist_bucket{{run=\"{label}\",name=\"{name}\",le=\"{}\"}} {cumulative}\n",
                        b.le
                    ));
                }
                out.push_str(&format!(
                    "ucp_hist_bucket{{run=\"{label}\",name=\"{name}\",le=\"+Inf\"}} {}\n",
                    h.count
                ));
                out.push_str(&format!(
                    "ucp_hist_sum{{run=\"{label}\",name=\"{name}\"}} {}\n",
                    h.sum
                ));
                out.push_str(&format!(
                    "ucp_hist_count{{run=\"{label}\",name=\"{name}\"}} {}\n",
                    h.count
                ));
            }
        }
        out
    }

    /// Write the JSON form to a file (creating parent directories).
    pub fn write_json_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

/// Round to microsecond resolution so reports are stable across
/// formatting paths while staying far finer than any measured phase.
fn round6(secs: f64) -> f64 {
    (secs * 1e6).round() / 1e6
}

fn fmt_f64(v: f64) -> String {
    // Prometheus floats: plain decimal, no exponent surprises for the
    // magnitudes we emit.
    format!("{v}")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut h = Histogram::new();
        for v in [100u64, 200, 4000] {
            h.record(v);
        }
        Report {
            label: "unit".into(),
            spans: vec![
                SpanStat {
                    path: "convert".into(),
                    count: 1,
                    total_secs: 1.5,
                    min_secs: 1.5,
                    max_secs: 1.5,
                },
                SpanStat {
                    path: "convert/extract".into(),
                    count: 4,
                    total_secs: 0.75,
                    min_secs: 0.1,
                    max_secs: 0.3,
                },
            ],
            counters: vec![CounterStat {
                name: "convert/bytes_written".into(),
                value: 123456,
            }],
            histograms: vec![HistStat::from_histogram("load/atom_read_ns", &h)],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let r = sample();
        let text = r.to_json();
        let back = Report::from_json(&text).unwrap();
        assert_eq!(back, r);
        // And the rendering is a fixed point.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        assert!(Report::from_json(r#"{"schema": "other", "label": ""}"#).is_err());
        assert!(Report::from_json("not json").is_err());
        assert!(Report::from_json("{}").is_err());
    }

    #[test]
    fn merge_accumulates_and_sorts() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.span("convert").unwrap().count, 2);
        assert!((a.span("convert").unwrap().total_secs - 3.0).abs() < 1e-9);
        assert_eq!(a.counter("convert/bytes_written"), Some(246912));
        let h = a.hist("load/atom_read_ns").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 100);
        assert_eq!(h.max, 4000);
        let mut paths: Vec<String> = a.spans.iter().map(|s| s.path.clone()).collect();
        let sorted = paths.clone();
        paths.sort();
        assert_eq!(paths, sorted);
    }

    #[test]
    fn hist_stat_roundtrips_to_histogram() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 100, 200, 4000, 1 << 40] {
            h.record(v);
        }
        let stat = HistStat::from_histogram("x", &h);
        assert_eq!(stat.to_histogram(), h);
        assert_eq!(stat.quantile(0.5), h.quantile(0.5));
        // Through a JSON roundtrip too (quantiles are what `ucp status`
        // reads back out of a metrics artifact).
        let r = Report {
            label: "q".into(),
            spans: vec![],
            counters: vec![],
            histograms: vec![stat],
        };
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back.histograms[0].quantile(0.99), h.quantile(0.99));
    }

    #[test]
    fn merge_into_empty_adopts_label() {
        let mut empty = Report::default();
        empty.merge(&sample());
        assert_eq!(empty.label, "unit");
        assert_eq!(empty, sample());
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE ucp_hist histogram"));
        assert!(
            text.contains("ucp_hist_bucket{run=\"unit\",name=\"load/atom_read_ns\",le=\"+Inf\"} 3")
        );
        assert!(text.contains("ucp_hist_count{run=\"unit\",name=\"load/atom_read_ns\"} 3"));
        assert!(text.contains("ucp_span_seconds_total{run=\"unit\",path=\"convert/extract\"} 0.75"));
        // The per-bucket JSON counts (1 each at le=127/255/4095) must come
        // out as a running cumulative series, ending at the total count.
        let buckets: Vec<(String, u64)> = text
            .lines()
            .filter(|l| l.starts_with("ucp_hist_bucket") && l.contains("atom_read_ns"))
            .map(|l| {
                let le = l.split("le=\"").nth(1).unwrap().split('"').next().unwrap();
                let v: u64 = l.rsplit(' ').next().unwrap().parse().unwrap();
                (le.to_string(), v)
            })
            .collect();
        assert_eq!(
            buckets,
            vec![
                ("127".into(), 1),
                ("255".into(), 2),
                ("4095".into(), 3),
                ("+Inf".into(), 3),
            ]
        );
    }
}
