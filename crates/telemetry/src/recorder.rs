//! The thread-safe metrics recorder: scoped span timers, monotonic
//! counters, and value histograms.
//!
//! A [`Recorder`] is cheap to consult when disabled — one relaxed atomic
//! load — so instrumentation can stay compiled into the hot paths
//! (conversion, loading, checkpoint saving) at near-zero cost. When
//! enabled, updates take a short mutex-protected map operation; the
//! instrumented code records per *phase*, *file*, or *atom*, never per
//! element, so contention stays negligible next to the work being timed.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::hist::Histogram;
use crate::report::{CounterStat, HistStat, Report, SpanStat};

/// Aggregated timings of one span path.
#[derive(Debug, Clone, Default)]
pub(crate) struct SpanAgg {
    /// Number of completed spans.
    pub count: u64,
    /// Total nanoseconds across completions.
    pub total_ns: u64,
    /// Shortest completion (ns).
    pub min_ns: u64,
    /// Longest completion (ns).
    pub max_ns: u64,
}

#[derive(Debug, Default)]
struct State {
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
}

/// A thread-safe telemetry recorder.
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    state: Mutex<State>,
}

thread_local! {
    /// Per-thread stack of open spans: `(recorder identity, full path)`.
    /// The identity keys the stack so independent recorders (e.g. a test's
    /// local recorder next to the process-global one) nest separately.
    static SPAN_STACK: RefCell<Vec<(usize, String)>> = const { RefCell::new(Vec::new()) };
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-global recorder used by the instrumented hot paths.
/// Starts disabled; `ucp --metrics-out` and the bench harness enable it.
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new_disabled)
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh, enabled recorder.
    pub fn new() -> Recorder {
        Recorder {
            enabled: AtomicBool::new(true),
            state: Mutex::new(State::default()),
        }
    }

    /// A fresh recorder that ignores all updates until enabled.
    pub fn new_disabled() -> Recorder {
        let r = Recorder::new();
        r.enabled.store(false, Ordering::Relaxed);
        r
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether updates are currently recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn identity(&self) -> usize {
        self as *const Recorder as usize
    }

    /// Lock the state, recovering it if a panicking thread poisoned the
    /// mutex. Every update is a self-contained map operation, so the
    /// state is never left half-written by a panic mid-update; recovering
    /// keeps a crashing rank thread from cascading into telemetry panics
    /// during the final metric flush.
    fn state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Add `n` to the named monotonic counter.
    #[inline]
    pub fn count(&self, name: &str, n: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.state();
        *state.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Record one observation into the named histogram.
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.state();
        state
            .hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Record a span duration directly under `path` (no nesting).
    #[inline]
    pub fn record_span(&self, path: &str, duration: Duration) {
        if !self.is_enabled() {
            return;
        }
        self.record_span_ns(path, duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    fn record_span_ns(&self, path: &str, ns: u64) {
        let mut state = self.state();
        let agg = state.spans.entry(path.to_string()).or_default();
        if agg.count == 0 {
            agg.min_ns = ns;
            agg.max_ns = ns;
        } else {
            agg.min_ns = agg.min_ns.min(ns);
            agg.max_ns = agg.max_ns.max(ns);
        }
        agg.count += 1;
        agg.total_ns += ns;
    }

    /// Open a scoped timer. The span's path is `parent-path/label` when
    /// another span of this recorder is open on the current thread, else
    /// `label` itself; the elapsed time is recorded when the returned
    /// guard drops. Guards must drop in LIFO order (the natural result of
    /// scoping) for nested paths to attribute correctly.
    ///
    /// When the recorder is disabled this is one atomic load and returns
    /// an inert guard.
    #[must_use = "a span records on drop; binding it to _ discards it immediately"]
    pub fn span(&self, label: &str) -> Span<'_> {
        if !self.is_enabled() {
            return Span {
                rec: self,
                path: String::new(),
                start: None,
            };
        }
        let id = self.identity();
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.iter().rev().find(|(rid, _)| *rid == id) {
                Some((_, parent)) => format!("{parent}/{label}"),
                None => label.to_string(),
            };
            stack.push((id, path.clone()));
            path
        });
        Span {
            rec: self,
            path,
            start: Some(Instant::now()),
        }
    }

    /// Wipe all recorded data (the enabled flag is untouched).
    pub fn reset(&self) {
        let mut state = self.state();
        *state = State::default();
    }

    /// Snapshot everything recorded so far into a [`Report`].
    pub fn report(&self, label: &str) -> Report {
        let state = self.state();
        Report {
            label: label.to_string(),
            spans: state
                .spans
                .iter()
                .map(|(path, agg)| SpanStat {
                    path: path.clone(),
                    count: agg.count,
                    total_secs: agg.total_ns as f64 / 1e9,
                    min_secs: agg.min_ns as f64 / 1e9,
                    max_secs: agg.max_ns as f64 / 1e9,
                })
                .collect(),
            counters: state
                .counters
                .iter()
                .map(|(name, value)| CounterStat {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            histograms: state
                .hists
                .iter()
                .map(|(name, h)| HistStat::from_histogram(name, h))
                .collect(),
        }
    }

    /// Fold a snapshot [`Report`] into this recorder — the receive side of
    /// fleet aggregation, where rank 0 absorbs merged per-rank snapshots
    /// so they flow out through the ordinary `--metrics-out` export.
    /// Counters add, histograms merge bucket-wise, spans accumulate
    /// (span seconds re-enter as nanoseconds at microsecond fidelity,
    /// matching the report's own rounding). No-op while disabled.
    pub fn absorb(&self, report: &Report) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.state();
        for c in &report.counters {
            *state.counters.entry(c.name.clone()).or_insert(0) += c.value;
        }
        for h in &report.histograms {
            state
                .hists
                .entry(h.name.clone())
                .or_default()
                .merge(&h.to_histogram());
        }
        for s in &report.spans {
            let agg = state.spans.entry(s.path.clone()).or_default();
            let ns = |secs: f64| (secs.max(0.0) * 1e9).round() as u64;
            if agg.count == 0 {
                agg.min_ns = ns(s.min_secs);
                agg.max_ns = ns(s.max_secs);
            } else {
                agg.min_ns = agg.min_ns.min(ns(s.min_secs));
                agg.max_ns = agg.max_ns.max(ns(s.max_secs));
            }
            agg.count += s.count;
            agg.total_ns += ns(s.total_secs);
        }
    }
}

/// A scoped span timer; records its elapsed time on drop.
#[derive(Debug)]
pub struct Span<'a> {
    rec: &'a Recorder,
    path: String,
    /// `None` when the recorder was disabled at creation (inert guard).
    start: Option<Instant>,
}

impl Span<'_> {
    /// The full path this span records under (empty for inert guards).
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let id = self.rec.identity();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // LIFO pop of this recorder's innermost entry; out-of-order
            // drops only mis-parent later siblings, never panic.
            if let Some(i) = stack
                .iter()
                .rposition(|(rid, p)| *rid == id && *p == self.path)
            {
                stack.remove(i);
            }
        });
        self.rec.record_span_ns(&self.path, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::new_disabled();
        r.count("c", 5);
        r.observe("h", 10);
        {
            let _s = r.span("phase");
        }
        let report = r.report("test");
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
        assert!(report.histograms.is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let r = Recorder::new();
        r.count("bytes", 100);
        r.count("bytes", 50);
        r.count("files", 1);
        let report = r.report("t");
        assert_eq!(report.counter("bytes"), Some(150));
        assert_eq!(report.counter("files"), Some(1));
        assert_eq!(report.counter("missing"), None);
    }

    #[test]
    fn spans_nest_into_paths() {
        let r = Recorder::new();
        {
            let _outer = r.span("convert");
            {
                let _inner = r.span("extract");
                std::thread::sleep(Duration::from_millis(2));
            }
            {
                let _inner = r.span("union");
            }
        }
        let report = r.report("t");
        let paths: Vec<&str> = report.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["convert", "convert/extract", "convert/union"]);
    }

    #[test]
    fn nested_span_timing_is_monotonic() {
        let r = Recorder::new();
        {
            let _outer = r.span("parent");
            for _ in 0..3 {
                let _inner = r.span("child");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let report = r.report("t");
        let parent = report.span("parent").unwrap();
        let child = report.span("parent/child").unwrap();
        assert_eq!(parent.count, 1);
        assert_eq!(child.count, 3);
        assert!(
            parent.total_secs >= child.total_secs,
            "parent {} < children {}",
            parent.total_secs,
            child.total_secs
        );
        assert!(child.min_secs <= child.max_secs);
        assert!(child.total_secs >= child.max_secs);
    }

    #[test]
    fn spans_on_fresh_threads_are_top_level() {
        let r = Recorder::new();
        let _outer = r.span("main_phase");
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = r.span("worker_phase");
            });
        });
        drop(_outer);
        let report = r.report("t");
        assert!(report.span("worker_phase").is_some());
        assert!(report.span("main_phase/worker_phase").is_none());
    }

    #[test]
    fn two_recorders_nest_independently() {
        let a = Recorder::new();
        let b = Recorder::new();
        let _oa = a.span("a_outer");
        let _ob = b.span("b_outer");
        {
            let ia = a.span("inner");
            let ib = b.span("inner");
            assert_eq!(ia.path(), "a_outer/inner");
            assert_eq!(ib.path(), "b_outer/inner");
        }
    }

    #[test]
    fn concurrent_counter_increments_from_many_threads() {
        let r = Recorder::new();
        let threads: u64 = 8;
        let per_thread: u64 = 1000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let r = &r;
                s.spawn(move || {
                    for i in 0..per_thread {
                        r.count("shared", 1);
                        r.observe("values", t * per_thread + i);
                    }
                });
            }
        });
        let report = r.report("t");
        assert_eq!(report.counter("shared"), Some(threads * per_thread));
        let h = report.hist("values").unwrap();
        assert_eq!(h.count, threads * per_thread);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, threads * per_thread - 1);
    }

    #[test]
    fn concurrent_spans_and_hists_merge_deterministically() {
        // Spans, counters, and histograms hammered from many threads must
        // produce the exact totals of the serial equivalent — the invariant
        // fleet aggregation and the overlapped save writers lean on.
        let r = Recorder::new();
        let threads: u64 = 8;
        let per_thread: u64 = 500;
        std::thread::scope(|s| {
            for t in 0..threads {
                let r = &r;
                s.spawn(move || {
                    for i in 0..per_thread {
                        let _sp = r.span("work");
                        r.count("ops", 2);
                        r.observe("latency", (t + 1) * 10);
                        r.observe("latency", i);
                    }
                });
            }
        });
        let report = r.report("t");
        assert_eq!(report.counter("ops"), Some(threads * per_thread * 2));
        let work = report.span("work").unwrap();
        assert_eq!(work.count, threads * per_thread);
        assert!(work.min_secs <= work.max_secs);
        assert!(work.total_secs >= work.max_secs);
        let h = report.hist("latency").unwrap();
        assert_eq!(h.count, threads * per_thread * 2);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, per_thread - 1);
        // Bucket counts must sum to the observation count (no lost or
        // double-counted updates under contention).
        assert_eq!(
            h.buckets.iter().map(|b| b.count).sum::<u64>(),
            threads * per_thread * 2
        );
    }

    #[test]
    fn absorb_folds_a_report_in() {
        let src = Recorder::new();
        src.count("fleet/ops", 7);
        src.observe("fleet/ms", 100);
        src.observe("fleet/ms", 4000);
        src.record_span("fleet/phase", Duration::from_millis(3));
        let snapshot = src.report("rank1");

        let dst = Recorder::new();
        dst.count("fleet/ops", 1);
        dst.absorb(&snapshot);
        dst.absorb(&snapshot);
        let report = dst.report("t");
        assert_eq!(report.counter("fleet/ops"), Some(15));
        let h = report.hist("fleet/ms").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!((h.min, h.max), (100, 4000));
        let sp = report.span("fleet/phase").unwrap();
        assert_eq!(sp.count, 2);
        assert!((sp.total_secs - 0.006).abs() < 1e-4);

        let disabled = Recorder::new_disabled();
        disabled.absorb(&snapshot);
        disabled.set_enabled(true);
        assert!(disabled.report("t").counters.is_empty());
    }

    #[test]
    fn reset_clears_but_keeps_enabled() {
        let r = Recorder::new();
        r.count("x", 1);
        r.reset();
        assert!(r.is_enabled());
        assert!(r.report("t").counters.is_empty());
    }

    #[test]
    fn poisoned_state_recovers_instead_of_cascading() {
        let r = Recorder::new();
        r.count("before", 1);
        // Poison the state mutex by panicking while holding it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = r.state.lock().unwrap();
            panic!("rank thread dies mid-flush");
        }));
        assert!(r.state.is_poisoned());
        // All five lock sites must keep working on the recovered state.
        r.count("after", 2);
        r.observe("h", 7);
        r.record_span("p", Duration::from_nanos(5));
        {
            let _s = r.span("scoped");
        }
        let report = r.report("t");
        assert_eq!(report.counter("before"), Some(1));
        assert_eq!(report.counter("after"), Some(2));
        assert!(report.hist("h").is_some());
        assert!(report.span("p").is_some());
        assert!(report.span("scoped").is_some());
        r.reset();
        assert!(r.report("t").counters.is_empty());
    }

    #[test]
    fn global_starts_disabled() {
        // Other tests in the process may enable the global recorder, so
        // only assert the accessor is stable and usable.
        let g = global();
        let id1 = g as *const Recorder;
        let id2 = global() as *const Recorder;
        assert_eq!(id1, id2);
    }
}
