//! Per-rank distributed tracing: causal event timelines for the SPMD
//! cluster.
//!
//! The metrics recorder ([`crate::Recorder`]) aggregates per process —
//! good for totals, blind to *which rank* stalls a collective or whether
//! overlapped checkpointing actually overlaps. This module records typed,
//! timestamped events into per-thread buffers:
//!
//! - **Spans** (`Begin`/`End`) — compute phases (`step`, `forward`),
//!   checkpoint phases (`snapshot`, `persist`, `drain`), convert work
//!   items (`extract`, `union:<pattern>`), load phases.
//! - **Collectives** — one event per collective call per rank, carrying
//!   `enter ≤ ready ≤ exit` timestamps so *wait time* (blocked on peers,
//!   `ready − enter`) is separable from *transfer/reduce time*
//!   (`exit − ready`), plus the op, group label, and payload bytes.
//! - **Edges** — point-to-point send/recv markers (pipeline activations),
//!   with peer and byte count.
//! - **Marks** — instantaneous phase markers.
//!
//! Each traced thread owns its buffer: recording appends to a `Vec`
//! behind a mutex that only the owning thread touches until the final
//! merge, so there is no cross-rank contention on the hot path
//! ("lock-free-ish"). Every event carries a nanosecond timestamp from one
//! process-wide monotonic clock (all ranks are threads of one process, so
//! timestamps are directly comparable — no cross-node clock skew to
//! correct) and a globally ordered sequence number, which makes merged
//! timelines causally consistent even when two events land in the same
//! nanosecond tick.
//!
//! After a run, [`Tracer::take_session`] merges the buffers into a
//! [`TraceSession`], which exports Chrome Trace Format JSON (one pid per
//! rank — load it in Perfetto or `chrome://tracing`), parses it back, and
//! computes the [`TraceSummary`] analysis behind `ucp trace --summary`.
//!
//! The global tracer starts **disabled**; every instrumentation call then
//! costs one relaxed atomic load, the same zero-overhead contract (and
//! `telemetry_disabled` bench group) as the metrics recorder.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use crate::hist::Histogram;
use crate::json::Json;

/// Chrome pid used for threads that are not cluster ranks (the driver
/// process and its worker pools). Rank pids are the rank ids themselves.
pub const DRIVER_PID: u64 = 1_000_000;

/// Event category (the Chrome `cat` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceCat {
    /// Collective communication (all-reduce, all-gather, barrier, ...).
    Collective,
    /// Training compute phases (step, forward, backward, optim).
    Compute,
    /// Checkpoint phases (snapshot, persist, drain, publish).
    Checkpoint,
    /// Conversion work items (extract, union, strip-padding).
    Convert,
    /// Universal-load phases.
    Load,
    /// Point-to-point send/recv edges.
    Comm,
    /// Elastic-recovery phases (detect, teardown, convert, resume).
    Recovery,
}

impl TraceCat {
    /// The Chrome `cat` string.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceCat::Collective => "collective",
            TraceCat::Compute => "compute",
            TraceCat::Checkpoint => "checkpoint",
            TraceCat::Convert => "convert",
            TraceCat::Load => "load",
            TraceCat::Comm => "comm",
            TraceCat::Recovery => "recovery",
        }
    }

    /// Parse a Chrome `cat` string.
    pub fn parse(s: &str) -> Option<TraceCat> {
        Some(match s {
            "collective" => TraceCat::Collective,
            "compute" => TraceCat::Compute,
            "checkpoint" => TraceCat::Checkpoint,
            "convert" => TraceCat::Convert,
            "load" => TraceCat::Load,
            "comm" => TraceCat::Comm,
            "recovery" => TraceCat::Recovery,
            _ => return None,
        })
    }
}

/// What happened (the typed half of a [`TraceEvent`]).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A phase opened.
    Begin {
        /// Category.
        cat: TraceCat,
        /// Phase name (stable across occurrences, e.g. `forward`).
        name: String,
    },
    /// The matching phase closed (LIFO per thread).
    End {
        /// Category (mirrors the `Begin`).
        cat: TraceCat,
        /// Phase name (mirrors the `Begin`).
        name: String,
    },
    /// One collective call on one rank. The event timestamp is *enter*
    /// (the rank arrived at the collective).
    Collective {
        /// Operation (`all_reduce`, `barrier`, ...).
        op: String,
        /// Communication group label (e.g. `0-3`).
        group: String,
        /// Approximate payload bytes contributed by this rank.
        bytes: u64,
        /// When this rank stopped waiting on peers (ns, same clock).
        ready_ns: u64,
        /// When the collective returned (ns, same clock).
        exit_ns: u64,
    },
    /// A point-to-point message edge.
    Edge {
        /// True for the send side, false for the receive side.
        send: bool,
        /// Peer rank.
        peer: u64,
        /// Approximate payload bytes.
        bytes: u64,
    },
    /// An instantaneous marker.
    Mark {
        /// Category.
        cat: TraceCat,
        /// Marker name.
        name: String,
    },
}

/// One recorded event: a monotonic timestamp, a causal sequence number
/// (globally ordered across threads), and the typed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the tracer's epoch (process-wide monotonic clock).
    pub ts_ns: u64,
    /// Global sequence number: a total order consistent with causality.
    pub seq: u64,
    /// The typed event.
    pub kind: EventKind,
}

/// One thread's buffer. Only the owning thread appends; the mutex exists
/// for the final merge, so recording never contends across ranks.
#[derive(Debug)]
struct ThreadBuffer {
    pid: u64,
    tid: u64,
    label: String,
    events: Mutex<Vec<TraceEvent>>,
}

fn lock_events(buf: &ThreadBuffer) -> MutexGuard<'_, Vec<TraceEvent>> {
    // A panicking rank thread must not cascade into tracing panics.
    buf.events.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// Per-thread buffer bindings, keyed by tracer identity (a test's
    /// local tracer and the global one bind independently).
    static TLS_BUFFERS: RefCell<Vec<(usize, Arc<ThreadBuffer>)>> = const { RefCell::new(Vec::new()) };
}

/// The distributed-trace recorder. See the module docs for the model.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    seq: AtomicU64,
    next_tid: AtomicU64,
    epoch: Instant,
    buffers: Mutex<Vec<Arc<ThreadBuffer>>>,
}

static GLOBAL: OnceLock<Tracer> = OnceLock::new();

/// The process-global tracer used by the instrumented code. Starts
/// disabled; `ucp --trace-out` and tests enable it.
pub fn global() -> &'static Tracer {
    GLOBAL.get_or_init(Tracer::new_disabled)
}

/// Convenience: whether the global tracer is recording.
#[inline]
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Convenience: open a span on the global tracer.
#[inline]
pub fn span(cat: TraceCat, name: &str) -> TraceSpan<'static> {
    global().span(cat, name)
}

/// Convenience: open a collective record on the global tracer.
#[inline]
pub fn collective(op: &'static str, group: &str, bytes: u64) -> CollectiveSpan<'static> {
    global().collective(op, group, bytes)
}

/// Convenience: record a p2p edge on the global tracer.
#[inline]
pub fn edge(send: bool, peer: usize, bytes: u64) {
    global().edge(send, peer, bytes)
}

/// Convenience: record an instantaneous marker on the global tracer.
#[inline]
pub fn mark(cat: TraceCat, name: &str) {
    global().mark(cat, name)
}

/// Convenience: bind the current thread to `rank` on the global tracer.
#[inline]
pub fn register_rank(rank: usize, label: &str) {
    global().register(rank as u64, label)
}

/// Convenience: bind the current thread to an explicit pid on the global
/// tracer (use [`DRIVER_PID`] for non-rank threads).
#[inline]
pub fn register_thread(pid: u64, label: &str) {
    global().register(pid, label)
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh, enabled tracer.
    pub fn new() -> Tracer {
        Tracer {
            enabled: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            next_tid: AtomicU64::new(0),
            epoch: Instant::now(),
            buffers: Mutex::new(Vec::new()),
        }
    }

    /// A fresh tracer that ignores all events until enabled.
    pub fn new_disabled() -> Tracer {
        let t = Tracer::new();
        t.enabled.store(false, Ordering::Relaxed);
        t
    }

    /// Whether events are currently recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off. Threads registered while disabled are
    /// not remembered — register after enabling.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Wipe all recorded events and thread bindings, then enable.
    pub fn start(&self) {
        self.take_session();
        self.set_enabled(true);
    }

    fn identity(&self) -> usize {
        self as *const Tracer as usize
    }

    /// Nanoseconds since this tracer's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Bind the current thread to `pid` with a human-readable label,
    /// replacing any previous binding for this tracer. No-op while
    /// disabled.
    pub fn register(&self, pid: u64, label: &str) {
        if !self.is_enabled() {
            return;
        }
        let buf = Arc::new(ThreadBuffer {
            pid,
            tid: self.next_tid.fetch_add(1, Ordering::Relaxed),
            label: label.to_string(),
            events: Mutex::new(Vec::new()),
        });
        self.buffers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&buf));
        let id = self.identity();
        TLS_BUFFERS.with(|tls| {
            let mut tls = tls.borrow_mut();
            tls.retain(|(tid, _)| *tid != id);
            tls.push((id, buf));
        });
    }

    /// The current thread's buffer, auto-registering unbound threads as
    /// driver threads (worker pools, background writers).
    fn buffer(&self) -> Arc<ThreadBuffer> {
        let id = self.identity();
        let existing = TLS_BUFFERS.with(|tls| {
            tls.borrow()
                .iter()
                .find(|(tid, _)| *tid == id)
                .map(|(_, b)| Arc::clone(b))
        });
        if let Some(buf) = existing {
            return buf;
        }
        self.register(DRIVER_PID, "worker");
        TLS_BUFFERS.with(|tls| {
            tls.borrow()
                .iter()
                .find(|(tid, _)| *tid == id)
                .map(|(_, b)| Arc::clone(b))
                .expect("just registered")
        })
    }

    fn push(&self, kind: EventKind) {
        let ev = TraceEvent {
            ts_ns: self.now_ns(),
            seq: self.next_seq(),
            kind,
        };
        lock_events(&self.buffer()).push(ev);
    }

    /// Open a span; the `End` event is recorded when the guard drops.
    /// One relaxed atomic load and an inert guard while disabled.
    #[must_use = "a trace span records its End on drop"]
    pub fn span(&self, cat: TraceCat, name: &str) -> TraceSpan<'_> {
        if !self.is_enabled() {
            return TraceSpan {
                tracer: self,
                cat,
                name: String::new(),
                live: false,
            };
        }
        self.push(EventKind::Begin {
            cat,
            name: name.to_string(),
        });
        TraceSpan {
            tracer: self,
            cat,
            name: name.to_string(),
            live: true,
        }
    }

    /// Open a collective record: the enter timestamp is now, `ready()`
    /// marks the end of the peer wait, and dropping the guard records the
    /// exit. Inert while disabled.
    #[must_use = "a collective span records on drop"]
    pub fn collective(&self, op: &'static str, group: &str, bytes: u64) -> CollectiveSpan<'_> {
        if !self.is_enabled() {
            return CollectiveSpan {
                tracer: self,
                op,
                group: String::new(),
                bytes,
                enter_ns: 0,
                ready_ns: None,
                live: false,
            };
        }
        CollectiveSpan {
            tracer: self,
            op,
            group: group.to_string(),
            bytes,
            enter_ns: self.now_ns(),
            ready_ns: None,
            live: true,
        }
    }

    /// Record a p2p edge event.
    #[inline]
    pub fn edge(&self, send: bool, peer: usize, bytes: u64) {
        if !self.is_enabled() {
            return;
        }
        self.push(EventKind::Edge {
            send,
            peer: peer as u64,
            bytes,
        });
    }

    /// Record an instantaneous marker.
    #[inline]
    pub fn mark(&self, cat: TraceCat, name: &str) {
        if !self.is_enabled() {
            return;
        }
        self.push(EventKind::Mark {
            cat,
            name: name.to_string(),
        });
    }

    /// Drain every thread's buffer into a merged [`TraceSession`] and
    /// forget all thread bindings. Safe while threads are still running
    /// (they re-register lazily as driver threads on their next event).
    pub fn take_session(&self) -> TraceSession {
        let buffers: Vec<Arc<ThreadBuffer>> =
            std::mem::take(&mut *self.buffers.lock().unwrap_or_else(PoisonError::into_inner));
        let mut tracks: Vec<ThreadTrack> = buffers
            .iter()
            .map(|b| ThreadTrack {
                pid: b.pid,
                tid: b.tid,
                label: b.label.clone(),
                events: std::mem::take(&mut *lock_events(b)),
            })
            .filter(|t| !t.events.is_empty())
            .collect();
        tracks.sort_by_key(|t| (t.pid, t.tid));
        TraceSession { tracks }
    }
}

/// Scoped span guard; records the `End` event on drop.
#[derive(Debug)]
pub struct TraceSpan<'a> {
    tracer: &'a Tracer,
    cat: TraceCat,
    name: String,
    live: bool,
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        self.tracer.push(EventKind::End {
            cat: self.cat,
            name: std::mem::take(&mut self.name),
        });
    }
}

/// In-flight collective record; see [`Tracer::collective`].
#[derive(Debug)]
pub struct CollectiveSpan<'a> {
    tracer: &'a Tracer,
    op: &'static str,
    group: String,
    bytes: u64,
    enter_ns: u64,
    ready_ns: Option<u64>,
    live: bool,
}

impl CollectiveSpan<'_> {
    /// Mark the moment this rank stopped waiting on its peers (last
    /// needed payload arrived). If never called, ready collapses to exit.
    pub fn ready(&mut self) {
        if self.live && self.ready_ns.is_none() {
            self.ready_ns = Some(self.tracer.now_ns());
        }
    }
}

impl Drop for CollectiveSpan<'_> {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let exit_ns = self.tracer.now_ns();
        let ready_ns = self
            .ready_ns
            .unwrap_or(exit_ns)
            .clamp(self.enter_ns, exit_ns);
        let ev = TraceEvent {
            ts_ns: self.enter_ns,
            seq: self.tracer.next_seq(),
            kind: EventKind::Collective {
                op: self.op.to_string(),
                group: std::mem::take(&mut self.group),
                bytes: self.bytes,
                ready_ns,
                exit_ns,
            },
        };
        lock_events(&self.tracer.buffer()).push(ev);
    }
}

// ---------------------------------------------------------------------------
// Merged sessions and Chrome Trace Format export
// ---------------------------------------------------------------------------

/// One thread's merged timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadTrack {
    /// Chrome pid: the rank id, or [`DRIVER_PID`].
    pub pid: u64,
    /// Chrome tid (unique per thread across the session).
    pub tid: u64,
    /// Human-readable thread label (`main`, `saver`, `worker`).
    pub label: String,
    /// Events in recording order.
    pub events: Vec<TraceEvent>,
}

/// A merged multi-thread trace: the unit of export, import, and analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSession {
    /// Per-thread timelines, sorted by (pid, tid).
    pub tracks: Vec<ThreadTrack>,
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

impl TraceSession {
    /// Distinct rank pids present (driver threads excluded).
    pub fn ranks(&self) -> BTreeSet<u64> {
        self.tracks
            .iter()
            .filter(|t| t.pid < DRIVER_PID)
            .map(|t| t.pid)
            .collect()
    }

    /// Total recorded events.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Render as a Chrome Trace Format document (`traceEvents` array of
    /// `B`/`E`/`i` phases plus `M` metadata naming each pid/tid), loadable
    /// in Perfetto / `chrome://tracing`. Timestamps are microseconds; the
    /// exact nanosecond clock and the causal sequence number ride along in
    /// `args` so [`TraceSession::from_chrome_json`] is lossless.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<Json> = Vec::new();
        let mut named_pids: BTreeSet<u64> = BTreeSet::new();
        for track in &self.tracks {
            if named_pids.insert(track.pid) {
                let name = if track.pid == DRIVER_PID {
                    "driver".to_string()
                } else {
                    format!("rank {}", track.pid)
                };
                events.push(Json::obj(vec![
                    ("name", Json::Str("process_name".into())),
                    ("ph", Json::Str("M".into())),
                    ("pid", num(track.pid)),
                    ("tid", num(track.tid)),
                    ("args", Json::obj(vec![("name", Json::Str(name))])),
                ]));
            }
            events.push(Json::obj(vec![
                ("name", Json::Str("thread_name".into())),
                ("ph", Json::Str("M".into())),
                ("pid", num(track.pid)),
                ("tid", num(track.tid)),
                (
                    "args",
                    Json::obj(vec![("name", Json::Str(track.label.clone()))]),
                ),
            ]));
            for ev in &track.events {
                events.extend(chrome_event(track, ev));
            }
        }
        let doc = Json::obj(vec![
            ("displayTimeUnit", Json::Str("ms".into())),
            ("traceEvents", Json::Arr(events)),
        ]);
        let mut text = doc.pretty();
        text.push('\n');
        text
    }

    /// Parse a Chrome Trace Format document produced by
    /// [`TraceSession::to_chrome_json`] back into a session.
    pub fn from_chrome_json(text: &str) -> Result<TraceSession, String> {
        let doc = Json::parse(text)?;
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("missing traceEvents array")?;
        let mut labels: BTreeMap<(u64, u64), String> = BTreeMap::new();
        // Per-(pid, tid) open-span stacks for matching E to B.
        let mut stacks: BTreeMap<(u64, u64), Vec<PendingBegin>> = BTreeMap::new();
        let mut tracks: BTreeMap<(u64, u64), Vec<TraceEvent>> = BTreeMap::new();
        for ev in events {
            let ph = ev
                .get("ph")
                .and_then(Json::as_str)
                .ok_or("event missing ph")?;
            let pid = ev
                .get("pid")
                .and_then(Json::as_u64)
                .ok_or("event missing pid")?;
            let tid = ev
                .get("tid")
                .and_then(Json::as_u64)
                .ok_or("event missing tid")?;
            let key = (pid, tid);
            let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
            let args = ev.get("args");
            let arg_u64 = |k: &str| args.and_then(|a| a.get(k)).and_then(Json::as_u64);
            let ts_ns = arg_u64("ts_ns").unwrap_or_else(|| {
                (ev.get("ts").and_then(Json::as_f64).unwrap_or(0.0) * 1000.0).round() as u64
            });
            let seq = arg_u64("seq").unwrap_or(0);
            let cat = ev
                .get("cat")
                .and_then(Json::as_str)
                .and_then(TraceCat::parse);
            match ph {
                "M" => {
                    if name == "thread_name" {
                        if let Some(l) = args.and_then(|a| a.get("name")).and_then(Json::as_str) {
                            labels.insert(key, l.to_string());
                        }
                    }
                }
                "B" => {
                    stacks.entry(key).or_default().push(PendingBegin {
                        ts_ns,
                        seq,
                        cat: cat.ok_or_else(|| format!("B event '{name}' has unknown cat"))?,
                        name: name.to_string(),
                        group: args
                            .and_then(|a| a.get("group"))
                            .and_then(Json::as_str)
                            .map(str::to_string),
                        bytes: arg_u64("bytes"),
                        ready_ns: arg_u64("ready_ns"),
                    });
                }
                "E" => {
                    let begun = stacks.entry(key).or_default().pop().ok_or_else(|| {
                        format!("E without B for '{name}' on pid {pid} tid {tid}")
                    })?;
                    let out = tracks.entry(key).or_default();
                    if begun.cat == TraceCat::Collective {
                        out.push(TraceEvent {
                            ts_ns: begun.ts_ns,
                            seq: begun.seq,
                            kind: EventKind::Collective {
                                op: begun.name,
                                group: begun.group.unwrap_or_default(),
                                bytes: begun.bytes.unwrap_or(0),
                                ready_ns: begun.ready_ns.unwrap_or(ts_ns),
                                exit_ns: ts_ns,
                            },
                        });
                    } else {
                        out.push(TraceEvent {
                            ts_ns: begun.ts_ns,
                            seq: begun.seq,
                            kind: EventKind::Begin {
                                cat: begun.cat,
                                name: begun.name.clone(),
                            },
                        });
                        out.push(TraceEvent {
                            ts_ns,
                            seq,
                            kind: EventKind::End {
                                cat: begun.cat,
                                name: begun.name,
                            },
                        });
                    }
                }
                "i" | "I" => {
                    let kind = if cat == Some(TraceCat::Comm) {
                        EventKind::Edge {
                            send: name == "send",
                            peer: arg_u64("peer").unwrap_or(0),
                            bytes: arg_u64("bytes").unwrap_or(0),
                        }
                    } else {
                        EventKind::Mark {
                            cat: cat.ok_or_else(|| format!("i event '{name}' has unknown cat"))?,
                            name: name.to_string(),
                        }
                    };
                    tracks
                        .entry(key)
                        .or_default()
                        .push(TraceEvent { ts_ns, seq, kind });
                }
                other => return Err(format!("unsupported phase '{other}'")),
            }
        }
        for ((pid, tid), stack) in &stacks {
            if let Some(open) = stack.last() {
                return Err(format!(
                    "B without E for '{}' on pid {pid} tid {tid}",
                    open.name
                ));
            }
        }
        let mut out: Vec<ThreadTrack> = tracks
            .into_iter()
            .map(|((pid, tid), mut events)| {
                events.sort_by_key(|e| e.seq);
                ThreadTrack {
                    pid,
                    tid,
                    label: labels.get(&(pid, tid)).cloned().unwrap_or_default(),
                    events,
                }
            })
            .collect();
        out.sort_by_key(|t| (t.pid, t.tid));
        Ok(TraceSession { tracks: out })
    }

    /// Compute the analysis behind `ucp trace --summary`.
    pub fn summary(&self) -> TraceSummary {
        let mut ranks: BTreeMap<u64, RankSummary> = BTreeMap::new();
        let mut ops: BTreeMap<String, OpWait> = BTreeMap::new();
        for track in &self.tracks {
            if track.events.is_empty() {
                continue;
            }
            let first = track.events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
            let last = track
                .events
                .iter()
                .map(|e| match &e.kind {
                    EventKind::Collective { exit_ns, .. } => *exit_ns,
                    _ => e.ts_ns,
                })
                .max()
                .unwrap_or(0);
            let entry = ranks.entry(track.pid).or_insert_with(|| RankSummary {
                pid: track.pid,
                first_ns: first,
                last_ns: last,
                ..RankSummary::default()
            });
            entry.first_ns = entry.first_ns.min(first);
            entry.last_ns = entry.last_ns.max(last);
            entry.events += track.events.len() as u64;
            for ev in &track.events {
                if let EventKind::Collective {
                    op,
                    bytes,
                    ready_ns,
                    exit_ns,
                    ..
                } = &ev.kind
                {
                    let wait = ready_ns.saturating_sub(ev.ts_ns);
                    let total = exit_ns.saturating_sub(ev.ts_ns);
                    entry.collectives += 1;
                    entry.collective_ns += total;
                    entry.wait_ns += wait;
                    let ow = ops.entry(op.clone()).or_insert_with(|| OpWait {
                        op: op.clone(),
                        ..OpWait::default()
                    });
                    ow.count += 1;
                    ow.bytes += bytes;
                    ow.total_wait_ns += wait;
                    ow.total_comm_ns += total - wait.min(total);
                    ow.wait_hist.record(wait);
                }
            }
        }
        let mut rank_rows: Vec<RankSummary> = ranks.into_values().collect();
        for r in &mut rank_rows {
            r.wall_ns = r.last_ns.saturating_sub(r.first_ns);
            r.busy_ns = r.wall_ns.saturating_sub(r.collective_ns);
        }
        // Straggler ranking: the rank everyone else waits on is the one
        // that waits the *least* inside collectives.
        let mut stragglers: Vec<(u64, u64)> = rank_rows
            .iter()
            .filter(|r| r.pid < DRIVER_PID)
            .map(|r| (r.pid, r.wait_ns))
            .collect();
        stragglers.sort_by_key(|&(pid, wait)| (wait, pid));
        TraceSummary {
            ranks: rank_rows,
            ops: ops.into_values().collect(),
            stragglers,
            critical_path: self.critical_path(),
        }
    }

    /// Approximate critical path: the top-level (unnested) spans of every
    /// thread, grouped by phase name, keeping the slowest instance of
    /// each phase, ordered by start time. For an SPMD program whose
    /// phases are separated by barriers this is exactly the chain of
    /// slowest ranks; for overlapping phases it is a useful upper sketch.
    pub fn critical_path(&self) -> Vec<CritSegment> {
        let mut slowest: BTreeMap<String, CritSegment> = BTreeMap::new();
        for track in &self.tracks {
            let mut depth = 0usize;
            let mut open: Vec<(u64, &str, TraceCat)> = Vec::new();
            for ev in &track.events {
                match &ev.kind {
                    EventKind::Begin { cat, name } => {
                        open.push((ev.ts_ns, name, *cat));
                        depth += 1;
                    }
                    EventKind::End { .. } => {
                        depth = depth.saturating_sub(1);
                        if let Some((start, name, cat)) = open.pop() {
                            if depth == 0 {
                                let dur = ev.ts_ns.saturating_sub(start);
                                let seg = slowest.entry(name.to_string()).or_insert(CritSegment {
                                    name: name.to_string(),
                                    cat,
                                    pid: track.pid,
                                    start_ns: start,
                                    dur_ns: dur,
                                });
                                if dur > seg.dur_ns {
                                    seg.pid = track.pid;
                                    seg.start_ns = start;
                                    seg.dur_ns = dur;
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut path: Vec<CritSegment> = slowest.into_values().collect();
        path.sort_by_key(|s| (s.start_ns, s.pid));
        path
    }
}

/// An open `B` awaiting its `E` during Chrome-trace parsing.
struct PendingBegin {
    ts_ns: u64,
    seq: u64,
    cat: TraceCat,
    name: String,
    group: Option<String>,
    bytes: Option<u64>,
    ready_ns: Option<u64>,
}

/// Render one [`TraceEvent`] as Chrome trace event objects.
fn chrome_event(track: &ThreadTrack, ev: &TraceEvent) -> Vec<Json> {
    let us = |ns: u64| Json::Num(ns as f64 / 1000.0);
    let base = |ph: &str, name: &str, cat: TraceCat, ts_ns: u64, args: Vec<(&str, Json)>| {
        Json::obj(vec![
            ("name", Json::Str(name.to_string())),
            ("cat", Json::Str(cat.as_str().to_string())),
            ("ph", Json::Str(ph.to_string())),
            ("ts", us(ts_ns)),
            ("pid", num(track.pid)),
            ("tid", num(track.tid)),
            ("args", Json::obj(args)),
        ])
    };
    match &ev.kind {
        EventKind::Begin { cat, name } => vec![base(
            "B",
            name,
            *cat,
            ev.ts_ns,
            vec![("seq", num(ev.seq)), ("ts_ns", num(ev.ts_ns))],
        )],
        EventKind::End { cat, name } => vec![base(
            "E",
            name,
            *cat,
            ev.ts_ns,
            vec![("seq", num(ev.seq)), ("ts_ns", num(ev.ts_ns))],
        )],
        EventKind::Collective {
            op,
            group,
            bytes,
            ready_ns,
            exit_ns,
        } => vec![
            base(
                "B",
                op,
                TraceCat::Collective,
                ev.ts_ns,
                vec![
                    ("seq", num(ev.seq)),
                    ("ts_ns", num(ev.ts_ns)),
                    ("group", Json::Str(group.clone())),
                    ("bytes", num(*bytes)),
                    ("ready_ns", num(*ready_ns)),
                    ("wait_ns", num(ready_ns.saturating_sub(ev.ts_ns))),
                ],
            ),
            base(
                "E",
                op,
                TraceCat::Collective,
                *exit_ns,
                vec![("seq", num(ev.seq)), ("ts_ns", num(*exit_ns))],
            ),
        ],
        EventKind::Edge { send, peer, bytes } => {
            let mut e = base(
                "i",
                if *send { "send" } else { "recv" },
                TraceCat::Comm,
                ev.ts_ns,
                vec![
                    ("seq", num(ev.seq)),
                    ("ts_ns", num(ev.ts_ns)),
                    ("peer", num(*peer)),
                    ("bytes", num(*bytes)),
                ],
            );
            if let Json::Obj(m) = &mut e {
                m.insert("s".into(), Json::Str("t".into()));
            }
            vec![e]
        }
        EventKind::Mark { cat, name } => vec![base(
            "i",
            name,
            *cat,
            ev.ts_ns,
            vec![("seq", num(ev.seq)), ("ts_ns", num(ev.ts_ns))],
        )],
    }
}

// ---------------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------------

/// Per-rank (per-pid) busy/wait accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankSummary {
    /// Rank id, or [`DRIVER_PID`].
    pub pid: u64,
    /// Earliest event timestamp (ns).
    pub first_ns: u64,
    /// Latest event timestamp (ns).
    pub last_ns: u64,
    /// Active window: `last_ns − first_ns`.
    pub wall_ns: u64,
    /// Time outside collectives (compute + I/O).
    pub busy_ns: u64,
    /// Total time inside collectives (wait + transfer).
    pub collective_ns: u64,
    /// Time blocked waiting on peers inside collectives.
    pub wait_ns: u64,
    /// Collective calls recorded.
    pub collectives: u64,
    /// Events recorded on this pid.
    pub events: u64,
}

impl RankSummary {
    /// Busy share of the active window, in percent.
    pub fn busy_pct(&self) -> f64 {
        pct(self.busy_ns, self.wall_ns)
    }

    /// Peer-wait share of the active window, in percent.
    pub fn wait_pct(&self) -> f64 {
        pct(self.wait_ns, self.wall_ns)
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

/// Per-collective-op wait accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpWait {
    /// Operation name.
    pub op: String,
    /// Calls across all ranks.
    pub count: u64,
    /// Total payload bytes contributed.
    pub bytes: u64,
    /// Total peer-wait ns across calls.
    pub total_wait_ns: u64,
    /// Total transfer/reduce ns across calls.
    pub total_comm_ns: u64,
    /// Distribution of per-call wait ns (log2 buckets).
    pub wait_hist: Histogram,
}

/// One segment of the approximate critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CritSegment {
    /// Phase name.
    pub name: String,
    /// Category.
    pub cat: TraceCat,
    /// The slowest pid for this phase.
    pub pid: u64,
    /// Start (ns) of the slowest instance.
    pub start_ns: u64,
    /// Duration (ns) of the slowest instance.
    pub dur_ns: u64,
}

/// The `ucp trace --summary` analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Per-pid busy/wait rows, sorted by pid.
    pub ranks: Vec<RankSummary>,
    /// Per-op wait accounting, sorted by op.
    pub ops: Vec<OpWait>,
    /// `(pid, wait_ns)` ascending: first entry is the likeliest straggler
    /// (the rank its peers wait on waits the least itself).
    pub stragglers: Vec<(u64, u64)>,
    /// Approximate critical path (see [`TraceSession::critical_path`]).
    pub critical_path: Vec<CritSegment>,
}

impl TraceSummary {
    /// Machine-readable JSON rendering (deterministic key order).
    pub fn to_json(&self) -> String {
        let ranks = self
            .ranks
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("pid", num(r.pid)),
                    ("wall_ns", num(r.wall_ns)),
                    ("busy_ns", num(r.busy_ns)),
                    ("collective_ns", num(r.collective_ns)),
                    ("wait_ns", num(r.wait_ns)),
                    ("busy_pct", Json::Num(round2(r.busy_pct()))),
                    ("wait_pct", Json::Num(round2(r.wait_pct()))),
                    ("collectives", num(r.collectives)),
                    ("events", num(r.events)),
                ])
            })
            .collect();
        let ops = self
            .ops
            .iter()
            .map(|o| {
                Json::obj(vec![
                    ("op", Json::Str(o.op.clone())),
                    ("count", num(o.count)),
                    ("bytes", num(o.bytes)),
                    ("total_wait_ns", num(o.total_wait_ns)),
                    ("total_comm_ns", num(o.total_comm_ns)),
                    (
                        "wait_buckets",
                        Json::Arr(
                            o.wait_hist
                                .nonzero_buckets()
                                .into_iter()
                                .map(|(le, count)| {
                                    Json::obj(vec![("le", num(le)), ("count", num(count))])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let stragglers = self
            .stragglers
            .iter()
            .map(|&(pid, wait)| Json::obj(vec![("pid", num(pid)), ("wait_ns", num(wait))]))
            .collect();
        let path = self
            .critical_path
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::Str(s.name.clone())),
                    ("cat", Json::Str(s.cat.as_str().to_string())),
                    ("pid", num(s.pid)),
                    ("start_ns", num(s.start_ns)),
                    ("dur_ns", num(s.dur_ns)),
                ])
            })
            .collect();
        let doc = Json::obj(vec![
            ("schema", Json::Str("ucp-trace-summary-v1".into())),
            ("ranks", Json::Arr(ranks)),
            ("collectives", Json::Arr(ops)),
            ("stragglers", Json::Arr(stragglers)),
            ("critical_path", Json::Arr(path)),
        ]);
        let mut text = doc.pretty();
        text.push('\n');
        text
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new_disabled();
        t.register(0, "main");
        {
            let _s = t.span(TraceCat::Compute, "step");
            let mut c = t.collective("barrier", "0-1", 0);
            c.ready();
        }
        t.edge(true, 1, 64);
        t.mark(TraceCat::Checkpoint, "publish");
        assert_eq!(t.take_session().event_count(), 0);
    }

    #[test]
    fn spans_and_collectives_merge_per_thread() {
        let t = Tracer::new();
        t.register(3, "main");
        {
            let _s = t.span(TraceCat::Compute, "step");
            let mut c = t.collective("all_reduce", "0-3", 4096);
            c.ready();
        }
        t.edge(false, 1, 128);
        let session = t.take_session();
        assert_eq!(session.tracks.len(), 1);
        let track = &session.tracks[0];
        assert_eq!(track.pid, 3);
        assert_eq!(track.label, "main");
        // Begin, Collective, End, Edge — in causal (seq) order.
        assert_eq!(track.events.len(), 4);
        assert!(matches!(track.events[0].kind, EventKind::Begin { .. }));
        let seqs: Vec<u64> = track.events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }

    #[test]
    fn collective_timestamps_are_ordered() {
        let t = Tracer::new();
        t.register(0, "main");
        {
            let mut c = t.collective("all_gather", "0-1", 1024);
            std::thread::sleep(std::time::Duration::from_millis(2));
            c.ready();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let session = t.take_session();
        let ev = &session.tracks[0].events[0];
        let EventKind::Collective {
            ready_ns, exit_ns, ..
        } = &ev.kind
        else {
            panic!("expected collective");
        };
        assert!(ev.ts_ns <= *ready_ns);
        assert!(ready_ns <= exit_ns);
        assert!(*ready_ns - ev.ts_ns >= 1_000_000, "waited ≥ 1ms");
    }

    #[test]
    fn unregistered_threads_autoregister_as_driver() {
        let t = Tracer::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _sp = t.span(TraceCat::Convert, "extract");
            });
        });
        let session = t.take_session();
        assert_eq!(session.tracks.len(), 1);
        assert_eq!(session.tracks[0].pid, DRIVER_PID);
        assert!(session.ranks().is_empty());
    }

    #[test]
    fn chrome_roundtrip_is_lossless() {
        let t = Tracer::new();
        t.register(0, "main");
        {
            let _outer = t.span(TraceCat::Compute, "step");
            {
                let _inner = t.span(TraceCat::Compute, "forward");
            }
            let mut c = t.collective("all_reduce", "0-1", 2048);
            c.ready();
        }
        t.edge(true, 1, 99);
        t.mark(TraceCat::Checkpoint, "publish");
        let session = t.take_session();
        let text = session.to_chrome_json();
        let back = TraceSession::from_chrome_json(&text).unwrap();
        assert_eq!(back, session);
        // And export is a fixed point.
        assert_eq!(back.to_chrome_json(), text);
    }

    #[test]
    fn parser_rejects_unbalanced_spans() {
        let text = r#"{"traceEvents": [
            {"name": "x", "cat": "compute", "ph": "B", "ts": 1, "pid": 0, "tid": 0, "args": {}}
        ]}"#;
        assert!(TraceSession::from_chrome_json(text)
            .unwrap_err()
            .contains("B without E"));
        let text = r#"{"traceEvents": [
            {"name": "x", "cat": "compute", "ph": "E", "ts": 1, "pid": 0, "tid": 0, "args": {}}
        ]}"#;
        assert!(TraceSession::from_chrome_json(text)
            .unwrap_err()
            .contains("E without B"));
    }

    #[test]
    fn summary_separates_busy_from_wait() {
        let session = TraceSession {
            tracks: vec![
                ThreadTrack {
                    pid: 0,
                    tid: 0,
                    label: "main".into(),
                    events: vec![
                        TraceEvent {
                            ts_ns: 0,
                            seq: 0,
                            kind: EventKind::Begin {
                                cat: TraceCat::Compute,
                                name: "step".into(),
                            },
                        },
                        TraceEvent {
                            ts_ns: 600,
                            seq: 1,
                            kind: EventKind::Collective {
                                op: "all_reduce".into(),
                                group: "0-1".into(),
                                bytes: 64,
                                ready_ns: 700,
                                exit_ns: 800,
                            },
                        },
                        TraceEvent {
                            ts_ns: 1000,
                            seq: 2,
                            kind: EventKind::End {
                                cat: TraceCat::Compute,
                                name: "step".into(),
                            },
                        },
                    ],
                },
                ThreadTrack {
                    pid: 1,
                    tid: 1,
                    label: "main".into(),
                    events: vec![TraceEvent {
                        ts_ns: 0,
                        seq: 3,
                        kind: EventKind::Collective {
                            op: "all_reduce".into(),
                            group: "0-1".into(),
                            bytes: 64,
                            ready_ns: 700,
                            exit_ns: 1000,
                        },
                    }],
                },
            ],
        };
        let s = session.summary();
        assert_eq!(s.ranks.len(), 2);
        let r0 = &s.ranks[0];
        assert_eq!(r0.wall_ns, 1000);
        assert_eq!(r0.collective_ns, 200);
        assert_eq!(r0.wait_ns, 100);
        assert_eq!(r0.busy_ns, 800);
        assert!((r0.busy_pct() - 80.0).abs() < 1e-9);
        // Rank 1 waits 700 of 1000 ns; rank 0 waits 100 → rank 0 is the
        // straggler (first in the ranking).
        assert_eq!(s.stragglers[0].0, 0);
        assert_eq!(s.stragglers[1], (1, 700));
        let op = &s.ops[0];
        assert_eq!(op.count, 2);
        assert_eq!(op.total_wait_ns, 800);
        assert_eq!(op.total_comm_ns, 400);
        // Critical path: the single top-level span on rank 0.
        assert_eq!(s.critical_path.len(), 1);
        assert_eq!(s.critical_path[0].name, "step");
        assert_eq!(s.critical_path[0].dur_ns, 1000);
        // Summary JSON parses back as JSON.
        assert!(Json::parse(&s.to_json()).is_ok());
    }

    #[test]
    fn start_clears_previous_session() {
        let t = Tracer::new();
        t.register(0, "main");
        t.mark(TraceCat::Compute, "old");
        t.start();
        t.register(0, "main");
        t.mark(TraceCat::Compute, "new");
        let session = t.take_session();
        assert_eq!(session.event_count(), 1);
        assert!(matches!(
            &session.tracks[0].events[0].kind,
            EventKind::Mark { name, .. } if name == "new"
        ));
    }
}
