//! A minimal JSON value model with a writer and a recursive-descent
//! parser — just enough for the metrics report schema, with zero
//! dependencies so the telemetry crate stays free-standing.
//!
//! Numbers are held as `f64`; every integer the report emits (counts,
//! byte totals, nanosecond sums rendered as seconds) stays well inside
//! the 2^53 exactly-representable range.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so output is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object constructor from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render with 2-space indentation and a trailing newline-free body.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Render on a single line with no whitespace — the JSONL form used by
    /// the run journal, where one record must be exactly one line.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; clamp to null (never produced by reports).
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                members.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Surrogate pairs are not needed by the report
                        // schema; map lone surrogates to the replacement
                        // character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = &b[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("convert/atom \"write\"".into())),
            ("count", Json::Num(42.0)),
            ("ratio", Json::Num(0.25)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Num(3.0)]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(BTreeMap::new())),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        // The compact form is one line and parses back to the same value.
        let line = doc.compact();
        assert!(!line.contains('\n'), "compact form must be single-line");
        assert_eq!(Json::parse(&line).unwrap(), doc);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"{"a": "line\nbreak A λ", "b": [1e3, -2.5]}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str().unwrap(), "line\nbreak A λ");
        assert_eq!(
            v.get("b").unwrap().as_arr().unwrap()[0].as_f64(),
            Some(1000.0)
        );
    }

    #[test]
    fn integers_render_without_decimal_point() {
        let mut out = String::new();
        write_num(&mut out, 123456789.0);
        assert_eq!(out, "123456789");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn deterministic_key_order() {
        let a = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let b = Json::parse(r#"{"a": 2, "z": 1}"#).unwrap();
        assert_eq!(a.pretty(), b.pretty());
    }
}
