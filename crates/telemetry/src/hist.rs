//! Power-of-two bucketed histograms for byte volumes and latencies.
//!
//! A [`Histogram`] spreads `u64` observations over 65 buckets where bucket
//! `i` holds values whose bit length is `i` (bucket 0 holds only zero).
//! Bucket upper bounds are therefore `0, 1, 3, 7, ..., 2^63 - 1, u64::MAX`,
//! which gives ~2x relative resolution over the full range — plenty for
//! distinguishing microsecond reads from millisecond reads or kilobyte
//! atoms from megabyte atoms — with O(1) record cost and a fixed footprint.

/// Number of buckets: one per possible bit length of a `u64`, plus zero.
pub const NUM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Observation count.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Per-bucket counts; bucket `i` covers values of bit length `i`.
    pub buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }

    /// Bucket index of a value: its bit length.
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the q-th observation. Exact `min`/`max` are kept
    /// separately; this is for the middle of the distribution.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, in order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_covers_the_range() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value falls inside its bucket's bounds.
        for v in [0u64, 1, 5, 1023, 1024, 1 << 40, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn record_tracks_stats() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 100);
        assert_eq!(h.min, 10);
        assert_eq!(h.max, 40);
        assert!((h.mean() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_bucket_resolution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // p50 of 1..=1000 is ~500; bucket resolution gives ≤ 2x error.
        let p50 = h.quantile(0.5);
        assert!((256..=1023).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 1000);
        // p0 clamps to the first non-empty bucket's bound.
        assert!(h.quantile(0.0) >= 1);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [100u64, 200] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 306);
        assert_eq!(a.min, 1);
        assert_eq!(a.max, 200);
        assert_eq!(a.nonzero_buckets().iter().map(|(_, c)| c).sum::<u64>(), 5);
    }
}
