//! Fleet-wide metric aggregation: merging per-rank recorder snapshots
//! into cross-rank aggregates.
//!
//! Each rank keeps a small local [`crate::Recorder`] for signals that
//! genuinely differ per rank (iteration wall time, save-stall blocking).
//! At run end the ranks ship their snapshots to rank 0 over the
//! collectives layer (the transport lives in the trainer crate — this
//! module is pure data), and rank 0 folds [`aggregate`]'s output into the
//! process-global recorder so the cross-rank view rides the existing
//! `ucp-metrics-v1` JSON and Prometheus exports.
//!
//! Naming: an input counter `rank/step_ms` becomes `fleet/rank/step_ms/
//! {sum,min,max,skew}` — `skew` (max − min across ranks) is the straggler
//! signal: a healthy fleet keeps it near zero, one slow rank drags it up.

use crate::report::{CounterStat, Report, SpanStat};

/// One rank's metrics snapshot, as shipped to rank 0.
#[derive(Debug, Clone)]
pub struct RankSnapshot {
    /// Originating cluster rank.
    pub rank: usize,
    /// That rank's local recorder snapshot.
    pub report: Report,
}

/// Prefix every aggregate name carries.
pub const FLEET_PREFIX: &str = "fleet/";

/// Merge per-rank snapshots into a cross-rank aggregate report. For every
/// counter name seen on any rank this emits `fleet/<name>/sum`, `/min`,
/// `/max`, and `/skew` (max − min, the straggler spread; ranks missing
/// the counter count as 0). Histograms merge bucket-wise and spans
/// accumulate under `fleet/<name>`. `fleet/ranks` records how many
/// snapshots arrived, so a dropped rank is visible in the export.
pub fn aggregate(snapshots: &[RankSnapshot]) -> Report {
    use std::collections::BTreeMap;

    let mut out = Report {
        label: "fleet".to_string(),
        ..Report::default()
    };
    let mut counter_values: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for snap in snapshots {
        for c in &snap.report.counters {
            counter_values.entry(&c.name).or_default().push(c.value);
        }
    }
    for (name, values) in counter_values {
        let sum: u64 = values.iter().sum();
        // A rank that never touched the counter contributes an implicit 0
        // — absence on one rank IS the skew signal.
        let min = if values.len() < snapshots.len() {
            0
        } else {
            values.iter().copied().min().unwrap_or(0)
        };
        let max = values.iter().copied().max().unwrap_or(0);
        for (suffix, value) in [
            ("sum", sum),
            ("min", min),
            ("max", max),
            ("skew", max - min),
        ] {
            out.counters.push(CounterStat {
                name: format!("{FLEET_PREFIX}{name}/{suffix}"),
                value,
            });
        }
    }
    out.counters.push(CounterStat {
        name: format!("{FLEET_PREFIX}ranks"),
        value: snapshots.len() as u64,
    });

    // Histograms and spans merge through Report::merge after re-keying,
    // so bucket arithmetic stays in one place.
    for snap in snapshots {
        let rekeyed = Report {
            label: "fleet".to_string(),
            spans: snap
                .report
                .spans
                .iter()
                .map(|s| SpanStat {
                    path: format!("{FLEET_PREFIX}{}", s.path),
                    ..s.clone()
                })
                .collect(),
            counters: Vec::new(),
            histograms: snap
                .report
                .histograms
                .iter()
                .map(|h| {
                    let mut h = h.clone();
                    h.name = format!("{FLEET_PREFIX}{}", h.name);
                    h
                })
                .collect(),
        };
        out.merge(&rekeyed);
    }
    out.counters.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn snap(rank: usize, step_ms: u64, iters: u64) -> RankSnapshot {
        let r = Recorder::new();
        r.count("rank/iterations", iters);
        for _ in 0..iters {
            r.observe("rank/step_ms", step_ms);
        }
        RankSnapshot {
            rank,
            report: r.report(&format!("rank{rank}")),
        }
    }

    #[test]
    fn aggregate_computes_sum_min_max_skew() {
        let agg = aggregate(&[snap(0, 10, 4), snap(1, 10, 4), snap(2, 80, 4)]);
        assert_eq!(agg.counter("fleet/ranks"), Some(3));
        assert_eq!(agg.counter("fleet/rank/iterations/sum"), Some(12));
        assert_eq!(agg.counter("fleet/rank/iterations/min"), Some(4));
        assert_eq!(agg.counter("fleet/rank/iterations/max"), Some(4));
        assert_eq!(agg.counter("fleet/rank/iterations/skew"), Some(0));
        let h = agg.hist("fleet/rank/step_ms").unwrap();
        assert_eq!(h.count, 12);
        assert_eq!((h.min, h.max), (10, 80));
    }

    #[test]
    fn missing_counter_on_a_rank_counts_as_zero() {
        let mut straggler = snap(1, 10, 2);
        straggler.report.counters.push(crate::CounterStat {
            name: "rank/retries".into(),
            value: 5,
        });
        let agg = aggregate(&[snap(0, 10, 2), straggler]);
        assert_eq!(agg.counter("fleet/rank/retries/sum"), Some(5));
        assert_eq!(agg.counter("fleet/rank/retries/min"), Some(0));
        assert_eq!(agg.counter("fleet/rank/retries/skew"), Some(5));
    }

    #[test]
    fn aggregate_of_nothing_still_reports_rank_count() {
        let agg = aggregate(&[]);
        assert_eq!(agg.counter("fleet/ranks"), Some(0));
        assert!(agg.histograms.is_empty());
    }

    #[test]
    fn aggregate_is_deterministic_and_exportable() {
        let snaps = [snap(0, 5, 3), snap(1, 7, 3)];
        let a = aggregate(&snaps);
        let b = aggregate(&snaps);
        assert_eq!(a, b);
        // The aggregate rides the standard report schema unchanged.
        let back = Report::from_json(&a.to_json()).unwrap();
        assert_eq!(back, a);
        assert!(a
            .to_prometheus()
            .contains("ucp_counter_total{run=\"fleet\",name=\"fleet/ranks\"} 2"));
    }
}
