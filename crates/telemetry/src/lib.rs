//! Zero-dependency telemetry for the UCP hot paths.
//!
//! Three primitives, one report:
//!
//! - **Spans** — scoped timers with slash-separated phase paths
//!   (`convert/extract`), aggregated by path (count / total / min / max).
//!   Nesting follows lexical scope per thread; worker threads spawned by
//!   `par_map` start with an empty stack, so hot-path instrumentation
//!   uses absolute paths.
//! - **Counters** — monotonic `u64` accumulators (`convert/bytes_written`).
//! - **Histograms** — log2-bucketed `u64` distributions for latencies and
//!   byte volumes (`load/atom_read_ns`).
//!
//! Everything funnels into a [`Report`], which serializes to a
//! deterministic `ucp-metrics-v1` JSON document (the `--metrics-out`
//! format, also consumed by CI's perf-smoke gate) and to Prometheus text
//! exposition.
//!
//! The process-global recorder ([`global()`]) starts **disabled**; when
//! disabled every instrumentation call is a single relaxed atomic load,
//! so the hot paths carry no measurable overhead by default.
//!
//! The [`trace`] module adds the per-rank distributed tracing layer
//! (typed event timelines, Chrome Trace Format export, busy/wait
//! analysis) under the same zero-overhead-when-disabled contract. The
//! [`fleet`] module merges per-rank recorder snapshots into cross-rank
//! aggregates (sum/min/max plus straggler skew) that ride the same
//! report schema.
//!
//! ```
//! let rec = ucp_telemetry::Recorder::new();
//! {
//!     let _phase = rec.span("convert");
//!     let _sub = rec.span("extract");
//!     rec.count("convert/fragments", 4);
//!     rec.observe("load/atom_read_ns", 12_500);
//! }
//! let report = rec.report("demo");
//! assert_eq!(report.counter("convert/fragments"), Some(4));
//! let json = report.to_json();
//! let back = ucp_telemetry::Report::from_json(&json).unwrap();
//! assert_eq!(back.counter("convert/fragments"), Some(4));
//! ```

pub mod fleet;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod report;
pub mod trace;

pub use fleet::RankSnapshot;
pub use hist::Histogram;
pub use json::Json;
pub use recorder::{global, Recorder, Span};
pub use report::{BucketStat, CounterStat, HistStat, Report, SpanStat, SCHEMA};
pub use trace::{TraceCat, TraceSession, TraceSummary, Tracer};

/// Convenience: open a span on the global recorder.
#[inline]
pub fn span(label: &str) -> Span<'static> {
    global().span(label)
}

/// Convenience: bump a counter on the global recorder.
#[inline]
pub fn count(name: &str, n: u64) {
    global().count(name, n)
}

/// Convenience: record a histogram observation on the global recorder.
#[inline]
pub fn observe(name: &str, value: u64) {
    global().observe(name, value)
}

/// Convenience: whether the global recorder is enabled. Lets callers skip
/// prep work (e.g. an extra `Instant::now()`) when telemetry is off.
#[inline]
pub fn enabled() -> bool {
    global().is_enabled()
}
