//! DeepSpeed-style ZeRO flat partitioning of the fp32 master space.
//!
//! All parameters of a (tp, pp) model slice are concatenated in name order
//! into one flat buffer. Each parameter is padded to an alignment quantum
//! (hardware-efficiency padding in real DeepSpeed), and the total is padded
//! so it divides evenly by the DP degree; DP rank `k` then owns the
//! contiguous chunk `[k·chunk, (k+1)·chunk)`. Nothing aligns parameters to
//! chunk boundaries, so one parameter's elements routinely live on several
//! DP ranks — the flat `fragment_params` case that UCP's `Extract`/`Union`
//! must stitch back together and whose padding `StripPadding` removes.

use serde::{Deserialize, Serialize};
use ucp_tensor::{Shape, Tensor};

/// One parameter's placement inside the flat buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSlot {
    /// Canonical parameter name.
    pub name: String,
    /// Shape of the (tp-sharded) tensor that lives here.
    pub shape: Shape,
    /// Start offset in the flat buffer (elements).
    pub offset: usize,
    /// Real element count (`shape.num_elements()`).
    pub len: usize,
    /// Occupied length including alignment padding.
    pub padded_len: usize,
}

/// A piece of one parameter as seen by one DP rank's chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatFragment {
    /// Owning DP rank.
    pub dp_rank: usize,
    /// Offset of the fragment within the parameter (elements).
    pub param_offset: usize,
    /// Offset within the owning rank's chunk (elements).
    pub chunk_offset: usize,
    /// Fragment length.
    pub len: usize,
}

/// The full flat layout for one (tp, pp) model slice at a given DP degree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatLayout {
    /// Parameter placements, in flattening (name) order.
    pub slots: Vec<ParamSlot>,
    /// Total flat length (multiple of `dp · 1` and of `alignment`).
    pub total_len: usize,
    /// Per-DP-rank chunk length (`total_len / dp`).
    pub chunk: usize,
    /// Alignment quantum each parameter is padded to.
    pub alignment: usize,
    /// DP degree the layout was built for.
    pub dp: usize,
}

impl FlatLayout {
    /// Build the layout from `(name, shape)` pairs in flattening order.
    ///
    /// # Panics
    ///
    /// Panics if `alignment` or `dp` is zero.
    pub fn build(params: &[(String, Shape)], alignment: usize, dp: usize) -> FlatLayout {
        assert!(alignment > 0, "alignment must be ≥ 1");
        assert!(dp > 0, "dp must be ≥ 1");
        let mut slots = Vec::with_capacity(params.len());
        let mut offset = 0usize;
        for (name, shape) in params {
            let len = shape.num_elements();
            let padded_len = len.div_ceil(alignment) * alignment;
            slots.push(ParamSlot {
                name: name.clone(),
                shape: shape.clone(),
                offset,
                len,
                padded_len,
            });
            offset += padded_len;
        }
        // Pad the total so each DP rank owns an equal contiguous chunk.
        let total_len = offset.div_ceil(dp).max(1) * dp;
        FlatLayout {
            slots,
            total_len,
            chunk: total_len / dp,
            alignment,
            dp,
        }
    }

    /// Find a slot by name.
    pub fn slot(&self, name: &str) -> Option<&ParamSlot> {
        self.slots.iter().find(|s| s.name == name)
    }

    /// The flat element range owned by DP rank `k`.
    pub fn rank_range(&self, k: usize) -> std::ops::Range<usize> {
        k * self.chunk..(k + 1) * self.chunk
    }

    /// Copy named tensors into a fresh flat buffer (padding zeroed).
    ///
    /// `lookup` resolves a name to its tensor; missing names panic (wiring
    /// bug).
    pub fn flatten<'a, F>(&self, lookup: F) -> Vec<f32>
    where
        F: Fn(&str) -> &'a Tensor,
    {
        let mut flat = vec![0.0f32; self.total_len];
        for slot in &self.slots {
            let t = lookup(&slot.name);
            assert_eq!(
                t.num_elements(),
                slot.len,
                "tensor size changed for {}",
                slot.name
            );
            flat[slot.offset..slot.offset + slot.len].copy_from_slice(t.as_slice());
        }
        flat
    }

    /// Extract one parameter's values from the flat buffer as a tensor.
    pub fn unflatten_one(&self, flat: &[f32], slot: &ParamSlot) -> Tensor {
        Tensor::from_vec(
            flat[slot.offset..slot.offset + slot.len].to_vec(),
            slot.shape.clone(),
        )
        .expect("slot shape matches slot len")
    }

    /// The fragments of `slot` (real elements only, padding excluded) as
    /// they land in DP-rank chunks, ascending rank order.
    pub fn fragments_of(&self, slot: &ParamSlot) -> Vec<FlatFragment> {
        let mut out = Vec::new();
        let (start, end) = (slot.offset, slot.offset + slot.len);
        let first = start / self.chunk;
        let last = (end - 1) / self.chunk;
        for k in first..=last {
            let r = self.rank_range(k);
            let lo = start.max(r.start);
            let hi = end.min(r.end);
            if lo < hi {
                out.push(FlatFragment {
                    dp_rank: k,
                    param_offset: lo - start,
                    chunk_offset: lo - r.start,
                    len: hi - lo,
                });
            }
        }
        out
    }

    /// Total real (non-padding) elements.
    pub fn real_len(&self) -> usize {
        self.slots.iter().map(|s| s.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes(dims: &[&[usize]]) -> Vec<(String, Shape)> {
        dims.iter()
            .enumerate()
            .map(|(i, d)| (format!("p{i}"), Shape::from(*d)))
            .collect()
    }

    #[test]
    fn offsets_respect_alignment() {
        let layout = FlatLayout::build(&shapes(&[&[3], &[5], &[4]]), 4, 1);
        assert_eq!(layout.slots[0].offset, 0);
        assert_eq!(layout.slots[0].padded_len, 4);
        assert_eq!(layout.slots[1].offset, 4);
        assert_eq!(layout.slots[1].padded_len, 8);
        assert_eq!(layout.slots[2].offset, 12);
        assert_eq!(layout.total_len, 16);
    }

    #[test]
    fn total_divides_by_dp() {
        let layout = FlatLayout::build(&shapes(&[&[3], &[5]]), 1, 4);
        assert_eq!(layout.total_len % 4, 0);
        assert_eq!(layout.chunk * 4, layout.total_len);
        // 8 real elements → 8 total at dp=4 (already divisible).
        assert_eq!(layout.total_len, 8);
        let layout = FlatLayout::build(&shapes(&[&[3], &[4]]), 1, 4);
        assert_eq!(layout.total_len, 8, "7 rounds up to 8");
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let params = shapes(&[&[2, 3], &[5], &[3, 1]]);
        let layout = FlatLayout::build(&params, 4, 2);
        let tensors: Vec<Tensor> = params
            .iter()
            .enumerate()
            .map(|(i, (_, s))| {
                Tensor::from_vec(
                    (0..s.num_elements())
                        .map(|e| (i * 100 + e) as f32)
                        .collect(),
                    s.clone(),
                )
                .unwrap()
            })
            .collect();
        let flat = layout.flatten(|name| {
            let idx: usize = name[1..].parse().unwrap();
            &tensors[idx]
        });
        assert_eq!(flat.len(), layout.total_len);
        for (i, slot) in layout.slots.iter().enumerate() {
            let back = layout.unflatten_one(&flat, slot);
            assert!(back.bitwise_eq(&tensors[i]), "roundtrip for {}", slot.name);
        }
        // Padding regions are zero.
        assert_eq!(flat[layout.slots[0].offset + 6], 0.0);
    }

    #[test]
    fn fragments_straddle_ranks() {
        // 10 real elements, alignment 1, dp 4 → total 12, chunk 3.
        // p0 = [0, 7), p1 = [7, 10).
        let layout = FlatLayout::build(&shapes(&[&[7], &[3]]), 1, 4);
        assert_eq!(layout.chunk, 3);
        let f0 = layout.fragments_of(&layout.slots[0]);
        assert_eq!(
            f0,
            vec![
                FlatFragment {
                    dp_rank: 0,
                    param_offset: 0,
                    chunk_offset: 0,
                    len: 3
                },
                FlatFragment {
                    dp_rank: 1,
                    param_offset: 3,
                    chunk_offset: 0,
                    len: 3
                },
                FlatFragment {
                    dp_rank: 2,
                    param_offset: 6,
                    chunk_offset: 0,
                    len: 1
                },
            ]
        );
        let f1 = layout.fragments_of(&layout.slots[1]);
        assert_eq!(
            f1,
            vec![
                FlatFragment {
                    dp_rank: 2,
                    param_offset: 0,
                    chunk_offset: 1,
                    len: 2
                },
                FlatFragment {
                    dp_rank: 3,
                    param_offset: 2,
                    chunk_offset: 0,
                    len: 1
                },
            ]
        );
    }

    #[test]
    fn fragments_cover_every_real_element_exactly_once() {
        let layout = FlatLayout::build(&shapes(&[&[13], &[1], &[9], &[2, 2]]), 8, 3);
        for slot in &layout.slots {
            let frags = layout.fragments_of(slot);
            let covered: usize = frags.iter().map(|f| f.len).sum();
            assert_eq!(covered, slot.len, "coverage for {}", slot.name);
            // Fragments are contiguous and ordered.
            let mut expect = 0;
            for f in &frags {
                assert_eq!(f.param_offset, expect);
                expect += f.len;
            }
        }
    }

    #[test]
    fn real_len_excludes_padding() {
        let layout = FlatLayout::build(&shapes(&[&[3], &[5]]), 4, 2);
        assert_eq!(layout.real_len(), 8);
        assert!(layout.total_len > layout.real_len());
    }

    #[test]
    fn slot_lookup() {
        let layout = FlatLayout::build(&shapes(&[&[3]]), 1, 1);
        assert!(layout.slot("p0").is_some());
        assert!(layout.slot("nope").is_none());
    }
}
