//! Rank topology: the TP×SP×PP×DP grid and its process groups.

use serde::{Deserialize, Serialize};

/// ZeRO optimizer-sharding stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZeroStage {
    /// No sharding: every DP rank keeps full optimizer state (plain DDP).
    Zero0,
    /// Optimizer state partitioned across DP.
    Zero1,
    /// Optimizer state + gradients partitioned (reduce-scatter).
    Zero2,
    /// Optimizer state + gradients + parameters partitioned.
    Zero3,
}

impl ZeroStage {
    /// Numeric stage for reports and metadata.
    pub fn as_u8(self) -> u8 {
        match self {
            ZeroStage::Zero0 => 0,
            ZeroStage::Zero1 => 1,
            ZeroStage::Zero2 => 2,
            ZeroStage::Zero3 => 3,
        }
    }

    /// Parse a numeric stage.
    pub fn from_u8(v: u8) -> Option<ZeroStage> {
        match v {
            0 => Some(ZeroStage::Zero0),
            1 => Some(ZeroStage::Zero1),
            2 => Some(ZeroStage::Zero2),
            3 => Some(ZeroStage::Zero3),
            _ => None,
        }
    }
}

/// A complete parallelism strategy: degrees of each axis plus ZeRO stage.
///
/// The paper's configuration notation `TP/PP/DP/SP + ZeRO stage` (Table 3)
/// maps directly onto this struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Pipeline-parallel degree.
    pub pp: usize,
    /// Data-parallel degree.
    pub dp: usize,
    /// Sequence-parallel degree.
    pub sp: usize,
    /// ZeRO stage.
    pub zero: ZeroStage,
}

impl ParallelConfig {
    /// Construct with explicit degrees.
    pub fn new(tp: usize, pp: usize, dp: usize, sp: usize, zero: ZeroStage) -> ParallelConfig {
        ParallelConfig {
            tp,
            pp,
            dp,
            sp,
            zero,
        }
    }

    /// A single-rank configuration.
    pub fn single() -> ParallelConfig {
        ParallelConfig::new(1, 1, 1, 1, ZeroStage::Zero1)
    }

    /// Total ranks (`tp · sp · pp · dp`).
    pub fn world_size(&self) -> usize {
        self.tp * self.sp * self.pp * self.dp
    }

    /// Validate degrees against a model's divisibility constraints.
    pub fn validate(&self, num_layers: usize, seq_len: usize) -> Result<(), String> {
        if self.tp == 0 || self.pp == 0 || self.dp == 0 || self.sp == 0 {
            return Err("all parallel degrees must be ≥ 1".into());
        }
        if !num_layers.is_multiple_of(self.pp) {
            return Err(format!(
                "{num_layers} layers not divisible by PP degree {}",
                self.pp
            ));
        }
        if !seq_len.is_multiple_of(self.sp) {
            return Err(format!(
                "sequence length {seq_len} not divisible by SP degree {}",
                self.sp
            ));
        }
        Ok(())
    }

    /// Short label like `tp2_pp2_dp2_sp1_z1` (used in file names and
    /// reports).
    pub fn label(&self) -> String {
        format!(
            "tp{}_pp{}_dp{}_sp{}_z{}",
            self.tp,
            self.pp,
            self.dp,
            self.sp,
            self.zero.as_u8()
        )
    }

    /// Coordinate of a flat rank. TP varies fastest, then SP, PP, DP —
    /// the Megatron ordering (adjacent ranks share a TP group).
    pub fn coord(&self, rank: usize) -> RankCoord {
        debug_assert!(rank < self.world_size());
        let tp = rank % self.tp;
        let sp = (rank / self.tp) % self.sp;
        let pp = (rank / (self.tp * self.sp)) % self.pp;
        let dp = rank / (self.tp * self.sp * self.pp);
        RankCoord { dp, pp, sp, tp }
    }

    /// Flat rank of a coordinate; inverse of [`ParallelConfig::coord`].
    pub fn rank_of(&self, c: RankCoord) -> usize {
        ((c.dp * self.pp + c.pp) * self.sp + c.sp) * self.tp + c.tp
    }

    /// Ranks of the TP group containing `rank`.
    pub fn tp_group(&self, rank: usize) -> Vec<usize> {
        let c = self.coord(rank);
        (0..self.tp)
            .map(|tp| self.rank_of(RankCoord { tp, ..c }))
            .collect()
    }

    /// Ranks of the SP group containing `rank`.
    pub fn sp_group(&self, rank: usize) -> Vec<usize> {
        let c = self.coord(rank);
        (0..self.sp)
            .map(|sp| self.rank_of(RankCoord { sp, ..c }))
            .collect()
    }

    /// Ranks of the PP group (all stages of this rank's pipeline).
    pub fn pp_group(&self, rank: usize) -> Vec<usize> {
        let c = self.coord(rank);
        (0..self.pp)
            .map(|pp| self.rank_of(RankCoord { pp, ..c }))
            .collect()
    }

    /// Ranks of the DP group containing `rank`.
    pub fn dp_group(&self, rank: usize) -> Vec<usize> {
        let c = self.coord(rank);
        (0..self.dp)
            .map(|dp| self.rank_of(RankCoord { dp, ..c }))
            .collect()
    }

    /// Ranks of the gradient-reduction group: all (dp, sp) replicas of this
    /// rank's (tp, pp) model shard. Loss gradients are token-sums, and DP
    /// and SP both split tokens, so both axes reduce together.
    pub fn grad_group(&self, rank: usize) -> Vec<usize> {
        let c = self.coord(rank);
        let mut out = Vec::with_capacity(self.dp * self.sp);
        for dp in 0..self.dp {
            for sp in 0..self.sp {
                out.push(self.rank_of(RankCoord { dp, sp, ..c }));
            }
        }
        out.sort_unstable();
        out
    }

    /// The rank of the next pipeline stage, if any.
    pub fn pp_next(&self, rank: usize) -> Option<usize> {
        let c = self.coord(rank);
        (c.pp + 1 < self.pp).then(|| self.rank_of(RankCoord { pp: c.pp + 1, ..c }))
    }

    /// The rank of the previous pipeline stage, if any.
    pub fn pp_prev(&self, rank: usize) -> Option<usize> {
        let c = self.coord(rank);
        (c.pp > 0).then(|| self.rank_of(RankCoord { pp: c.pp - 1, ..c }))
    }

    /// Transformer blocks assigned to pipeline stage `pp` (contiguous even
    /// split; `num_layers` must divide by `self.pp`).
    pub fn stage_blocks(&self, pp: usize, num_layers: usize) -> std::ops::Range<usize> {
        let per = num_layers / self.pp;
        pp * per..(pp + 1) * per
    }
}

/// A rank's coordinate in the parallelism grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RankCoord {
    /// Data-parallel index.
    pub dp: usize,
    /// Pipeline stage index.
    pub pp: usize,
    /// Sequence-parallel index.
    pub sp: usize,
    /// Tensor-parallel index.
    pub tp: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(tp: usize, pp: usize, dp: usize, sp: usize) -> ParallelConfig {
        ParallelConfig::new(tp, pp, dp, sp, ZeroStage::Zero1)
    }

    #[test]
    fn coord_rank_roundtrip() {
        let c = cfg(2, 2, 2, 2);
        assert_eq!(c.world_size(), 16);
        for rank in 0..16 {
            assert_eq!(c.rank_of(c.coord(rank)), rank);
        }
    }

    #[test]
    fn tp_varies_fastest() {
        let c = cfg(2, 2, 2, 1);
        assert_eq!(c.coord(0).tp, 0);
        assert_eq!(c.coord(1).tp, 1);
        assert_eq!(c.coord(1).pp, 0);
        assert_eq!(c.coord(2).pp, 1);
    }

    #[test]
    fn groups_partition_the_world() {
        let c = cfg(2, 2, 2, 1);
        // Each rank appears in exactly one TP group instance; the union of
        // distinct TP groups covers the world.
        let mut covered = [false; 8];
        for rank in 0..8 {
            for m in c.tp_group(rank) {
                covered[m] = true;
            }
            assert!(c.tp_group(rank).contains(&rank));
            assert_eq!(c.tp_group(rank).len(), 2);
        }
        assert!(covered.iter().all(|v| *v));
    }

    #[test]
    fn grad_group_spans_dp_and_sp() {
        let c = cfg(2, 1, 2, 2);
        let g = c.grad_group(0);
        assert_eq!(g.len(), 4);
        // All members share tp=0, pp=0.
        for m in &g {
            let coord = c.coord(*m);
            assert_eq!(coord.tp, 0);
            assert_eq!(coord.pp, 0);
        }
    }

    #[test]
    fn pipeline_neighbours() {
        let c = cfg(1, 4, 1, 1);
        assert_eq!(c.pp_prev(0), None);
        assert_eq!(c.pp_next(0), Some(1));
        assert_eq!(c.pp_next(3), None);
        assert_eq!(c.pp_prev(2), Some(1));
    }

    #[test]
    fn stage_blocks_even_split() {
        let c = cfg(1, 4, 1, 1);
        assert_eq!(c.stage_blocks(0, 8), 0..2);
        assert_eq!(c.stage_blocks(3, 8), 6..8);
    }

    #[test]
    fn validate_catches_indivisibility() {
        assert!(cfg(1, 3, 1, 1).validate(8, 32).is_err());
        assert!(cfg(1, 2, 1, 3).validate(8, 32).is_err());
        assert!(cfg(2, 2, 2, 2).validate(8, 32).is_ok());
    }

    #[test]
    fn label_format() {
        assert_eq!(cfg(2, 1, 4, 1).label(), "tp2_pp1_dp4_sp1_z1");
    }
}
