//! Parallelism topology and partitioning rules.
//!
//! This crate answers two questions the rest of the system keeps asking:
//!
//! 1. **Who is where?** [`topology`] maps a flat rank id to its
//!    (DP, PP, SP, TP) coordinate and builds the process groups each rank
//!    communicates in, plus the pipeline layer assignment.
//! 2. **Who owns which bytes?** [`flat`] implements DeepSpeed-style ZeRO
//!    flattening: a (tp, pp) model slice's fp32 master parameters are
//!    concatenated (name order) into one flat buffer with per-parameter
//!    alignment padding, the total is padded to a multiple of the DP
//!    degree, and DP rank *k* owns chunk *k*. Parameters freely straddle
//!    chunk boundaries — the hard `fragment_params` case UCP's Union must
//!    reassemble.

pub mod flat;
pub mod topology;

pub use flat::{FlatFragment, FlatLayout, ParamSlot};
pub use topology::{ParallelConfig, RankCoord, ZeroStage};
