//! Property tests for the parallelism topology and the ZeRO flat layout.

use proptest::prelude::*;
use ucp_parallel::{FlatLayout, ParallelConfig, RankCoord, ZeroStage};
use ucp_tensor::Shape;

fn degrees() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    (1usize..4, 1usize..4, 1usize..4, 1usize..3)
}

proptest! {
    #[test]
    fn coord_rank_bijection((tp, pp, dp, sp) in degrees()) {
        let c = ParallelConfig::new(tp, pp, dp, sp, ZeroStage::Zero1);
        let mut seen = vec![false; c.world_size()];
        for dp_i in 0..dp {
            for pp_i in 0..pp {
                for sp_i in 0..sp {
                    for tp_i in 0..tp {
                        let rank = c.rank_of(RankCoord {
                            dp: dp_i,
                            pp: pp_i,
                            sp: sp_i,
                            tp: tp_i,
                        });
                        prop_assert!(rank < c.world_size());
                        prop_assert!(!seen[rank], "rank collision");
                        seen[rank] = true;
                        prop_assert_eq!(
                            c.coord(rank),
                            RankCoord { dp: dp_i, pp: pp_i, sp: sp_i, tp: tp_i }
                        );
                    }
                }
            }
        }
        prop_assert!(seen.iter().all(|v| *v));
    }

    #[test]
    fn every_group_kind_partitions_the_world((tp, pp, dp, sp) in degrees()) {
        let c = ParallelConfig::new(tp, pp, dp, sp, ZeroStage::Zero1);
        for kind in 0..5usize {
            let group_of = |rank: usize| -> Vec<usize> {
                match kind {
                    0 => c.tp_group(rank),
                    1 => c.sp_group(rank),
                    2 => c.pp_group(rank),
                    3 => c.dp_group(rank),
                    _ => c.grad_group(rank),
                }
            };
            let mut covered = vec![0usize; c.world_size()];
            for rank in 0..c.world_size() {
                let g = group_of(rank);
                prop_assert!(g.contains(&rank), "rank not in its own group");
                // Every member of my group has the identical group.
                for &m in &g {
                    prop_assert_eq!(group_of(m), g.clone(), "group not closed");
                }
                for &m in &g {
                    covered[m] += 1;
                }
            }
            // Each rank is counted once per member of its group.
            for (rank, count) in covered.iter().enumerate() {
                prop_assert_eq!(*count, group_of(rank).len());
            }
        }
    }

    #[test]
    fn pipeline_neighbours_chain((tp, pp, dp, sp) in degrees()) {
        let c = ParallelConfig::new(tp, pp, dp, sp, ZeroStage::Zero1);
        for rank in 0..c.world_size() {
            let coord = c.coord(rank);
            match c.pp_next(rank) {
                Some(next) => {
                    let nc = c.coord(next);
                    prop_assert_eq!(nc.pp, coord.pp + 1);
                    prop_assert_eq!((nc.tp, nc.dp, nc.sp), (coord.tp, coord.dp, coord.sp));
                    prop_assert_eq!(c.pp_prev(next), Some(rank));
                }
                None => prop_assert_eq!(coord.pp, pp - 1),
            }
        }
    }

    #[test]
    fn stage_blocks_tile_layers(pp in 1usize..6, per in 1usize..5) {
        let layers = pp * per;
        let c = ParallelConfig::new(1, pp, 1, 1, ZeroStage::Zero1);
        let mut covered = vec![false; layers];
        for stage in 0..pp {
            for layer in c.stage_blocks(stage, layers) {
                assert!(!covered[layer]);
                covered[layer] = true;
            }
        }
        prop_assert!(covered.iter().all(|v| *v));
    }

    #[test]
    fn flat_layout_invariants(
        sizes in prop::collection::vec(1usize..50, 1..10),
        alignment in 1usize..17,
        dp in 1usize..7,
    ) {
        let params: Vec<(String, Shape)> = sizes
            .iter()
            .enumerate()
            .map(|(i, s)| (format!("p{i}"), Shape::new([*s])))
            .collect();
        let layout = FlatLayout::build(&params, alignment, dp);
        // Chunks tile the buffer.
        prop_assert_eq!(layout.chunk * dp, layout.total_len);
        // Slots are disjoint, ordered, aligned, and inside the buffer.
        let mut prev_end = 0;
        for slot in &layout.slots {
            prop_assert_eq!(slot.offset % alignment, 0);
            prop_assert!(slot.offset >= prev_end);
            prop_assert!(slot.len <= slot.padded_len);
            prop_assert!(slot.padded_len - slot.len < alignment);
            prev_end = slot.offset + slot.padded_len;
        }
        prop_assert!(prev_end <= layout.total_len);
        // Fragment coverage: per slot, fragments tile [0, len).
        for slot in &layout.slots {
            let frags = layout.fragments_of(slot);
            let mut covered = 0;
            for f in &frags {
                prop_assert_eq!(f.param_offset, covered);
                prop_assert!(f.dp_rank < dp);
                prop_assert!(f.chunk_offset + f.len <= layout.chunk);
                covered += f.len;
            }
            prop_assert_eq!(covered, slot.len);
        }
    }
}
