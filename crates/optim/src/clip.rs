//! Global gradient-norm clipping.

/// Scale factor for gradient clipping given the *global* squared gradient
/// norm (already reduced across all model-parallel and data-parallel
/// shards) and the clip threshold.
///
/// Returns 1.0 when the norm is within bounds. Computing the scale from a
/// single globally-reduced scalar keeps clipping identical across parallel
/// layouts.
pub fn clip_scale(global_sq_norm: f64, max_norm: f64) -> f64 {
    if max_norm <= 0.0 {
        return 1.0;
    }
    let norm = global_sq_norm.sqrt();
    if norm > max_norm {
        max_norm / (norm + 1e-6)
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_bounds_is_identity() {
        assert_eq!(clip_scale(0.25, 1.0), 1.0);
        assert_eq!(clip_scale(1.0, 1.0), 1.0);
    }

    #[test]
    fn oversized_norm_is_scaled_down() {
        let s = clip_scale(100.0, 1.0);
        assert!((s - 0.1).abs() < 1e-5);
        // Scaled norm lands at the threshold.
        assert!((10.0 * s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn non_positive_threshold_disables_clipping() {
        assert_eq!(clip_scale(1e6, 0.0), 1.0);
        assert_eq!(clip_scale(1e6, -1.0), 1.0);
    }
}
