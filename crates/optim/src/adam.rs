//! AdamW over flat fp32 buffers.

use serde::{Deserialize, Serialize};

/// AdamW hyperparameters (paper Table 4 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor inside the denominator.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> AdamConfig {
        AdamConfig {
            beta1: 0.9,
            beta2: 0.95,
            eps: 1e-8,
            weight_decay: 0.1,
        }
    }
}

/// Flat AdamW state: first and second moments plus the shared step count.
///
/// One `AdamState` covers one contiguous region of the flattened parameter
/// space (the whole space at ZeRO-0, this rank's partition at ZeRO-1/2/3).
/// The three buffers a UCP atom checkpoint stores per parameter — `fp32`,
/// `exp_avg`, `exp_avg_sq` — are slices of the master buffer and these two.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamState {
    /// First moment (`exp_avg` in DeepSpeed naming).
    pub exp_avg: Vec<f32>,
    /// Second raw moment (`exp_avg_sq`).
    pub exp_avg_sq: Vec<f32>,
    /// Completed update steps (shared across the whole parameter space).
    pub step: u64,
}

impl AdamState {
    /// Fresh state for a region of `len` elements.
    pub fn new(len: usize) -> AdamState {
        AdamState {
            exp_avg: vec![0.0; len],
            exp_avg_sq: vec![0.0; len],
            step: 0,
        }
    }

    /// Number of elements covered.
    pub fn len(&self) -> usize {
        self.exp_avg.len()
    }

    /// True when the region is empty.
    pub fn is_empty(&self) -> bool {
        self.exp_avg.is_empty()
    }

    /// One AdamW update of `master` given `grad`, at learning rate `lr`.
    ///
    /// Elementwise and therefore partition-invariant: applying this to any
    /// slicing of the flat space produces identical values.
    ///
    /// Updates are *lazy* (sparse-Adam semantics): elements whose gradient
    /// is exactly `0.0` are skipped entirely — no moment decay and no
    /// weight decay — so an untouched element stays bitwise identical
    /// across steps. This is what lets the checkpoint pipeline treat
    /// zero-gradient fragments (e.g. unrouted MoE experts) as clean and
    /// skip re-writing their atoms. Being elementwise, laziness preserves
    /// partition invariance.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths disagree.
    pub fn step(&mut self, cfg: &AdamConfig, master: &mut [f32], grad: &[f32], lr: f32) {
        assert_eq!(master.len(), grad.len(), "master/grad length mismatch");
        assert_eq!(master.len(), self.exp_avg.len(), "state length mismatch");
        self.step += 1;
        let bc1 = 1.0 - (f64::from(cfg.beta1)).powi(self.step as i32);
        let bc2 = 1.0 - (f64::from(cfg.beta2)).powi(self.step as i32);
        let lr64 = f64::from(lr);
        for i in 0..master.len() {
            if grad[i] == 0.0 {
                continue;
            }
            let g = f64::from(grad[i]);
            let m = f64::from(cfg.beta1) * f64::from(self.exp_avg[i])
                + (1.0 - f64::from(cfg.beta1)) * g;
            let v = f64::from(cfg.beta2) * f64::from(self.exp_avg_sq[i])
                + (1.0 - f64::from(cfg.beta2)) * g * g;
            self.exp_avg[i] = m as f32;
            self.exp_avg_sq[i] = v as f32;
            let m_hat = m / bc1;
            let v_hat = v / bc2;
            let mut p = f64::from(master[i]);
            // Decoupled weight decay (AdamW).
            p -= lr64 * f64::from(cfg.weight_decay) * p;
            p -= lr64 * m_hat / (v_hat.sqrt() + f64::from(cfg.eps));
            master[i] = p as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_moves_against_gradient() {
        let cfg = AdamConfig {
            weight_decay: 0.0,
            ..AdamConfig::default()
        };
        let mut state = AdamState::new(2);
        let mut master = vec![1.0f32, -1.0];
        state.step(&cfg, &mut master, &[0.5, -0.5], 0.1);
        assert!(master[0] < 1.0);
        assert!(master[1] > -1.0);
        assert_eq!(state.step, 1);
    }

    #[test]
    fn first_step_size_is_about_lr() {
        // With bias correction, the first Adam step ≈ lr · sign(grad).
        let cfg = AdamConfig {
            weight_decay: 0.0,
            eps: 1e-12,
            ..AdamConfig::default()
        };
        let mut state = AdamState::new(1);
        let mut master = vec![0.0f32];
        state.step(&cfg, &mut master, &[3.7], 0.01);
        assert!((master[0] + 0.01).abs() < 1e-6, "got {}", master[0]);
    }

    #[test]
    fn zero_grad_elements_stay_bitwise_frozen() {
        // Lazy AdamW: a zero-gradient element gets no update at all — not
        // even weight decay or moment decay. The dirty-atom checkpoint
        // path depends on this bitwise invariance.
        let cfg = AdamConfig::default();
        let mut state = AdamState::new(2);
        state.exp_avg[0] = 0.25;
        state.exp_avg_sq[0] = 0.5;
        let mut master = vec![2.0f32, 1.0];
        state.step(&cfg, &mut master, &[0.0, 0.3], 0.1);
        assert_eq!(master[0].to_bits(), 2.0f32.to_bits());
        assert_eq!(state.exp_avg[0].to_bits(), 0.25f32.to_bits());
        assert_eq!(state.exp_avg_sq[0].to_bits(), 0.5f32.to_bits());
        // The touched element still moves (decay + gradient step).
        assert!(master[1] < 1.0);
    }

    #[test]
    fn lazy_skip_matches_dense_on_nonzero_grads() {
        // When every gradient is non-zero the lazy path is the dense path.
        let cfg = AdamConfig::default();
        let grad: Vec<f32> = (0..8).map(|i| 0.01 * (i as f32 + 1.0)).collect();
        let mut a = AdamState::new(8);
        let mut b = AdamState::new(8);
        let mut ma: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let mut mb = ma.clone();
        a.step(&cfg, &mut ma, &grad, 0.01);
        b.step(&cfg, &mut mb, &grad, 0.01);
        assert_eq!(ma, mb);
    }

    #[test]
    fn partitioned_update_equals_full_update() {
        // The partition-invariance property ZeRO relies on.
        let cfg = AdamConfig::default();
        let grad: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.1).collect();
        let mut full_master: Vec<f32> = (0..16).map(|i| i as f32 * 0.05).collect();
        let mut full_state = AdamState::new(16);
        for _ in 0..3 {
            full_state.step(&cfg, &mut full_master, &grad, 0.01);
        }

        let mut sharded_master: Vec<f32> = (0..16).map(|i| i as f32 * 0.05).collect();
        let mut s0 = AdamState::new(8);
        let mut s1 = AdamState::new(8);
        for _ in 0..3 {
            let (lo, hi) = sharded_master.split_at_mut(8);
            s0.step(&cfg, lo, &grad[..8], 0.01);
            s1.step(&cfg, hi, &grad[8..], 0.01);
        }
        assert_eq!(full_master, sharded_master);
        assert_eq!(&full_state.exp_avg[..8], &s0.exp_avg[..]);
        assert_eq!(&full_state.exp_avg_sq[8..], &s1.exp_avg_sq[..]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let cfg = AdamConfig::default();
        let mut state = AdamState::new(2);
        let mut master = vec![0.0f32; 2];
        state.step(&cfg, &mut master, &[0.0], 0.1);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimize (x - 3)²; Adam should get close within a few hundred steps.
        let cfg = AdamConfig {
            weight_decay: 0.0,
            ..AdamConfig::default()
        };
        let mut state = AdamState::new(1);
        let mut x = vec![0.0f32];
        for _ in 0..500 {
            let g = 2.0 * (x[0] - 3.0);
            state.step(&cfg, &mut x, &[g], 0.05);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
    }
}
