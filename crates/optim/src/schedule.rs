//! Learning-rate schedules.

use serde::{Deserialize, Serialize};

/// Warmup-then-cosine-decay schedule (the paper's training recipe).
///
/// The schedule is a pure function of the iteration number, so resuming a
/// run from a checkpoint — under any parallelism — restores the exact
/// learning-rate trajectory from the saved iteration alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LrSchedule {
    /// Peak learning rate reached at the end of warmup.
    pub max_lr: f32,
    /// Floor learning rate after full decay.
    pub min_lr: f32,
    /// Linear warmup iterations.
    pub warmup_iters: u64,
    /// Iteration at which decay reaches `min_lr`.
    pub decay_iters: u64,
}

impl LrSchedule {
    /// Constant learning rate (testing convenience).
    pub fn constant(lr: f32) -> LrSchedule {
        LrSchedule {
            max_lr: lr,
            min_lr: lr,
            warmup_iters: 0,
            decay_iters: 1,
        }
    }

    /// Learning rate for (0-based) iteration `it`.
    pub fn lr_at(&self, it: u64) -> f32 {
        if self.warmup_iters > 0 && it < self.warmup_iters {
            return self.max_lr * (it + 1) as f32 / self.warmup_iters as f32;
        }
        if it >= self.decay_iters {
            return self.min_lr;
        }
        let progress =
            (it - self.warmup_iters) as f64 / (self.decay_iters - self.warmup_iters).max(1) as f64;
        let cos = 0.5 * (1.0 + (std::f64::consts::PI * progress).cos());
        self.min_lr + ((self.max_lr - self.min_lr) as f64 * cos) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> LrSchedule {
        LrSchedule {
            max_lr: 3e-4,
            min_lr: 3e-6,
            warmup_iters: 10,
            decay_iters: 100,
        }
    }

    #[test]
    fn warmup_is_linear() {
        let s = sched();
        assert!((s.lr_at(0) - 3e-5).abs() < 1e-9);
        assert!((s.lr_at(4) - 1.5e-4).abs() < 1e-9);
        assert!((s.lr_at(9) - 3e-4).abs() < 1e-9);
    }

    #[test]
    fn decay_is_monotonic_to_min() {
        let s = sched();
        let mut prev = s.lr_at(10);
        for it in 11..100 {
            let lr = s.lr_at(it);
            assert!(lr <= prev + 1e-12, "non-monotonic at {it}");
            prev = lr;
        }
        assert!((s.lr_at(100) - 3e-6).abs() < 1e-12);
        assert!((s.lr_at(10_000) - 3e-6).abs() < 1e-12);
    }

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::constant(0.01);
        for it in [0u64, 1, 50, 1000] {
            assert_eq!(s.lr_at(it), 0.01);
        }
    }

    #[test]
    fn halfway_point_is_midpoint() {
        let s = sched();
        let mid = s.lr_at(55);
        let expected = 3e-6 + (3e-4 - 3e-6) * 0.5;
        assert!((mid - expected).abs() < 1e-8);
    }
}
