//! Optimizer substrate: AdamW over flat fp32 master parameters, gradient
//! clipping, and learning-rate schedules.
//!
//! Matches the training setup of the paper's Table 4 (Adam β₁=0.9, β₂=0.95,
//! weight decay 0.1, gradient clip 1.0, warmup-cosine decay). The optimizer
//! state layout is deliberately *flat*: ZeRO shards the flattened parameter
//! space, so `exp_avg` / `exp_avg_sq` live as flat buffers that partition
//! cleanly — exactly the state UCP's atom checkpoints are reassembled from.
//!
//! The update is elementwise, which is what makes it partition-invariant:
//! updating a ZeRO shard of the flat space and all-gathering equals updating
//! the whole flat space, so training losses cannot depend on the DP degree.

pub mod adam;
pub mod clip;
pub mod schedule;

pub use adam::{AdamConfig, AdamState};
pub use clip::clip_scale;
pub use schedule::LrSchedule;
