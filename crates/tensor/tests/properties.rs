//! Property-based tests for tensor structural operations — the data
//! movements UCP's transformations are built from must be exact inverses.

use proptest::prelude::*;
use ucp_tensor::{ops, DType, DetRng, Shape, Tensor};

/// Strategy: a random-rank (1..=3) shape with small extents and a seed.
fn shape_and_seed() -> impl Strategy<Value = (Vec<usize>, u64)> {
    (prop::collection::vec(1usize..6, 1..4), 0u64..10_000)
}

fn tensor_of(dims: &[usize], seed: u64) -> Tensor {
    Tensor::randn(Shape::from(dims), 1.0, &DetRng::new(seed))
}

proptest! {
    #[test]
    fn split_concat_identity((dims, seed) in shape_and_seed(), dim_sel in 0usize..3) {
        let t = tensor_of(&dims, seed);
        let dim = dim_sel % dims.len();
        // Split into single-index slices and reassemble.
        let parts = t.split(dim, &vec![1; dims[dim]]).unwrap();
        let refs: Vec<&Tensor> = parts.iter().collect();
        let back = Tensor::concat(&refs, dim).unwrap();
        prop_assert!(back.bitwise_eq(&t));
    }

    #[test]
    fn narrow_composes((dims, seed) in shape_and_seed(), dim_sel in 0usize..3) {
        // narrow(a..b) then narrow(c..d) equals narrow(a+c..a+d).
        let t = tensor_of(&dims, seed);
        let dim = dim_sel % dims.len();
        let n = dims[dim];
        if n >= 2 {
            let outer = t.narrow(dim, 0, n - 1).unwrap();
            let inner = outer.narrow(dim, 1, n - 2).unwrap_or_else(|_| outer.clone());
            if n >= 3 {
                let direct = t.narrow(dim, 1, n - 2).unwrap();
                prop_assert!(inner.bitwise_eq(&direct));
            }
        }
    }

    #[test]
    fn pad_then_strip_identity((dims, seed) in shape_and_seed(), pad in 0usize..5, dim_sel in 0usize..3) {
        let t = tensor_of(&dims, seed);
        let dim = dim_sel % dims.len();
        let padded = t.pad_dim(dim, dims[dim] + pad).unwrap();
        let back = padded.strip_dim(dim, dims[dim]).unwrap();
        prop_assert!(back.bitwise_eq(&t));
        // Pad region is exactly zero.
        if pad > 0 {
            let pad_part = padded.narrow(dim, dims[dim], pad).unwrap();
            prop_assert!(pad_part.as_slice().iter().all(|v| *v == 0.0));
        }
    }

    #[test]
    fn reshape_preserves_order((dims, seed) in shape_and_seed()) {
        let t = tensor_of(&dims, seed);
        let flat = t.reshape([t.num_elements()]).unwrap();
        prop_assert_eq!(flat.as_slice(), t.as_slice());
        let back = flat.reshape(Shape::from(&dims[..])).unwrap();
        prop_assert!(back.bitwise_eq(&t));
    }

    #[test]
    fn cast_is_idempotent((dims, seed) in shape_and_seed()) {
        let t = tensor_of(&dims, seed);
        for dt in [DType::F32, DType::BF16, DType::F16] {
            let once = t.cast(dt);
            let twice = once.cast(dt);
            prop_assert!(once.bitwise_eq(&twice), "{dt} cast not idempotent");
        }
    }

    #[test]
    fn bf16_roundtrip_error_bounded((dims, seed) in shape_and_seed()) {
        let t = tensor_of(&dims, seed);
        let q = t.cast(DType::BF16);
        // bf16 has 8 mantissa bits → relative error ≤ 2^-8.
        for (a, b) in t.as_slice().iter().zip(q.as_slice()) {
            let tol = a.abs() * (1.0 / 256.0) + 1e-30;
            prop_assert!((a - b).abs() <= tol, "{a} vs {b}");
        }
    }

    #[test]
    fn dtype_codec_roundtrip(values in prop::collection::vec(-1e4f32..1e4, 0..64)) {
        for dt in [DType::F32, DType::F16, DType::BF16] {
            let quantized: Vec<f32> = values.iter().map(|v| dt.quantize(*v)).collect();
            let mut buf = Vec::new();
            dt.encode(&quantized, &mut buf);
            let back = dt.decode(&buf, quantized.len()).unwrap();
            prop_assert_eq!(&back, &quantized, "{} codec", dt);
        }
    }

    #[test]
    fn transpose_is_involution(r in 1usize..8, c in 1usize..8, seed in 0u64..1000) {
        let t = tensor_of(&[r, c], seed);
        let tt = t.transpose2().unwrap().transpose2().unwrap();
        prop_assert!(tt.bitwise_eq(&t));
    }

    #[test]
    fn matmul_distributes_over_output_partition(
        m in 1usize..5, k in 1usize..6, n in 2usize..7, seed in 0u64..1000,
    ) {
        // Column-parallel invariance: concatenating partitioned outputs is
        // bitwise the unpartitioned output (the TP=TP' loss-equality core).
        let rng = DetRng::new(seed);
        let a = Tensor::randn([m, k], 1.0, &rng.derive("a"));
        let b = Tensor::randn([k, n], 1.0, &rng.derive("b"));
        let full = ops::matmul(&a, &b).unwrap();
        let split = n / 2;
        let b0 = b.narrow(1, 0, split).unwrap();
        let b1 = b.narrow(1, split, n - split).unwrap();
        let y0 = ops::matmul(&a, &b0).unwrap();
        let y1 = ops::matmul(&a, &b1).unwrap();
        let cat = Tensor::concat(&[&y0, &y1], 1).unwrap();
        prop_assert!(cat.bitwise_eq(&full));
    }

    #[test]
    fn matmul_inner_partition_error_tiny(
        m in 1usize..4, k in 2usize..8, n in 1usize..4, seed in 0u64..1000,
    ) {
        // Row-parallel: splitting the reduction and re-summing stays within
        // a few ulps thanks to f64 accumulation.
        let rng = DetRng::new(seed);
        let a = Tensor::randn([m, k], 1.0, &rng.derive("a"));
        let b = Tensor::randn([k, n], 1.0, &rng.derive("b"));
        let full = ops::matmul(&a, &b).unwrap();
        let split = k / 2;
        let p0 = ops::matmul(&a.narrow(1, 0, split).unwrap(), &b.narrow(0, 0, split).unwrap()).unwrap();
        let p1 = ops::matmul(&a.narrow(1, split, k - split).unwrap(), &b.narrow(0, split, k - split).unwrap()).unwrap();
        let summed = ops::add(&p0, &p1).unwrap();
        prop_assert!(summed.max_abs_diff(&full).unwrap() < 1e-5);
    }

    #[test]
    fn rng_shard_consistency(len in 1usize..64, split in 1usize..64, seed in 0u64..1000) {
        // Generating [0, len) in one go equals generating [0, s) and [s, len).
        let split = split % len.max(1);
        let stream = DetRng::new(seed).derive("param");
        let mut full = vec![0.0f32; len];
        stream.fill_normal_range(0, 1.0, &mut full);
        let mut a = vec![0.0f32; split];
        let mut b = vec![0.0f32; len - split];
        stream.fill_normal_range(0, 1.0, &mut a);
        stream.fill_normal_range(split as u64, 1.0, &mut b);
        a.extend(b);
        prop_assert_eq!(a, full);
    }
}
