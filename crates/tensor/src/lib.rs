//! Dense CPU tensors with deterministic math.
//!
//! This crate is the numeric substrate for the Universal Checkpointing
//! reproduction. It provides a small owned-tensor type with the operations
//! the training simulator and the checkpoint transformation engine need:
//! shape manipulation, slicing/concatenation along arbitrary dimensions,
//! padding (and padding removal, which UCP's `StripPadding` relies on),
//! matrix multiplication with f64 accumulation (so results are independent
//! of blocking/partitioning to well below f32 epsilon), and a deterministic
//! counter-based RNG so parameter initialization is identical across any
//! parallel layout.
//!
//! Values are always held as `f32` in memory; the logical [`DType`] tag
//! records the precision a tensor represents. Tensors tagged `F16`/`BF16`
//! hold values that are exactly representable in that format (enforced by
//! [`Tensor::cast`]), which mirrors how mixed-precision training keeps
//! low-precision copies of fp32 master weights.

pub mod dtype;
pub mod ops;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use dtype::DType;
pub use rng::DetRng;
pub use shape::Shape;
pub use tensor::Tensor;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that must match did not.
    ShapeMismatch {
        /// Human-readable operation name.
        op: &'static str,
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// A dimension index was out of range for the tensor's rank.
    DimOutOfRange {
        /// The offending dimension.
        dim: usize,
        /// The tensor rank.
        rank: usize,
    },
    /// A slice range fell outside the tensor.
    RangeOutOfBounds {
        /// Requested start.
        start: usize,
        /// Requested length.
        len: usize,
        /// Size of the sliced dimension.
        dim_size: usize,
    },
    /// Element count does not match the requested shape.
    ElementCountMismatch {
        /// Elements provided.
        got: usize,
        /// Elements the shape requires.
        expected: usize,
    },
    /// Concatenation input list was empty or inconsistent.
    InvalidConcat(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: shape mismatch {lhs:?} vs {rhs:?}")
            }
            TensorError::DimOutOfRange { dim, rank } => {
                write!(f, "dimension {dim} out of range for rank {rank}")
            }
            TensorError::RangeOutOfBounds {
                start,
                len,
                dim_size,
            } => write!(
                f,
                "range [{start}, {start}+{len}) out of bounds for dimension of size {dim_size}"
            ),
            TensorError::ElementCountMismatch { got, expected } => {
                write!(f, "element count mismatch: got {got}, expected {expected}")
            }
            TensorError::InvalidConcat(msg) => write!(f, "invalid concat: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
