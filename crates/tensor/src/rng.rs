//! Deterministic, splittable random number generation.
//!
//! Parameter initialization and data sampling must be identical across any
//! parallel layout: a TP=2 run initializes each shard of a weight matrix on
//! a different rank, yet the assembled matrix must equal the TP=1 one.
//! We achieve this with a counter-based generator: every random value is a
//! pure function of `(stream seed, counter)`, so a rank drawing elements
//! `[k, k+n)` of a parameter gets exactly the values the unsharded run
//! draws at those positions.
//!
//! The core mix is SplitMix64, which passes standard statistical tests and
//! is trivially seekable.

/// A deterministic, seekable random stream.
///
/// Cloning produces an independent cursor over the same stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    seed: u64,
    counter: u64,
}

/// SplitMix64 finalizer: maps a 64-bit counter to a well-mixed 64-bit value.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a stream from a seed.
    pub fn new(seed: u64) -> DetRng {
        DetRng { seed, counter: 0 }
    }

    /// Derive an independent child stream identified by `label`.
    ///
    /// Used to give every named parameter and every data shard its own
    /// stream regardless of the order in which they are consumed.
    pub fn derive(&self, label: &str) -> DetRng {
        let mut h = self.seed ^ 0xA076_1D64_78BD_642F;
        for b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(*b));
        }
        DetRng::new(h)
    }

    /// Derive an independent child stream identified by an integer.
    pub fn derive_u64(&self, label: u64) -> DetRng {
        DetRng::new(splitmix64(
            self.seed ^ splitmix64(label ^ 0x5851_F42D_4C95_7F2D),
        ))
    }

    /// Position of the cursor in the stream.
    pub fn position(&self) -> u64 {
        self.counter
    }

    /// Move the cursor to an absolute position.
    pub fn seek(&mut self, position: u64) {
        self.counter = position;
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let v = splitmix64(self.seed.wrapping_add(splitmix64(self.counter)));
        self.counter += 1;
        v
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Simple multiply-shift; bias is negligible for our bounds (< 2^32)
        // and determinism matters more than perfect uniformity here.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Standard normal sample via Box-Muller on two dedicated counter slots.
    ///
    /// Each call consumes exactly two raw values, so element `i` of a
    /// parameter can be generated independently by seeking to `2 * i`.
    pub fn next_normal(&mut self) -> f32 {
        let u1 = self.next_f64().max(1e-300);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }

    /// The normal sample at absolute element index `i` of this stream,
    /// without disturbing the cursor.
    pub fn normal_at(&self, i: u64) -> f32 {
        let mut rng = self.clone();
        rng.seek(2 * i);
        rng.next_normal()
    }

    /// Fill `out` with normal samples for element indices
    /// `[start, start + out.len())` of this stream, scaled by `std`.
    pub fn fill_normal_range(&self, start: u64, std: f32, out: &mut [f32]) {
        let mut rng = self.clone();
        rng.seek(2 * start);
        for v in out.iter_mut() {
            *v = rng.next_normal() * std;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn seek_is_equivalent_to_skipping() {
        let mut a = DetRng::new(7);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = DetRng::new(7);
        b.seek(10);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_is_independent_of_parent_cursor() {
        let mut parent = DetRng::new(9);
        let child1 = parent.derive("w");
        parent.next_u64();
        let child2 = parent.derive("w");
        assert_eq!(child1, child2, "derivation depends only on seed + label");
    }

    #[test]
    fn derive_distinct_labels_distinct_streams() {
        let parent = DetRng::new(9);
        assert_ne!(parent.derive("a").next_u64(), parent.derive("b").next_u64());
        assert_ne!(
            parent.derive_u64(0).next_u64(),
            parent.derive_u64(1).next_u64()
        );
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bounded_respects_bound() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            assert!(rng.next_bounded(17) < 17);
        }
    }

    #[test]
    fn sharded_normal_fill_matches_full_fill() {
        let stream = DetRng::new(11).derive("weight");
        let mut full = vec![0.0f32; 64];
        stream.fill_normal_range(0, 0.02, &mut full);

        // Generate the same 64 elements as four shards of 16.
        let mut sharded = vec![0.0f32; 64];
        for k in 0..4 {
            stream.fill_normal_range(k as u64 * 16, 0.02, &mut sharded[k * 16..(k + 1) * 16]);
        }
        assert_eq!(full, sharded);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = DetRng::new(5);
        let n = 20_000;
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let v = f64::from(rng.next_normal());
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / f64::from(n);
        let var = sumsq / f64::from(n) - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
