//! Numeric operations.
//!
//! All reductions (dot products, matmul inner loops, row sums) accumulate in
//! `f64`. This makes results insensitive to how a reduction is *partitioned*:
//! summing two f64 partial sums of halves of a row and rounding once to f32
//! agrees with the sequential f64 sum to well below f32 epsilon. That is what
//! lets tensor-parallel runs reproduce single-rank losses to ~1e-6 instead of
//! the paper's ±0.02 GPU-nondeterminism band.

use crate::{Result, Shape, Tensor, TensorError};

fn check_same_shape(op: &'static str, a: &Tensor, b: &Tensor) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    Ok(())
}

/// `a += b`, elementwise.
pub fn add_assign(a: &mut Tensor, b: &Tensor) -> Result<()> {
    check_same_shape("add_assign", a, b)?;
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
    Ok(())
}

/// `a += alpha * b`, elementwise.
pub fn axpy(a: &mut Tensor, alpha: f32, b: &Tensor) -> Result<()> {
    check_same_shape("axpy", a, b)?;
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += alpha * y;
    }
    Ok(())
}

/// Elementwise sum of two tensors.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = a.clone();
    add_assign(&mut out, b)?;
    Ok(out)
}

/// Elementwise difference `a - b`.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape("sub", a, b)?;
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x - y)
        .collect();
    Tensor::from_vec(data, a.shape().clone())
}

/// Elementwise product.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape("mul", a, b)?;
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x * y)
        .collect();
    Tensor::from_vec(data, a.shape().clone())
}

/// Scale in place.
pub fn scale(a: &mut Tensor, alpha: f32) {
    for x in a.as_mut_slice() {
        *x *= alpha;
    }
}

/// Dot product with f64 accumulation.
pub fn dot64(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        acc += f64::from(*x) * f64::from(*y);
    }
    acc
}

/// Sum of all elements with f64 accumulation.
pub fn sum64(a: &Tensor) -> f64 {
    a.as_slice().iter().map(|v| f64::from(*v)).sum()
}

/// Sum of squares with f64 accumulation (for gradient-norm clipping).
pub fn sumsq64(a: &Tensor) -> f64 {
    a.as_slice()
        .iter()
        .map(|v| f64::from(*v) * f64::from(*v))
        .sum()
}

fn matmul_dims(op: &'static str, a: &Tensor, b: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    Ok((
        a.shape().dims()[0],
        a.shape().dims()[1],
        b.shape().dims()[0],
        b.shape().dims()[1],
    ))
}

/// `[m,k] × [k,n] → [m,n]` with f64 accumulation.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k, bk, n) = matmul_dims("matmul", a, b)?;
    if k != bk {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut acc = vec![0.0f64; n];
        for (p, &aval) in arow.iter().enumerate() {
            let brow = &bv[p * n..(p + 1) * n];
            let a64 = f64::from(aval);
            for (j, &bval) in brow.iter().enumerate() {
                acc[j] += a64 * f64::from(bval);
            }
        }
        for (o, v) in orow.iter_mut().zip(acc) {
            *o = v as f32;
        }
    }
    Tensor::from_vec(out, Shape::new([m, n]))
}

/// `Aᵀ × B`: `[k,m]ᵀ × [k,n] → [m,n]` without materializing the transpose.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m, bk, n) = matmul_dims("matmul_at_b", a, b)?;
    if k != bk {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut acc = vec![0.0f64; m * n];
    for p in 0..k {
        let arow = &av[p * m..(p + 1) * m];
        let brow = &bv[p * n..(p + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            let a64 = f64::from(aval);
            let arow_acc = &mut acc[i * n..(i + 1) * n];
            for (j, &bval) in brow.iter().enumerate() {
                arow_acc[j] += a64 * f64::from(bval);
            }
        }
    }
    Tensor::from_vec(
        acc.into_iter().map(|v| v as f32).collect(),
        Shape::new([m, n]),
    )
}

/// `A × Bᵀ`: `[m,k] × [n,k]ᵀ → [m,n]` without materializing the transpose.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k, n, bk) = matmul_dims("matmul_a_bt", a, b)?;
    if k != bk {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bv[j * k..(j + 1) * k];
            out[i * n + j] = dot64(arow, brow) as f32;
        }
    }
    Tensor::from_vec(out, Shape::new([m, n]))
}

/// In-place numerically-stable softmax over the last dimension of a rank-2
/// tensor.
pub fn softmax_rows(t: &mut Tensor) -> Result<()> {
    if t.shape().rank() != 2 {
        return Err(TensorError::DimOutOfRange {
            dim: 1,
            rank: t.shape().rank(),
        });
    }
    let cols = t.shape().dims()[1];
    for row in t.as_mut_slice().chunks_exact_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            denom += f64::from(*v);
        }
        let inv = (1.0 / denom) as f32;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetRng;

    #[test]
    fn matmul_small_known() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], [2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5., 6., 7., 8.], [2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_at_b_matches_explicit_transpose() {
        let rng = DetRng::new(1);
        let a = Tensor::randn([5, 3], 1.0, &rng.derive("a"));
        let b = Tensor::randn([5, 4], 1.0, &rng.derive("b"));
        let expected = matmul(&a.transpose2().unwrap(), &b).unwrap();
        let got = matmul_at_b(&a, &b).unwrap();
        assert!(got.max_abs_diff(&expected).unwrap() < 1e-6);
    }

    #[test]
    fn matmul_a_bt_matches_explicit_transpose() {
        let rng = DetRng::new(2);
        let a = Tensor::randn([4, 6], 1.0, &rng.derive("a"));
        let b = Tensor::randn([3, 6], 1.0, &rng.derive("b"));
        let expected = matmul(&a, &b.transpose2().unwrap()).unwrap();
        let got = matmul_a_bt(&a, &b).unwrap();
        assert!(got.max_abs_diff(&expected).unwrap() < 1e-6);
    }

    #[test]
    fn column_partitioned_matmul_matches_full() {
        // The key determinism property: TP column-parallel results, when
        // concatenated, equal the unpartitioned result bitwise (the inner
        // reduction is untouched by output-dim partitioning).
        let rng = DetRng::new(3);
        let x = Tensor::randn([4, 8], 1.0, &rng.derive("x"));
        let w = Tensor::randn([8, 6], 1.0, &rng.derive("w"));
        let full = matmul(&x, &w).unwrap();
        let shards = w.chunk(1, 2).unwrap();
        let y0 = matmul(&x, &shards[0]).unwrap();
        let y1 = matmul(&x, &shards[1]).unwrap();
        let cat = Tensor::concat(&[&y0, &y1], 1).unwrap();
        assert!(cat.bitwise_eq(&full));
    }

    #[test]
    fn row_partitioned_matmul_close_to_full() {
        // Row-parallel splits the inner reduction; f64 accumulation keeps the
        // re-summed result within 1 ulp of f32.
        let rng = DetRng::new(4);
        let x = Tensor::randn([4, 8], 1.0, &rng.derive("x"));
        let w = Tensor::randn([8, 6], 1.0, &rng.derive("w"));
        let full = matmul(&x, &w).unwrap();
        let xs = x.chunk(1, 2).unwrap();
        let ws = w.chunk(0, 2).unwrap();
        let p0 = matmul(&xs[0], &ws[0]).unwrap();
        let p1 = matmul(&xs[1], &ws[1]).unwrap();
        let summed = add(&p0, &p1).unwrap();
        assert!(summed.max_abs_diff(&full).unwrap() < 1e-5);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut t = Tensor::from_vec(vec![1., 2., 3., 1000., 1001., 1002.], [2, 3]).unwrap();
        softmax_rows(&mut t).unwrap();
        for row in t.as_slice().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn grad_norm_helpers() {
        let t = Tensor::from_vec(vec![3.0, 4.0], [2]).unwrap();
        assert_eq!(sumsq64(&t), 25.0);
        assert_eq!(sum64(&t), 7.0);
        assert_eq!(dot64(t.as_slice(), t.as_slice()), 25.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1., 2.], [2]).unwrap();
        let b = Tensor::from_vec(vec![3., 5.], [2]).unwrap();
        assert_eq!(add(&a, &b).unwrap().as_slice(), &[4., 7.]);
        assert_eq!(sub(&b, &a).unwrap().as_slice(), &[2., 3.]);
        assert_eq!(mul(&a, &b).unwrap().as_slice(), &[3., 10.]);
        let mut c = a.clone();
        axpy(&mut c, 2.0, &b).unwrap();
        assert_eq!(c.as_slice(), &[7., 12.]);
        scale(&mut c, 0.5);
        assert_eq!(c.as_slice(), &[3.5, 6.]);
    }

    #[test]
    fn elementwise_shape_mismatch_errors() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        assert!(add(&a, &b).is_err());
        assert!(mul(&a, &b).is_err());
    }
}
