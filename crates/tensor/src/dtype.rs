//! Logical element types and their byte codecs.
//!
//! Tensors always hold `f32` values in memory; the [`DType`] tag records the
//! precision the tensor *represents*. Serialization writes the native bit
//! pattern for the tag (2 bytes for `F16`/`BF16`, 4 for `F32`), so a
//! checkpoint of a bf16 model copy is genuinely half the size of its fp32
//! master — matching the storage behaviour of mixed-precision training that
//! §3.1 of the paper builds on.

use half::{bf16, f16};
use serde::{Deserialize, Serialize};

/// Logical element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 half precision.
    F16,
    /// bfloat16 (truncated single precision).
    BF16,
}

impl DType {
    /// Size in bytes of one serialized element.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 | DType::BF16 => 2,
        }
    }

    /// Round an `f32` value to the nearest value representable in this type.
    pub fn quantize(self, v: f32) -> f32 {
        match self {
            DType::F32 => v,
            DType::F16 => f16::from_f32(v).to_f32(),
            DType::BF16 => bf16::from_f32(v).to_f32(),
        }
    }

    /// Serialize a slice of (already quantized) values into `out`.
    pub fn encode(self, values: &[f32], out: &mut Vec<u8>) {
        match self {
            DType::F32 => {
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            DType::F16 => {
                for v in values {
                    out.extend_from_slice(&f16::from_f32(*v).to_le_bytes());
                }
            }
            DType::BF16 => {
                for v in values {
                    out.extend_from_slice(&bf16::from_f32(*v).to_le_bytes());
                }
            }
        }
    }

    /// Deserialize `count` elements from `bytes`.
    ///
    /// Returns `None` if `bytes` is shorter than `count * size_bytes`.
    pub fn decode(self, bytes: &[u8], count: usize) -> Option<Vec<f32>> {
        let need = count * self.size_bytes();
        if bytes.len() < need {
            return None;
        }
        let mut out = Vec::with_capacity(count);
        match self {
            DType::F32 => {
                for c in bytes[..need].chunks_exact(4) {
                    out.push(f32::from_le_bytes([c[0], c[1], c[2], c[3]]));
                }
            }
            DType::F16 => {
                for c in bytes[..need].chunks_exact(2) {
                    out.push(f16::from_le_bytes([c[0], c[1]]).to_f32());
                }
            }
            DType::BF16 => {
                for c in bytes[..need].chunks_exact(2) {
                    out.push(bf16::from_le_bytes([c[0], c[1]]).to_f32());
                }
            }
        }
        Some(out)
    }

    /// Stable on-disk identifier.
    pub fn tag(self) -> u8 {
        match self {
            DType::F32 => 0,
            DType::F16 => 1,
            DType::BF16 => 2,
        }
    }

    /// Inverse of [`DType::tag`].
    pub fn from_tag(tag: u8) -> Option<DType> {
        match tag {
            0 => Some(DType::F32),
            1 => Some(DType::F16),
            2 => Some(DType::BF16),
            _ => None,
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DType::F32 => write!(f, "fp32"),
            DType::F16 => write!(f, "fp16"),
            DType::BF16 => write!(f, "bf16"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_f32_is_identity() {
        for v in [0.0f32, -1.5, 3.25e7, f32::MIN_POSITIVE] {
            assert_eq!(DType::F32.quantize(v), v);
        }
    }

    #[test]
    fn quantize_bf16_truncates_mantissa() {
        let v = 1.0f32 + f32::EPSILON;
        let q = DType::BF16.quantize(v);
        assert_eq!(q, 1.0, "bf16 has 8 mantissa bits, eps is dropped");
    }

    #[test]
    fn quantize_f16_saturates_range() {
        let q = DType::F16.quantize(1e6);
        assert!(q.is_infinite(), "1e6 overflows fp16 to inf, got {q}");
    }

    #[test]
    fn encode_decode_roundtrip_f32() {
        let vals = vec![0.0f32, 1.5, -2.25, 1e-30, f32::MAX];
        let mut buf = Vec::new();
        DType::F32.encode(&vals, &mut buf);
        assert_eq!(buf.len(), vals.len() * 4);
        let back = DType::F32.decode(&buf, vals.len()).unwrap();
        assert_eq!(back, vals);
    }

    #[test]
    fn encode_decode_roundtrip_half_types() {
        for dt in [DType::F16, DType::BF16] {
            let vals: Vec<f32> = [0.0f32, 1.5, -2.25, 100.0]
                .iter()
                .map(|v| dt.quantize(*v))
                .collect();
            let mut buf = Vec::new();
            dt.encode(&vals, &mut buf);
            assert_eq!(buf.len(), vals.len() * 2);
            let back = dt.decode(&buf, vals.len()).unwrap();
            assert_eq!(back, vals, "{dt} roundtrip");
        }
    }

    #[test]
    fn decode_short_buffer_is_none() {
        assert!(DType::F32.decode(&[0u8; 7], 2).is_none());
        assert!(DType::BF16.decode(&[0u8; 3], 2).is_none());
    }

    #[test]
    fn tag_roundtrip() {
        for dt in [DType::F32, DType::F16, DType::BF16] {
            assert_eq!(DType::from_tag(dt.tag()), Some(dt));
        }
        assert_eq!(DType::from_tag(9), None);
    }
}
