//! The owned dense tensor type and its structural operations.
//!
//! Structural operations (narrow / concat / pad / strip) are the data
//! movements UCP's `Extract`, `Union`, and `StripPadding` are built from,
//! so they are exact: they copy bits, never recompute values.

use crate::{DType, DetRng, Result, Shape, TensorError};

/// An owned, contiguous, row-major tensor of `f32` values with a logical
/// [`DType`] tag.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
    dtype: DType,
}

impl Tensor {
    /// Create a tensor from raw values. Fails if the element count does not
    /// match the shape.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if data.len() != shape.num_elements() {
            return Err(TensorError::ElementCountMismatch {
                got: data.len(),
                expected: shape.num_elements(),
            });
        }
        Ok(Tensor {
            data,
            shape,
            dtype: DType::F32,
        })
    }

    /// A tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        Tensor {
            data: vec![0.0; shape.num_elements()],
            shape,
            dtype: DType::F32,
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Tensor {
        let shape = shape.into();
        Tensor {
            data: vec![value; shape.num_elements()],
            shape,
            dtype: DType::F32,
        }
    }

    /// A scalar tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor {
            data: vec![value],
            shape: Shape::scalar(),
            dtype: DType::F32,
        }
    }

    /// Normal-initialized tensor drawn from a named stream, so any shard of
    /// it can be reproduced independently (see [`DetRng::fill_normal_range`]).
    pub fn randn(shape: impl Into<Shape>, std: f32, stream: &DetRng) -> Tensor {
        let shape = shape.into();
        let mut data = vec![0.0f32; shape.num_elements()];
        stream.fill_normal_range(0, std, &mut data);
        Tensor {
            data,
            shape,
            dtype: DType::F32,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's logical dtype.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Total element count.
    pub fn num_elements(&self) -> usize {
        self.data.len()
    }

    /// Borrow the underlying values.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying values.
    ///
    /// Mutating a non-`F32` tensor may produce values not representable in
    /// its logical dtype; callers that care must re-[`cast`](Tensor::cast).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its values.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Cast to a logical dtype, quantizing every element so all values are
    /// exactly representable in the target format.
    pub fn cast(&self, dtype: DType) -> Tensor {
        if dtype == self.dtype && dtype == DType::F32 {
            return self.clone();
        }
        Tensor {
            data: self.data.iter().map(|v| dtype.quantize(*v)).collect(),
            shape: self.shape.clone(),
            dtype,
        }
    }

    /// Reinterpret with a new shape of the same element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.num_elements() != self.data.len() {
            return Err(TensorError::ElementCountMismatch {
                got: self.data.len(),
                expected: shape.num_elements(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape,
            dtype: self.dtype,
        })
    }

    /// Slice `len` indices starting at `start` along dimension `dim`.
    pub fn narrow(&self, dim: usize, start: usize, len: usize) -> Result<Tensor> {
        let dim_size = self.shape.dim(dim)?;
        if start + len > dim_size {
            return Err(TensorError::RangeOutOfBounds {
                start,
                len,
                dim_size,
            });
        }
        let outer = self.shape.outer_size(dim);
        let inner = self.shape.inner_size(dim);
        let mut data = Vec::with_capacity(outer * len * inner);
        for o in 0..outer {
            let base = o * dim_size * inner + start * inner;
            data.extend_from_slice(&self.data[base..base + len * inner]);
        }
        Ok(Tensor {
            data,
            shape: self.shape.with_dim(dim, len),
            dtype: self.dtype,
        })
    }

    /// Split into `parts.len()` tensors along `dim` with the given extents.
    pub fn split(&self, dim: usize, parts: &[usize]) -> Result<Vec<Tensor>> {
        let dim_size = self.shape.dim(dim)?;
        let total: usize = parts.iter().sum();
        if total != dim_size {
            return Err(TensorError::RangeOutOfBounds {
                start: 0,
                len: total,
                dim_size,
            });
        }
        let mut out = Vec::with_capacity(parts.len());
        let mut start = 0;
        for len in parts {
            out.push(self.narrow(dim, start, *len)?);
            start += len;
        }
        Ok(out)
    }

    /// Split into `n` equal chunks along `dim`. The extent must divide evenly.
    pub fn chunk(&self, dim: usize, n: usize) -> Result<Vec<Tensor>> {
        let dim_size = self.shape.dim(dim)?;
        if n == 0 || dim_size % n != 0 {
            return Err(TensorError::InvalidConcat(format!(
                "cannot chunk dimension of size {dim_size} into {n} equal parts"
            )));
        }
        self.split(dim, &vec![dim_size / n; n])
    }

    /// Concatenate tensors along `dim`. All other dimensions must agree.
    pub fn concat(tensors: &[&Tensor], dim: usize) -> Result<Tensor> {
        let first = tensors
            .first()
            .ok_or_else(|| TensorError::InvalidConcat("empty input".into()))?;
        let rank = first.shape.rank();
        if dim >= rank {
            return Err(TensorError::DimOutOfRange { dim, rank });
        }
        let mut cat_extent = 0;
        for t in tensors {
            if t.shape.rank() != rank {
                return Err(TensorError::InvalidConcat(format!(
                    "rank mismatch: {} vs {}",
                    t.shape, first.shape
                )));
            }
            for d in 0..rank {
                if d != dim && t.shape.dims()[d] != first.shape.dims()[d] {
                    return Err(TensorError::InvalidConcat(format!(
                        "non-concat dimension {d} mismatch: {} vs {}",
                        t.shape, first.shape
                    )));
                }
            }
            cat_extent += t.shape.dims()[dim];
        }
        let out_shape = first.shape.with_dim(dim, cat_extent);
        let outer = first.shape.outer_size(dim);
        let inner = first.shape.inner_size(dim);
        let mut data = Vec::with_capacity(out_shape.num_elements());
        for o in 0..outer {
            for t in tensors {
                let td = t.shape.dims()[dim];
                let base = o * td * inner;
                data.extend_from_slice(&t.data[base..base + td * inner]);
            }
        }
        Ok(Tensor {
            data,
            shape: out_shape,
            dtype: first.dtype,
        })
    }

    /// Pad dimension `dim` at the end with zeros up to extent `target`.
    ///
    /// This is the hardware-alignment padding UCP's `StripPadding` removes.
    pub fn pad_dim(&self, dim: usize, target: usize) -> Result<Tensor> {
        let dim_size = self.shape.dim(dim)?;
        if target < dim_size {
            return Err(TensorError::RangeOutOfBounds {
                start: 0,
                len: target,
                dim_size,
            });
        }
        if target == dim_size {
            return Ok(self.clone());
        }
        let pad = Tensor {
            data: vec![
                0.0;
                self.shape.outer_size(dim) * (target - dim_size) * self.shape.inner_size(dim)
            ],
            shape: self.shape.with_dim(dim, target - dim_size),
            dtype: self.dtype,
        };
        Tensor::concat(&[self, &pad], dim)
    }

    /// Remove end-padding along `dim`, keeping the first `target` indices:
    /// the inverse of [`Tensor::pad_dim`].
    pub fn strip_dim(&self, dim: usize, target: usize) -> Result<Tensor> {
        self.narrow(dim, 0, target)
    }

    /// Transpose a rank-2 tensor.
    pub fn transpose2(&self) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::DimOutOfRange {
                dim: 2,
                rank: self.shape.rank(),
            });
        }
        let (r, c) = (self.shape.dims()[0], self.shape.dims()[1]);
        let mut data = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(Tensor {
            data,
            shape: Shape::new([c, r]),
            dtype: self.dtype,
        })
    }

    /// Flatten to rank-1 preserving element order.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            data: self.data.clone(),
            shape: Shape::new([self.data.len()]),
            dtype: self.dtype,
        }
    }

    /// True if every element is bitwise equal to the corresponding element
    /// of `other` (NaN-aware: NaN == NaN).
    pub fn bitwise_eq(&self, other: &Tensor) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Maximum absolute elementwise difference; `None` on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> Option<f32> {
        if self.shape != other.shape {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32).collect()
    }

    #[test]
    fn from_vec_checks_count() {
        assert!(Tensor::from_vec(seq(6), [2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(seq(5), [2, 3]),
            Err(TensorError::ElementCountMismatch {
                got: 5,
                expected: 6
            })
        ));
    }

    #[test]
    fn narrow_middle_dim() {
        let t = Tensor::from_vec(seq(24), [2, 3, 4]).unwrap();
        let n = t.narrow(1, 1, 2).unwrap();
        assert_eq!(n.shape().dims(), &[2, 2, 4]);
        assert_eq!(
            n.as_slice(),
            &[4., 5., 6., 7., 8., 9., 10., 11., 16., 17., 18., 19., 20., 21., 22., 23.]
        );
    }

    #[test]
    fn narrow_out_of_bounds() {
        let t = Tensor::zeros([2, 3]);
        assert!(t.narrow(1, 2, 2).is_err());
        assert!(t.narrow(2, 0, 1).is_err());
    }

    #[test]
    fn split_concat_roundtrip_dim0() {
        let t = Tensor::from_vec(seq(12), [4, 3]).unwrap();
        let parts = t.split(0, &[1, 2, 1]).unwrap();
        let refs: Vec<&Tensor> = parts.iter().collect();
        let back = Tensor::concat(&refs, 0).unwrap();
        assert!(back.bitwise_eq(&t));
    }

    #[test]
    fn split_concat_roundtrip_dim1() {
        let t = Tensor::from_vec(seq(12), [3, 4]).unwrap();
        let parts = t.split(1, &[3, 1]).unwrap();
        let refs: Vec<&Tensor> = parts.iter().collect();
        let back = Tensor::concat(&refs, 1).unwrap();
        assert!(back.bitwise_eq(&t));
    }

    #[test]
    fn chunk_requires_divisibility() {
        let t = Tensor::zeros([5, 2]);
        assert!(t.chunk(0, 2).is_err());
        assert_eq!(t.chunk(0, 5).unwrap().len(), 5);
    }

    #[test]
    fn concat_rejects_mismatched_other_dims() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 4]);
        assert!(Tensor::concat(&[&a, &b], 0).is_err());
        assert!(Tensor::concat(&[&a, &b], 1).is_ok());
    }

    #[test]
    fn concat_empty_is_error() {
        assert!(Tensor::concat(&[], 0).is_err());
    }

    #[test]
    fn pad_strip_roundtrip() {
        let t = Tensor::from_vec(seq(6), [2, 3]).unwrap();
        let padded = t.pad_dim(1, 5).unwrap();
        assert_eq!(padded.shape().dims(), &[2, 5]);
        assert_eq!(padded.as_slice()[3], 0.0);
        assert_eq!(padded.as_slice()[4], 0.0);
        let back = padded.strip_dim(1, 3).unwrap();
        assert!(back.bitwise_eq(&t));
    }

    #[test]
    fn pad_noop_when_already_at_target() {
        let t = Tensor::from_vec(seq(6), [2, 3]).unwrap();
        assert!(t.pad_dim(1, 3).unwrap().bitwise_eq(&t));
        assert!(t.pad_dim(1, 2).is_err());
    }

    #[test]
    fn transpose2_involution() {
        let t = Tensor::from_vec(seq(6), [2, 3]).unwrap();
        let tt = t.transpose2().unwrap();
        assert_eq!(tt.shape().dims(), &[3, 2]);
        assert_eq!(tt.as_slice(), &[0., 3., 1., 4., 2., 5.]);
        assert!(tt.transpose2().unwrap().bitwise_eq(&t));
    }

    #[test]
    fn cast_bf16_quantizes_payload() {
        let t = Tensor::from_vec(vec![1.0 + f32::EPSILON; 4], [4]).unwrap();
        let c = t.cast(DType::BF16);
        assert_eq!(c.dtype(), DType::BF16);
        assert!(c.as_slice().iter().all(|v| *v == 1.0));
    }

    #[test]
    fn randn_sharding_matches_full() {
        let stream = DetRng::new(123).derive("layer.0.weight");
        let full = Tensor::randn([8, 4], 0.02, &stream);
        // Reconstruct row-shards [0..4) and [4..8) independently.
        let mut top = vec![0.0f32; 16];
        let mut bottom = vec![0.0f32; 16];
        stream.fill_normal_range(0, 0.02, &mut top);
        stream.fill_normal_range(16, 0.02, &mut bottom);
        assert_eq!(&full.as_slice()[..16], &top[..]);
        assert_eq!(&full.as_slice()[16..], &bottom[..]);
    }

    #[test]
    fn bitwise_eq_detects_single_bit() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let mut b = a.clone();
        b.as_mut_slice()[1] = f32::from_bits(2.0f32.to_bits() ^ 1);
        assert!(!a.bitwise_eq(&b));
        assert!(a.max_abs_diff(&b).unwrap() > 0.0);
    }
}
