//! Tensor shapes and contiguous (row-major) stride arithmetic.

use serde::{Deserialize, Serialize};

use crate::TensorError;

/// A tensor shape: the extent of each dimension, row-major.
///
/// Rank-0 (scalar) shapes are represented by an empty dimension list and
/// have one element.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Create a shape from dimension extents.
    pub fn new(dims: impl Into<Vec<usize>>) -> Shape {
        Shape(dims.into())
    }

    /// A scalar (rank-0) shape.
    pub fn scalar() -> Shape {
        Shape(Vec::new())
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// The extent of dimension `dim`.
    pub fn dim(&self, dim: usize) -> Result<usize, TensorError> {
        self.0.get(dim).copied().ok_or(TensorError::DimOutOfRange {
            dim,
            rank: self.rank(),
        })
    }

    /// Row-major strides (in elements) for a contiguous layout.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Product of extents *before* `dim` (the "outer" loop count when
    /// iterating blocks along `dim`).
    pub fn outer_size(&self, dim: usize) -> usize {
        self.0[..dim].iter().product()
    }

    /// Product of extents *after* `dim` (the contiguous "inner" block size).
    pub fn inner_size(&self, dim: usize) -> usize {
        self.0[dim + 1..].iter().product()
    }

    /// Shape with dimension `dim` replaced by `extent`.
    pub fn with_dim(&self, dim: usize, extent: usize) -> Shape {
        let mut dims = self.0.clone();
        dims[dim] = extent;
        Shape(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Shape {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Shape {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Shape {
        Shape(v.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.num_elements(), 24);
    }

    #[test]
    fn outer_inner_sizes() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.outer_size(0), 1);
        assert_eq!(s.inner_size(0), 12);
        assert_eq!(s.outer_size(1), 2);
        assert_eq!(s.inner_size(1), 4);
        assert_eq!(s.outer_size(2), 6);
        assert_eq!(s.inner_size(2), 1);
    }

    #[test]
    fn dim_out_of_range_errors() {
        let s = Shape::new([2]);
        assert!(matches!(
            s.dim(1),
            Err(TensorError::DimOutOfRange { dim: 1, rank: 1 })
        ));
    }

    #[test]
    fn with_dim_replaces_extent() {
        let s = Shape::new([2, 3]);
        assert_eq!(s.with_dim(1, 7).dims(), &[2, 7]);
    }

    #[test]
    fn display_formats_like_a_list() {
        assert_eq!(Shape::new([2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
