//! Crash-consistent file publication.
//!
//! Every durable artifact UCP writes — containers, atom files, manifests,
//! and the `latest` / `latest_universal` markers — lands through the same
//! four-step protocol:
//!
//! 1. write the full contents to `<name>.tmp` in the destination directory,
//! 2. fsync the staging file,
//! 3. rename `<name>.tmp` over `<name>` (atomic on POSIX filesystems),
//! 4. fsync the parent directory so the rename itself is durable.
//!
//! A reader therefore observes either the old file or the complete new
//! one, never a torn write. A crash before step 3 leaves only a `.tmp`
//! remnant, which loaders ignore and `ucp fsck` sweeps away.
//!
//! Each step registers a kill point with [`crate::io::fault`], so the
//! crash-replay harness can kill the process (in effect) at any write,
//! fsync, or rename and assert recovery.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::io::fault::{self, FaultWriter};
use crate::Result;

/// Suffix staged files carry until they are renamed into place.
pub const TMP_SUFFIX: &str = ".tmp";

/// The staging path for `dest` (`model_states.ucpt` → `model_states.ucpt.tmp`).
pub fn tmp_path(dest: &Path) -> PathBuf {
    let mut name = dest.file_name().unwrap_or_default().to_os_string();
    name.push(TMP_SUFFIX);
    dest.with_file_name(name)
}

/// Whether `path` is a leftover staging file from an interrupted commit.
pub fn is_tmp(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.ends_with(TMP_SUFFIX))
}

/// fsync a directory so a preceding rename within it is durable.
pub fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    fault::gate("commit.dirsync", dir)?;
    File::open(dir)?.sync_all()
}

/// A file being staged for atomic publication. Create, fill via
/// [`AtomicFile::writer`], then [`AtomicFile::commit`]. Dropping without
/// committing leaves the `.tmp` remnant behind — exactly what a crash
/// would leave, and what `ucp fsck` cleans up.
pub struct AtomicFile {
    tmp: PathBuf,
    dest: PathBuf,
    file: Option<File>,
}

impl AtomicFile {
    /// Start staging a new version of `dest` (parent directories are
    /// created as needed).
    pub fn create(dest: &Path) -> Result<AtomicFile> {
        if let Some(parent) = dest.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent)?;
        }
        let tmp = tmp_path(dest);
        let file = File::create(&tmp)?;
        Ok(AtomicFile {
            tmp,
            dest: dest.to_path_buf(),
            file: Some(file),
        })
    }

    /// Buffered, fault-injecting writer for the staging file. Flush (or
    /// drop) the writer before calling [`AtomicFile::commit`].
    pub fn writer(&self) -> FaultWriter<BufWriter<&File>> {
        FaultWriter::new(
            BufWriter::new(self.file.as_ref().expect("AtomicFile already committed")),
            &self.tmp,
        )
    }

    /// fsync the staged data, rename it over the destination, and fsync
    /// the parent directory. After this returns the new contents are
    /// durable under the destination name.
    pub fn commit(mut self) -> Result<()> {
        let file = self.file.take().expect("AtomicFile already committed");
        fault::gate("commit.fsync", &self.tmp)?;
        file.sync_all()?;
        drop(file);
        fault::gate("commit.rename", &self.dest)?;
        fs::rename(&self.tmp, &self.dest)?;
        if let Some(parent) = self.dest.parent().filter(|p| !p.as_os_str().is_empty()) {
            fsync_dir(parent)?;
        }
        Ok(())
    }
}

impl AtomicFile {
    /// Rename the staged file into place *without* the fsyncs: atomic
    /// against concurrent readers, but not durable across power loss.
    /// Crash-critical artifacts must use [`AtomicFile::commit`].
    pub fn publish_unsynced(mut self) -> Result<()> {
        let file = self.file.take().expect("AtomicFile already committed");
        drop(file);
        fault::gate("commit.rename", &self.dest)?;
        fs::rename(&self.tmp, &self.dest)?;
        Ok(())
    }
}

/// Atomically publish `bytes` at `path` via the full staged protocol.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    atomic_write_with(path, |w| w.write_all(bytes))
}

/// Atomically publish a file whose contents are produced by `fill`
/// streaming into a buffered writer.
///
/// On a genuine write failure (ENOSPC, permission errors, ...) the staged
/// `.tmp` file is unlinked best-effort so failed writes do not leak
/// stale staging files. *Injected crashes* from [`crate::io::fault`] are
/// exempt: they simulate the process dying mid-commit, where nothing gets
/// to clean up, and the crash-replay tests assert the remnant survives.
pub fn atomic_write_with<F>(path: &Path, fill: F) -> Result<()>
where
    F: FnOnce(&mut dyn Write) -> std::io::Result<()>,
{
    let staged = AtomicFile::create(path)?;
    let result = (|| {
        {
            let mut w = staged.writer();
            fill(&mut w)?;
            w.flush()?;
        }
        staged.commit()
    })();
    if let Err(e) = &result {
        let crashed = matches!(e, crate::StorageError::Io(io) if fault::is_injected(io));
        if !crashed {
            let _ = fs::remove_file(tmp_path(path));
        }
    }
    result
}

/// Durably publish `dst` as a hard link to the existing file `src`,
/// through the same staged protocol as [`atomic_write`]: link to
/// `<dst>.tmp`, rename over `dst`, fsync the parent directory. Used by
/// the incremental save pipeline to reuse a prior universal step's atom
/// files for clean (untouched) atoms without rewriting their bytes.
///
/// `src`'s *contents* are already durable (it was itself committed), so no
/// data fsync is needed — only the directory entry must survive a crash,
/// which the dir fsync guarantees. A crash mid-way leaves at most a
/// `<dst>.tmp` remnant that `ucp fsck` sweeps. Readers see either no file
/// or a complete, valid atom: hard links are atomic at the namespace
/// level, and both names resolve to the same verified inode.
///
/// Two kill points: `commit.link` (the staging link) and `commit.rename`,
/// plus the shared `commit.dirsync` inside [`fsync_dir`].
pub fn link_file_durable(src: &Path, dst: &Path) -> Result<()> {
    if let Some(parent) = dst.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent)?;
    }
    let tmp = tmp_path(dst);
    let result = (|| -> Result<()> {
        // A stale staging link from an interrupted earlier attempt would
        // make the fresh hard_link fail; sweep it first.
        let _ = fs::remove_file(&tmp);
        fault::gate("commit.link", &tmp)?;
        fs::hard_link(src, &tmp)?;
        fault::gate("commit.rename", dst)?;
        fs::rename(&tmp, dst)?;
        if let Some(parent) = dst.parent().filter(|p| !p.as_os_str().is_empty()) {
            fsync_dir(parent)?;
        }
        Ok(())
    })();
    if let Err(e) = &result {
        let crashed = matches!(e, crate::StorageError::Io(io) if fault::is_injected(io));
        if !crashed {
            let _ = fs::remove_file(&tmp);
        }
    }
    result
}

/// Crash-consistently append one `line` (no trailing newline) to the file
/// at `path`, creating it if absent — the primitive under the run journal.
///
/// Appends don't stage-and-rename (that would rewrite the whole file per
/// record); instead the whole line plus its newline lands in a single
/// `O_APPEND` write followed by an fsync. A crash can therefore lose or
/// tear only the final record, and only up to its newline — every earlier
/// line is intact, which is exactly the "parseable prefix" contract the
/// journal reader and `ucp fsck` enforce. Two kill points per append: the
/// data write (torn-write injectable) and `append.fsync`.
///
/// If the file ends mid-line — debris from a crash during an earlier
/// append — the torn tail is truncated away first, so a new record never
/// concatenates onto debris and the file heals on the next append.
pub fn append_line(path: &Path, line: &str) -> Result<()> {
    debug_assert!(!line.contains('\n'), "journal records are single lines");
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent)?;
    }
    let file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .read(true)
        .open(path)?;
    heal_torn_tail(&file)?;
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    let mut w = FaultWriter::new(&file, path);
    w.write_all(buf.as_bytes())?;
    w.flush()?;
    fault::gate("append.fsync", path)?;
    file.sync_all()?;
    Ok(())
}

/// Truncate `file` back to its last newline if it does not end in one.
/// Crash-safe without a kill point of its own: dying before or during the
/// truncate leaves either the torn tail or the healed prefix, both of
/// which readers already tolerate.
fn heal_torn_tail(file: &File) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let len = file.metadata()?.len();
    if len == 0 {
        return Ok(());
    }
    let mut f = file;
    f.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    if last[0] == b'\n' {
        return Ok(());
    }
    // Torn tail (only ever one record long, so a full read is cheap
    // relative to how rarely a crash precedes an append).
    f.seek(SeekFrom::Start(0))?;
    let mut bytes = Vec::with_capacity(len as usize);
    f.read_to_end(&mut bytes)?;
    let keep = bytes
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|i| i + 1)
        .unwrap_or(0);
    file.set_len(keep as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::fault::FaultPlan;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ucp_commit_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_publishes_and_cleans_tmp() {
        let dir = temp_dir("publish");
        let path = dir.join("marker");
        atomic_write(&path, b"global_step10").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"global_step10");
        assert!(!tmp_path(&path).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_replaces_existing_contents() {
        let dir = temp_dir("replace");
        let path = dir.join("marker");
        atomic_write(&path, b"old").unwrap();
        atomic_write(&path, b"new").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_before_rename_preserves_old_contents() {
        let dir = temp_dir("crash");
        let path = dir.join("marker");
        atomic_write(&path, b"old").unwrap();

        // One write + fsync + rename + dirsync = kill points 0..=3.
        // Killing at the fsync (point 1) must leave the old file intact
        // and the torn tmp on disk.
        let armed = fault::arm(FaultPlan::kill_at(1, &dir));
        let err = atomic_write(&path, b"new").unwrap_err();
        drop(armed);
        assert!(err.to_string().contains("injected crash"));
        assert_eq!(fs::read(&path).unwrap(), b"old");
        assert!(tmp_path(&path).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_truncates_tmp_only() {
        let dir = temp_dir("torn");
        let path = dir.join("marker");
        let armed = fault::arm(FaultPlan {
            truncate_to: Some(3),
            ..FaultPlan::kill_at(0, &dir)
        });
        let err = atomic_write(&path, b"global_step99").unwrap_err();
        drop(armed);
        assert!(err.to_string().contains("injected crash"));
        assert!(!path.exists());
        assert_eq!(fs::read(tmp_path(&path)).unwrap(), b"glo");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_point_counting_is_stable() {
        let dir = temp_dir("count");
        let path = dir.join("marker");
        let armed = fault::arm(FaultPlan::count_only(&dir));
        atomic_write(&path, b"x").unwrap();
        // write, fsync, rename, dirsync.
        assert_eq!(armed.hits(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_disk_full_write_cleans_up_tmp() {
        let dir = temp_dir("enospc");
        let path = dir.join("marker");
        // A survivable failure (torn write, then ENOSPC) — unlike an
        // injected crash, the process lives, so the staging file must go.
        let armed = fault::arm(FaultPlan {
            kill_after: Some(0),
            truncate_to: Some(3),
            full_disk: true,
            scope: Some(dir.clone()),
        });
        let err = atomic_write(&path, b"global_step99").unwrap_err();
        drop(armed);
        assert!(err.to_string().contains("no space left"), "{err}");
        match err {
            crate::StorageError::Io(io) => assert!(!fault::is_injected(&io)),
            other => panic!("expected an Io error, got {other:?}"),
        }
        assert!(!path.exists());
        assert!(
            !tmp_path(&path).exists(),
            "failed write leaked the .tmp staging file"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_full_at_rename_cleans_tmp_and_keeps_old_contents() {
        let dir = temp_dir("enospc_rename");
        let path = dir.join("marker");
        atomic_write(&path, b"old").unwrap();
        // Kill point 2 is the rename gate; a genuine failure there must
        // leave the published file untouched and remove the staging file.
        let armed = fault::arm(FaultPlan {
            kill_after: Some(2),
            truncate_to: None,
            full_disk: true,
            scope: Some(dir.clone()),
        });
        let err = atomic_write(&path, b"new").unwrap_err();
        drop(armed);
        assert!(err.to_string().contains("no space left"), "{err}");
        assert_eq!(fs::read(&path).unwrap(), b"old");
        assert!(!tmp_path(&path).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_line_accumulates_lines() {
        let dir = temp_dir("append");
        let path = dir.join("journal.jsonl");
        append_line(&path, "{\"a\":1}").unwrap();
        append_line(&path, "{\"b\":2}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"a\":1}\n{\"b\":2}\n");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_line_has_two_kill_points() {
        let dir = temp_dir("append_count");
        let path = dir.join("journal.jsonl");
        let armed = fault::arm(FaultPlan::count_only(&dir));
        append_line(&path, "{}").unwrap();
        // data write, fsync.
        assert_eq!(armed.hits(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_append_preserves_earlier_lines() {
        let dir = temp_dir("append_torn");
        let path = dir.join("journal.jsonl");
        append_line(&path, "{\"a\":1}").unwrap();
        let armed = fault::arm(FaultPlan {
            truncate_to: Some(3),
            ..FaultPlan::kill_at(0, &dir)
        });
        let err = append_line(&path, "{\"b\":2}").unwrap_err();
        drop(armed);
        assert!(err.to_string().contains("injected crash"));
        // The first record survives complete; the torn tail has no newline.
        assert_eq!(fs::read(&path).unwrap(), b"{\"a\":1}\n{\"b");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_after_torn_tail_heals_the_file() {
        let dir = temp_dir("append_heal");
        let path = dir.join("journal.jsonl");
        append_line(&path, "{\"a\":1}").unwrap();
        // Crash debris: a partial record with no newline.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"half");
        fs::write(&path, &bytes).unwrap();
        append_line(&path, "{\"b\":2}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"a\":1}\n{\"b\":2}\n");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn link_file_durable_shares_the_inode() {
        use std::os::unix::fs::MetadataExt;
        let dir = temp_dir("link");
        let src = dir.join("step1").join("atom");
        fs::create_dir_all(src.parent().unwrap()).unwrap();
        atomic_write(&src, b"atom-bytes").unwrap();
        let dst = dir.join("step2").join("atom");
        link_file_durable(&src, &dst).unwrap();
        assert_eq!(fs::read(&dst).unwrap(), b"atom-bytes");
        let (ms, md) = (fs::metadata(&src).unwrap(), fs::metadata(&dst).unwrap());
        assert_eq!(ms.ino(), md.ino(), "dst must be a hard link, not a copy");
        assert_eq!(ms.nlink(), 2);
        assert!(!tmp_path(&dst).exists());
        // Unlinking the source name leaves the shared inode reachable via
        // dst — pruning the old step cannot corrupt the new one.
        fs::remove_file(&src).unwrap();
        assert_eq!(fs::read(&dst).unwrap(), b"atom-bytes");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn link_file_durable_crash_at_rename_leaves_only_tmp() {
        let dir = temp_dir("link_crash");
        let src = dir.join("src");
        atomic_write(&src, b"x").unwrap();
        let dst = dir.join("sub").join("dst");
        // Kill points: link (0), rename (1), dirsync (2).
        let armed = fault::arm(FaultPlan::kill_at(1, &dir));
        let err = link_file_durable(&src, &dst).unwrap_err();
        drop(armed);
        assert!(err.to_string().contains("injected crash"));
        assert!(!dst.exists());
        assert!(tmp_path(&dst).exists(), "crash remnant is the staged link");
        // A retry after the crash heals the stale staging link.
        link_file_durable(&src, &dst).unwrap();
        assert_eq!(fs::read(&dst).unwrap(), b"x");
        assert!(!tmp_path(&dst).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn link_file_durable_has_three_kill_points() {
        let dir = temp_dir("link_count");
        let src = dir.join("src");
        atomic_write(&src, b"x").unwrap();
        let armed = fault::arm(FaultPlan::count_only(&dir));
        link_file_durable(&src, &dir.join("dst")).unwrap();
        // link, rename, dirsync.
        assert_eq!(armed.hits(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faults_outside_scope_do_not_fire() {
        let dir = temp_dir("scope");
        let other = temp_dir("scope_other");
        let armed = fault::arm(FaultPlan::kill_at(0, &other));
        // Writes under `dir` are outside the armed scope: untouched.
        atomic_write(&dir.join("marker"), b"safe").unwrap();
        assert_eq!(armed.hits(), 0);
        drop(armed);
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&other).unwrap();
    }
}
