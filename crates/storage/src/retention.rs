//! Checkpoint retention: bounded-disk pruning of old checkpoint steps.
//!
//! Long training runs checkpoint every few minutes and would otherwise
//! exhaust storage. The policy keeps the most recent `keep_last` steps,
//! plus every `keep_every`-th step as long-term anchors, and never removes
//! the step the `latest` / `latest_universal` markers point to. A step's
//! native and universal trees are pruned together.

use std::path::Path;

use crate::{layout, Result};

/// What to keep when pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Keep this many of the most recent steps (≥ 1).
    pub keep_last: usize,
    /// Additionally keep steps divisible by this interval (`None`
    /// disables anchors).
    pub keep_every: Option<u64>,
}

impl RetentionPolicy {
    /// Keep only the most recent `n` steps.
    pub fn last(n: usize) -> RetentionPolicy {
        RetentionPolicy {
            keep_last: n.max(1),
            keep_every: None,
        }
    }

    /// Whether `step` survives, given the full sorted step list.
    fn keeps(&self, step: u64, sorted_steps: &[u64]) -> bool {
        let recent_cut = sorted_steps.len().saturating_sub(self.keep_last);
        if sorted_steps[recent_cut..].contains(&step) {
            return true;
        }
        matches!(self.keep_every, Some(every) if every > 0 && step.is_multiple_of(every))
    }
}

/// List the checkpoint steps present under `base` (native step
/// directories), ascending.
pub fn list_steps(base: &Path) -> Vec<u64> {
    let mut steps = Vec::new();
    let Ok(entries) = std::fs::read_dir(base) else {
        return steps;
    };
    for e in entries.flatten() {
        let name = e.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix("global_step")
            .filter(|rest| !rest.contains('_'))
        {
            if let Ok(step) = num.parse() {
                steps.push(step);
            }
        }
    }
    steps.sort_unstable();
    steps
}

/// Outcome of a prune pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Steps removed (native tree, and universal tree if present).
    pub removed: Vec<u64>,
    /// Steps kept.
    pub kept: Vec<u64>,
    /// Bytes reclaimed.
    pub bytes_reclaimed: u64,
}

/// Apply a retention policy under `base`. The steps referenced by the
/// `latest` and `latest_universal` markers are always kept.
pub fn prune(base: &Path, policy: &RetentionPolicy) -> Result<PruneReport> {
    let steps = list_steps(base);
    let pinned_native = layout::read_latest(base);
    let pinned_universal = layout::read_latest_universal(base);
    let mut report = PruneReport::default();
    for &step in &steps {
        let pinned = Some(step) == pinned_native || Some(step) == pinned_universal;
        if pinned || policy.keeps(step, &steps) {
            report.kept.push(step);
            continue;
        }
        for dir in [
            layout::step_dir(base, step),
            layout::universal_dir(base, step),
        ] {
            if dir.is_dir() {
                report.bytes_reclaimed += layout::dir_size_bytes(&dir);
                std::fs::remove_dir_all(&dir)?;
            }
        }
        report.removed.push(step);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabricate(name: &str, steps: &[u64]) -> std::path::PathBuf {
        let base = std::env::temp_dir().join(format!("ucp_retention_{name}"));
        std::fs::remove_dir_all(&base).ok();
        for &s in steps {
            let dir = layout::step_dir(&base, s);
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("payload"), vec![0u8; 100]).unwrap();
        }
        base
    }

    #[test]
    fn keeps_most_recent() {
        let base = fabricate("recent", &[10, 20, 30, 40, 50]);
        layout::write_latest(&base, 50).unwrap();
        let report = prune(&base, &RetentionPolicy::last(2)).unwrap();
        assert_eq!(report.removed, vec![10, 20, 30]);
        assert_eq!(report.kept, vec![40, 50]);
        assert_eq!(report.bytes_reclaimed, 300);
        assert_eq!(list_steps(&base), vec![40, 50]);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn anchors_survive() {
        let base = fabricate("anchors", &[100, 150, 200, 250, 300]);
        layout::write_latest(&base, 300).unwrap();
        let policy = RetentionPolicy {
            keep_last: 1,
            keep_every: Some(100),
        };
        let report = prune(&base, &policy).unwrap();
        assert_eq!(report.removed, vec![150, 250]);
        assert_eq!(list_steps(&base), vec![100, 200, 300]);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn latest_markers_are_pinned() {
        let base = fabricate("pinned", &[1, 2, 3]);
        layout::write_latest(&base, 3).unwrap();
        // The universal marker pins an old step even under keep_last(1).
        layout::write_latest_universal(&base, 1).unwrap();
        let report = prune(&base, &RetentionPolicy::last(1)).unwrap();
        assert_eq!(report.removed, vec![2]);
        assert_eq!(list_steps(&base), vec![1, 3]);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn universal_tree_pruned_with_native() {
        let base = fabricate("universal", &[5, 6]);
        let u5 = layout::universal_dir(&base, 5);
        std::fs::create_dir_all(&u5).unwrap();
        std::fs::write(u5.join("manifest"), vec![0u8; 50]).unwrap();
        layout::write_latest(&base, 6).unwrap();
        let report = prune(&base, &RetentionPolicy::last(1)).unwrap();
        assert_eq!(report.removed, vec![5]);
        assert!(!u5.exists());
        assert_eq!(report.bytes_reclaimed, 150);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn list_ignores_universal_dirs_and_noise() {
        let base = fabricate("noise", &[7]);
        std::fs::create_dir_all(layout::universal_dir(&base, 7)).unwrap();
        std::fs::create_dir_all(base.join("unrelated")).unwrap();
        assert_eq!(list_steps(&base), vec![7]);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn empty_base_is_fine() {
        let base = std::env::temp_dir().join("ucp_retention_missing");
        std::fs::remove_dir_all(&base).ok();
        assert!(list_steps(&base).is_empty());
        let report = prune(&base, &RetentionPolicy::last(3)).unwrap();
        assert_eq!(report, PruneReport::default());
    }
}
