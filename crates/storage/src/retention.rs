//! Checkpoint retention: bounded-disk pruning of old checkpoint steps.
//!
//! Long training runs checkpoint every few minutes and would otherwise
//! exhaust storage. The policy keeps the most recent `keep_last` steps,
//! plus every `keep_every`-th step as long-term anchors, and never removes
//! the step the `latest` / `latest_universal` markers point to. A step's
//! native and universal trees are pruned together.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::{layout, Result};

/// Steps currently being written (background/overlapped saves). Pruning
/// must never delete a step a writer is still materializing, even though
/// no marker points at it yet.
static IN_FLIGHT: Mutex<Vec<(PathBuf, u64)>> = Mutex::new(Vec::new());

/// RAII registration of a save in progress: while the guard lives,
/// [`prune`] treats `step` under `base` as pinned. Register with the
/// same `base` path the pruner is given — matching is by path equality,
/// not canonicalization.
#[derive(Debug)]
pub struct InFlightGuard {
    base: PathBuf,
    step: u64,
}

/// Mark `step` under `base` as being written until the guard drops.
pub fn begin_save(base: &Path, step: u64) -> InFlightGuard {
    IN_FLIGHT
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((base.to_path_buf(), step));
    InFlightGuard {
        base: base.to_path_buf(),
        step,
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        let mut guard = IN_FLIGHT.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(i) = guard
            .iter()
            .position(|(b, s)| *s == self.step && b == &self.base)
        {
            guard.swap_remove(i);
        }
    }
}

fn is_in_flight(base: &Path, step: u64) -> bool {
    IN_FLIGHT
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .any(|(b, s)| *s == step && b == base)
}

/// What to keep when pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Keep this many of the most recent steps (≥ 1).
    pub keep_last: usize,
    /// Additionally keep steps divisible by this interval (`None`
    /// disables anchors).
    pub keep_every: Option<u64>,
}

impl RetentionPolicy {
    /// Keep only the most recent `n` steps.
    pub fn last(n: usize) -> RetentionPolicy {
        RetentionPolicy {
            keep_last: n.max(1),
            keep_every: None,
        }
    }

    /// Whether `step` survives, given the full sorted step list.
    fn keeps(&self, step: u64, sorted_steps: &[u64]) -> bool {
        let recent_cut = sorted_steps.len().saturating_sub(self.keep_last);
        if sorted_steps[recent_cut..].contains(&step) {
            return true;
        }
        matches!(self.keep_every, Some(every) if every > 0 && step.is_multiple_of(every))
    }
}

/// List the checkpoint steps present under `base` (native step
/// directories), ascending.
pub fn list_steps(base: &Path) -> Vec<u64> {
    let mut steps = Vec::new();
    let Ok(entries) = std::fs::read_dir(base) else {
        return steps;
    };
    for e in entries.flatten() {
        let name = e.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix("global_step")
            .filter(|rest| !rest.contains('_'))
        {
            if let Ok(step) = num.parse() {
                steps.push(step);
            }
        }
    }
    steps.sort_unstable();
    steps
}

/// Outcome of a prune pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Steps removed (native tree, and universal tree if present).
    pub removed: Vec<u64>,
    /// Steps kept.
    pub kept: Vec<u64>,
    /// Bytes reclaimed.
    pub bytes_reclaimed: u64,
    /// Bytes held by quarantined `*.corrupt` trees (left for operator
    /// inspection, never reclaimed by pruning).
    pub bytes_quarantined: u64,
}

/// Apply a retention policy under `base`. The steps referenced by the
/// `latest` and `latest_universal` markers are always kept, as are steps
/// registered in flight via [`begin_save`]. Quarantined `*.corrupt`
/// trees (produced by `ucp fsck`) are never deleted, only measured.
pub fn prune(base: &Path, policy: &RetentionPolicy) -> Result<PruneReport> {
    let steps = list_steps(base);
    let pinned_native = layout::read_latest(base);
    let pinned_universal = layout::read_latest_universal(base);
    let mut report = PruneReport {
        bytes_quarantined: quarantined_bytes(base),
        ..PruneReport::default()
    };
    for &step in &steps {
        let pinned = Some(step) == pinned_native
            || Some(step) == pinned_universal
            || is_in_flight(base, step);
        if pinned || policy.keeps(step, &steps) {
            report.kept.push(step);
            continue;
        }
        for dir in [
            layout::step_dir(base, step),
            layout::universal_dir(base, step),
        ] {
            if dir.is_dir() {
                report.bytes_reclaimed += layout::dir_size_bytes(&dir);
                std::fs::remove_dir_all(&dir)?;
            }
        }
        report.removed.push(step);
    }
    // Removals go on the durable run record; a no-op pass (the common
    // case at every save boundary) stays out of the journal.
    if !report.removed.is_empty() {
        crate::journal::append(
            base,
            &crate::journal::JournalEvent::RetentionPrune {
                removed: report.removed.clone(),
                bytes_reclaimed: report.bytes_reclaimed,
            },
        )?;
    }
    Ok(report)
}

/// Total size of quarantined `*.corrupt` trees under `base`.
pub fn quarantined_bytes(base: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(base) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.ends_with(".corrupt"))
        })
        .map(|e| layout::dir_size_bytes(&e.path()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabricate(name: &str, steps: &[u64]) -> std::path::PathBuf {
        let base = std::env::temp_dir().join(format!("ucp_retention_{name}"));
        std::fs::remove_dir_all(&base).ok();
        for &s in steps {
            let dir = layout::step_dir(&base, s);
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("payload"), vec![0u8; 100]).unwrap();
        }
        base
    }

    #[test]
    fn keeps_most_recent() {
        let base = fabricate("recent", &[10, 20, 30, 40, 50]);
        layout::write_latest(&base, 50).unwrap();
        let report = prune(&base, &RetentionPolicy::last(2)).unwrap();
        assert_eq!(report.removed, vec![10, 20, 30]);
        assert_eq!(report.kept, vec![40, 50]);
        assert_eq!(report.bytes_reclaimed, 300);
        assert_eq!(list_steps(&base), vec![40, 50]);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn anchors_survive() {
        let base = fabricate("anchors", &[100, 150, 200, 250, 300]);
        layout::write_latest(&base, 300).unwrap();
        let policy = RetentionPolicy {
            keep_last: 1,
            keep_every: Some(100),
        };
        let report = prune(&base, &policy).unwrap();
        assert_eq!(report.removed, vec![150, 250]);
        assert_eq!(list_steps(&base), vec![100, 200, 300]);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn latest_markers_are_pinned() {
        let base = fabricate("pinned", &[1, 2, 3]);
        layout::write_latest(&base, 3).unwrap();
        // The universal marker pins an old step even under keep_last(1).
        layout::write_latest_universal(&base, 1).unwrap();
        let report = prune(&base, &RetentionPolicy::last(1)).unwrap();
        assert_eq!(report.removed, vec![2]);
        assert_eq!(list_steps(&base), vec![1, 3]);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn universal_tree_pruned_with_native() {
        let base = fabricate("universal", &[5, 6]);
        let u5 = layout::universal_dir(&base, 5);
        std::fs::create_dir_all(&u5).unwrap();
        std::fs::write(u5.join("manifest"), vec![0u8; 50]).unwrap();
        layout::write_latest(&base, 6).unwrap();
        let report = prune(&base, &RetentionPolicy::last(1)).unwrap();
        assert_eq!(report.removed, vec![5]);
        assert!(!u5.exists());
        assert_eq!(report.bytes_reclaimed, 150);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn list_ignores_universal_dirs_and_noise() {
        let base = fabricate("noise", &[7]);
        std::fs::create_dir_all(layout::universal_dir(&base, 7)).unwrap();
        std::fs::create_dir_all(base.join("unrelated")).unwrap();
        assert_eq!(list_steps(&base), vec![7]);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn in_flight_steps_survive_prune() {
        let base = fabricate("inflight", &[1, 2, 3, 4]);
        layout::write_latest(&base, 4).unwrap();
        // Step 2 is mid-save (a background writer holds the guard): it
        // must survive even though the policy would drop it.
        let guard = begin_save(&base, 2);
        let report = prune(&base, &RetentionPolicy::last(1)).unwrap();
        assert_eq!(report.removed, vec![1, 3]);
        assert!(report.kept.contains(&2));
        drop(guard);
        // Once the save finishes, the next prune may collect it.
        let report = prune(&base, &RetentionPolicy::last(1)).unwrap();
        assert_eq!(report.removed, vec![2]);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn prune_racing_concurrent_writer_never_deletes_partial_step() {
        let base = fabricate("race", &[10, 12]);
        layout::write_latest(&base, 12).unwrap();
        let n_files = 20;
        std::thread::scope(|s| {
            let guard = begin_save(&base, 11);
            let writer_base = base.clone();
            let h = s.spawn(move || {
                let dir = layout::step_dir(&writer_base, 11);
                std::fs::create_dir_all(&dir).unwrap();
                for i in 0..n_files {
                    std::fs::write(dir.join(format!("f{i}")), [0u8; 10]).unwrap();
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            });
            // Step 11 is older than the keep_last window the whole time
            // the writer runs; only the in-flight pin protects it.
            for _ in 0..10 {
                let report = prune(&base, &RetentionPolicy::last(1)).unwrap();
                assert!(!report.removed.contains(&11));
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            h.join().unwrap();
            drop(guard);
        });
        let written = layout::dir_size_bytes(&layout::step_dir(&base, 11));
        assert_eq!(written, 10 * n_files as u64);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn prune_journals_its_removals() {
        let base = fabricate("journal", &[1, 2, 3]);
        layout::write_latest(&base, 3).unwrap();
        // A no-op prune writes nothing.
        prune(&base, &RetentionPolicy::last(3)).unwrap();
        assert!(crate::journal::read(&base).unwrap().records.is_empty());
        let report = prune(&base, &RetentionPolicy::last(1)).unwrap();
        let journal = crate::journal::read(&base).unwrap();
        assert_eq!(journal.records.len(), 1);
        assert_eq!(
            journal.records[0].event,
            crate::journal::JournalEvent::RetentionPrune {
                removed: report.removed.clone(),
                bytes_reclaimed: report.bytes_reclaimed,
            }
        );
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn quarantined_trees_are_measured_not_deleted() {
        let base = fabricate("quarantine", &[1, 2]);
        layout::write_latest(&base, 2).unwrap();
        let q = base.join("global_step9.corrupt");
        std::fs::create_dir_all(&q).unwrap();
        std::fs::write(q.join("payload"), vec![0u8; 77]).unwrap();
        let report = prune(&base, &RetentionPolicy::last(1)).unwrap();
        assert_eq!(report.bytes_quarantined, 77);
        assert!(q.is_dir(), "quarantined trees are for the operator");
        assert_eq!(report.removed, vec![1]);
        assert_eq!(list_steps(&base), vec![2], "corrupt dirs are not steps");
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn empty_base_is_fine() {
        let base = std::env::temp_dir().join("ucp_retention_missing");
        std::fs::remove_dir_all(&base).ok();
        assert!(list_steps(&base).is_empty());
        let report = prune(&base, &RetentionPolicy::last(3)).unwrap();
        assert_eq!(report, PruneReport::default());
    }
}
