//! CRC-32C (Castagnoli) checksums for checkpoint integrity.

/// The Castagnoli polynomial (reflected form).
const POLY: u32 = 0x82F6_3B78;

/// Lazily-built lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *e = crc;
        }
        t
    })
}

/// Streaming CRC-32C hasher.
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Crc32c {
        Crc32c::new()
    }
}

impl Crc32c {
    /// Fresh hasher.
    pub fn new() -> Crc32c {
        Crc32c { state: !0 }
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = (self.state >> 8) ^ t[((self.state ^ u32::from(b)) & 0xFF) as usize];
        }
    }

    /// Final checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot checksum.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(bytes);
    h.finish()
}

/// Per-block checksums: one CRC-32C per `block`-byte chunk of `data` (the
/// final chunk may be short; empty data yields an empty table). This is
/// the checksum granularity that lets a reader verify an arbitrary byte
/// range of a payload without hashing the rest of it.
pub fn crc32c_blocks(data: &[u8], block: usize) -> Vec<u32> {
    data.chunks(block.max(1)).map(crc32c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut h = Crc32c::new();
        h.update(&data[..100]);
        h.update(&data[100..]);
        assert_eq!(h.finish(), crc32c(&data));
    }

    #[test]
    fn block_table_matches_oneshot_per_chunk() {
        let data: Vec<u8> = (0..=255).cycle().take(1000).collect();
        let table = crc32c_blocks(&data, 256);
        assert_eq!(table.len(), 4, "ceil(1000/256) blocks");
        assert_eq!(table[0], crc32c(&data[..256]));
        assert_eq!(table[3], crc32c(&data[768..]), "short final block");
        assert!(crc32c_blocks(&[], 256).is_empty());
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![7u8; 64];
        let base = crc32c(&data);
        data[33] ^= 0x10;
        assert_ne!(crc32c(&data), base);
    }
}
