//! CRC-32C (Castagnoli) checksums for checkpoint integrity.
//!
//! The hot loops here sit on the checkpoint critical path: every payload
//! byte written or verified flows through them, once for the per-block
//! table and once for the whole-payload checksum. The update kernel uses
//! *slicing-by-8* — eight interleaved 256-entry tables consuming 8 input
//! bytes per step — which runs several times faster than the classic
//! byte-at-a-time loop (the CI perf gate asserts ≥ 3×; see
//! `results/BENCH_baseline.json`). The byte-wise loop survives as a
//! `#[cfg(test)]` reference oracle that the property tests compare
//! against.

/// The Castagnoli polynomial (reflected form).
const POLY: u32 = 0x82F6_3B78;

/// Input bytes consumed per slicing step.
const SLICE: usize = 8;

/// Lazily-built slicing-by-8 lookup tables. `TABLES[0]` is the classic
/// byte-at-a-time table; `TABLES[k][b]` is the CRC of byte `b` followed by
/// `k` zero bytes, which lets eight table lookups advance the state over
/// eight input bytes at once.
fn tables() -> &'static [[u32; 256]; SLICE] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; SLICE]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; SLICE];
        for (i, e) in t[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *e = crc;
        }
        for k in 1..SLICE {
            for b in 0..256 {
                let prev = t[k - 1][b];
                t[k][b] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Advance `state` over `bytes` with the slicing-by-8 kernel. The state is
/// the *internal* (pre-inversion) CRC register, so updates compose across
/// arbitrary split points.
#[inline]
fn update_state(mut state: u32, bytes: &[u8]) -> u32 {
    let t = tables();
    let mut chunks = bytes.chunks_exact(SLICE);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ state;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        state = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ t[0][((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state
}

/// Streaming CRC-32C hasher.
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Crc32c {
        Crc32c::new()
    }
}

impl Crc32c {
    /// Fresh hasher.
    pub fn new() -> Crc32c {
        Crc32c { state: !0 }
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        self.state = update_state(self.state, bytes);
    }

    /// Final checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot checksum.
pub fn crc32c(bytes: &[u8]) -> u32 {
    !update_state(!0, bytes)
}

/// Per-block checksums: one CRC-32C per `block`-byte chunk of `data` (the
/// final chunk may be short; empty data yields an empty table). This is
/// the checksum granularity that lets a reader verify an arbitrary byte
/// range of a payload without hashing the rest of it.
pub fn crc32c_blocks(data: &[u8], block: usize) -> Vec<u32> {
    data.chunks(block.max(1)).map(crc32c).collect()
}

/// Single-pass combined hasher for the v2 section layout: feeds each byte
/// once and yields both the per-`block` CRC table and the independent
/// whole-payload CRC. The container codec streams payloads through this in
/// fixed-size chunks, so neither writing nor verifying a section ever
/// materializes the payload just to hash it twice.
#[derive(Debug)]
pub struct BlockCrc {
    block: usize,
    fill: usize,
    block_hasher: Crc32c,
    whole_hasher: Crc32c,
    table: Vec<u32>,
}

impl BlockCrc {
    /// Hasher producing a table at `block`-byte granularity.
    pub fn new(block: usize) -> BlockCrc {
        BlockCrc {
            block: block.max(1),
            fill: 0,
            block_hasher: Crc32c::new(),
            whole_hasher: Crc32c::new(),
            table: Vec::new(),
        }
    }

    /// Absorb payload bytes (any chunking; block boundaries are tracked
    /// internally).
    pub fn update(&mut self, bytes: &[u8]) {
        self.whole_hasher.update(bytes);
        let mut rest = bytes;
        while !rest.is_empty() {
            let take = (self.block - self.fill).min(rest.len());
            self.block_hasher.update(&rest[..take]);
            self.fill += take;
            if self.fill == self.block {
                self.table.push(self.block_hasher.finish());
                self.block_hasher = Crc32c::new();
                self.fill = 0;
            }
            rest = &rest[take..];
        }
    }

    /// Finish: the per-block CRC table (final short block included) and
    /// the whole-payload CRC.
    pub fn finish(mut self) -> (Vec<u32>, u32) {
        if self.fill > 0 {
            self.table.push(self.block_hasher.finish());
        }
        (self.table, self.whole_hasher.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-slicing byte-at-a-time loop, kept as the reference oracle
    /// the optimized kernel is validated against.
    fn crc32c_bytewise(bytes: &[u8]) -> u32 {
        let t = &tables()[0];
        let mut state = !0u32;
        for &b in bytes {
            state = (state >> 8) ^ t[((state ^ u32::from(b)) & 0xFF) as usize];
        }
        !state
    }

    #[test]
    fn known_vectors() {
        // RFC 3720 test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        // The iSCSI "32 bytes incrementing" and "32 bytes decrementing"
        // vectors, also from RFC 3720 §B.4.
        let inc: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&inc), 0x46DD_794E);
        let dec: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(crc32c(&dec), 0x113F_DB5C);
    }

    #[test]
    fn known_vectors_match_bytewise_oracle() {
        for data in [
            &b""[..],
            &b"123456789"[..],
            &[0u8; 32][..],
            &[0xFFu8; 32][..],
        ] {
            assert_eq!(crc32c(data), crc32c_bytewise(data));
        }
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut h = Crc32c::new();
        h.update(&data[..100]);
        h.update(&data[100..]);
        assert_eq!(h.finish(), crc32c(&data));
    }

    #[test]
    fn unaligned_lengths_and_offsets_agree_with_oracle() {
        // Exercise every remainder length and a misaligned start, so both
        // the 8-byte kernel and the byte-wise tail are covered.
        let data: Vec<u8> = (0..64u32).map(|i| (i * 7 + 13) as u8).collect();
        for start in 0..9 {
            for end in start..data.len() {
                let s = &data[start..end];
                assert_eq!(crc32c(s), crc32c_bytewise(s), "slice {start}..{end}");
            }
        }
    }

    #[test]
    fn block_table_matches_oneshot_per_chunk() {
        let data: Vec<u8> = (0..=255).cycle().take(1000).collect();
        let table = crc32c_blocks(&data, 256);
        assert_eq!(table.len(), 4, "ceil(1000/256) blocks");
        assert_eq!(table[0], crc32c(&data[..256]));
        assert_eq!(table[3], crc32c(&data[768..]), "short final block");
        assert!(crc32c_blocks(&[], 256).is_empty());
    }

    #[test]
    fn block_crc_single_pass_matches_two_pass() {
        let data: Vec<u8> = (0..=255).cycle().take(1000).collect();
        for chunking in [1usize, 7, 64, 256, 300, 1000] {
            let mut h = BlockCrc::new(256);
            for chunk in data.chunks(chunking) {
                h.update(chunk);
            }
            let (table, whole) = h.finish();
            assert_eq!(table, crc32c_blocks(&data, 256), "chunking {chunking}");
            assert_eq!(whole, crc32c(&data), "chunking {chunking}");
        }
        let (table, whole) = BlockCrc::new(256).finish();
        assert!(table.is_empty());
        assert_eq!(whole, 0);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![7u8; 64];
        let base = crc32c(&data);
        data[33] ^= 0x10;
        assert_ne!(crc32c(&data), base);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Slicing-by-8 one-shot, the streaming hasher over arbitrary
            /// `update()` split points, and the byte-wise reference oracle
            /// all agree on arbitrary inputs.
            #[test]
            fn prop_sliced_streaming_and_bytewise_agree(
                data in prop::collection::vec((0u16..256).prop_map(|v| v as u8), 0..2048),
                splits in prop::collection::vec(0.0f64..1.0, 0..6),
            ) {
                let oracle = crc32c_bytewise(&data);
                prop_assert_eq!(crc32c(&data), oracle);

                let mut cuts: Vec<usize> = splits
                    .iter()
                    .map(|f| (f * data.len() as f64) as usize)
                    .collect();
                cuts.push(0);
                cuts.push(data.len());
                cuts.sort_unstable();
                cuts.dedup();
                let mut h = Crc32c::new();
                for w in cuts.windows(2) {
                    h.update(&data[w[0]..w[1]]);
                }
                prop_assert_eq!(h.finish(), oracle);
            }

            /// The single-pass block hasher matches the per-chunk oracle
            /// for any block size and any update chunking.
            #[test]
            fn prop_block_crc_matches_oracle(
                data in prop::collection::vec((0u16..256).prop_map(|v| v as u8), 0..1500),
                block in 1usize..512,
                chunking in 1usize..300,
            ) {
                let mut h = BlockCrc::new(block);
                for chunk in data.chunks(chunking) {
                    h.update(chunk);
                }
                let (table, whole) = h.finish();
                let want: Vec<u32> = data.chunks(block).map(crc32c_bytewise).collect();
                prop_assert_eq!(table, want);
                prop_assert_eq!(whole, crc32c_bytewise(&data));
            }
        }
    }
}
