//! Storage-device simulation: bandwidth-limited sequential I/O.
//!
//! The paper's `Load` operation uses DeepNVMe to reach near-peak sequential
//! NVMe bandwidth. On a development machine the page cache hides most I/O
//! cost, so the efficiency benches (Fig. 11/12) optionally run through a
//! [`Device`] that meters bytes and sleeps to emulate a fixed-bandwidth
//! device. With no bandwidth set the device is a transparent pass-through.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// A simulated storage device with optional read/write bandwidth caps
/// (bytes per second).
#[derive(Debug, Clone, Copy, Default)]
pub struct Device {
    /// Sequential read bandwidth in bytes/s (`None` = unlimited).
    pub read_bps: Option<u64>,
    /// Sequential write bandwidth in bytes/s (`None` = unlimited).
    pub write_bps: Option<u64>,
    /// Concurrent range-fetch workers the load path may run against this
    /// device (`None` = pick from the bandwidth profile; see
    /// [`Device::fetch_pool`]).
    pub fetch_workers: Option<usize>,
}

impl Device {
    /// Unlimited pass-through device.
    pub fn unlimited() -> Device {
        Device::default()
    }

    /// Device with symmetric bandwidth in MiB/s.
    pub fn with_mibps(mibps: u64) -> Device {
        let bps = mibps * 1024 * 1024;
        Device {
            read_bps: Some(bps),
            write_bps: Some(bps),
            ..Device::default()
        }
    }

    /// This device with an explicit range-fetch pool size (clamped to at
    /// least 1).
    pub fn with_fetch_workers(mut self, workers: usize) -> Device {
        self.fetch_workers = Some(workers.max(1));
        self
    }

    /// Concurrent range-fetch workers the load path should use. An
    /// explicit [`Device::fetch_workers`] always wins. Otherwise the
    /// bandwidth profile decides: a throttled device gets 1 (each worker
    /// owns an independent throttle clock, so parallel workers would
    /// multiply the simulated bandwidth instead of sharing it), an
    /// unlimited device gets a small pool that overlaps syscall latency
    /// with CRC verification and decode.
    pub fn fetch_pool(&self) -> usize {
        match self.fetch_workers {
            Some(n) => n.max(1),
            None if self.read_bps.is_some() => 1,
            None => 4,
        }
    }

    /// Wrap a writer with this device's write throttle.
    pub fn writer<W: Write>(&self, inner: W) -> Throttled<W> {
        Throttled::new(inner, self.write_bps)
    }

    /// Wrap a reader with this device's read throttle.
    pub fn reader<R: Read>(&self, inner: R) -> Throttled<R> {
        Throttled::new(inner, self.read_bps)
    }
}

/// A bandwidth-throttled stream wrapper.
///
/// Accounts bytes against an ideal schedule from the first operation and
/// sleeps whenever actual progress runs ahead of the simulated device.
#[derive(Debug)]
pub struct Throttled<T> {
    inner: T,
    bps: Option<u64>,
    started: Option<Instant>,
    bytes: u64,
}

impl<T> Throttled<T> {
    fn new(inner: T, bps: Option<u64>) -> Throttled<T> {
        Throttled {
            inner,
            bps,
            started: None,
            bytes: 0,
        }
    }

    /// Unwrap the inner stream.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Bytes transferred so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes
    }

    /// Account `n` transferred bytes against the bandwidth schedule,
    /// sleeping if ahead of it. Returns the time slept so telemetry can
    /// separate simulated device time from actual I/O time.
    fn account(&mut self, n: usize) -> Duration {
        let Some(bps) = self.bps else {
            return Duration::ZERO;
        };
        let start = *self.started.get_or_insert_with(Instant::now);
        self.bytes += n as u64;
        let ideal = Duration::from_secs_f64(self.bytes as f64 / bps as f64);
        let elapsed = start.elapsed();
        if ideal > elapsed {
            let pause = ideal - elapsed;
            std::thread::sleep(pause);
            pause
        } else {
            Duration::ZERO
        }
    }
}

fn observe_op(op_hist: &'static str, bytes_ctr: &'static str, started: Option<Instant>, n: usize) {
    if let Some(t) = started {
        ucp_telemetry::observe(op_hist, t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        ucp_telemetry::count(bytes_ctr, n as u64);
    }
}

fn observe_sleep(slept: Duration) {
    if !slept.is_zero() {
        ucp_telemetry::observe(
            "io/throttle_sleep_ns",
            slept.as_nanos().min(u64::MAX as u128) as u64,
        );
    }
}

impl<W: Write> Write for Throttled<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let t = ucp_telemetry::enabled().then(Instant::now);
        let n = self.inner.write(buf)?;
        observe_op("io/write_op_ns", "io/bytes_written", t, n);
        observe_sleep(self.account(n));
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl<R: Read> Read for Throttled<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let t = ucp_telemetry::enabled().then(Instant::now);
        let n = self.inner.read(buf)?;
        observe_op("io/read_op_ns", "io/bytes_read", t, n);
        observe_sleep(self.account(n));
        Ok(n)
    }
}

/// Seeking repositions the stream without transferring data, so it passes
/// through unmetered — only bytes actually read or written count against
/// the simulated bandwidth. This is what lets range reads seek across the
/// parts of a section they skip.
impl<T: std::io::Seek> std::io::Seek for Throttled<T> {
    fn seek(&mut self, pos: std::io::SeekFrom) -> std::io::Result<u64> {
        self.inner.seek(pos)
    }
}

/// Deterministic fault injection for crash-consistency testing.
///
/// The commit protocol in [`crate::commit`] registers a *kill point* at
/// every crash-relevant operation: each buffered data write, the data
/// fsync, the rename into place, and the parent-directory fsync. A test
/// (or an operator, via the `UCP_FAULTS` environment variable) arms a
/// [`FaultPlan`] naming which kill point should fail; when that point is
/// reached the operation returns an injected I/O error, leaving the
/// on-disk state exactly as a crash at that instant would — torn `.tmp`
/// files, missing renames, unsynced directories. The crash-replay
/// harness sweeps the kill index across a save/convert and asserts that
/// resume always lands on a complete checkpoint.
///
/// `UCP_FAULTS` syntax: `kill_after=N[,truncate=K]` — fail the `N`th kill
/// point (0-based); if the fatal point is a data write, let `K` bytes of
/// that write land first (a torn write).
pub mod fault {
    use std::io::Write;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// What to break, and how.
    #[derive(Debug, Clone, Default)]
    pub struct FaultPlan {
        /// Fail the `n`th kill point reached (0-based). `None` never
        /// fires (counting still happens, which is how the harness
        /// measures a run's kill-point count).
        pub kill_after: Option<u64>,
        /// When the fatal point is a data write, how many bytes of that
        /// write land before the failure (a torn write). `None` → zero.
        pub truncate_to: Option<u64>,
        /// Only operations on paths under this prefix count as kill
        /// points. Faults are process-global (checkpoint writers fan out
        /// across worker threads), so tests scope their plan to their
        /// own checkpoint directory to leave unrelated I/O untouched.
        pub scope: Option<PathBuf>,
        /// When the fatal point fires, surface a genuine-looking disk-full
        /// error (ENOSPC) instead of an injected *crash*. A crash kills
        /// the process — nothing gets to clean up, so `.tmp` remnants are
        /// correct. A disk-full error is survived by the process, so
        /// error-path cleanup (e.g. unlinking the staging file) must run;
        /// this knob lets tests exercise exactly that path.
        pub full_disk: bool,
    }

    impl FaultPlan {
        /// Plan that counts kill points under `scope` without ever firing.
        pub fn count_only(scope: &Path) -> FaultPlan {
            FaultPlan {
                scope: Some(scope.to_path_buf()),
                ..FaultPlan::default()
            }
        }

        /// Plan that kills the `n`th kill point under `scope`.
        pub fn kill_at(n: u64, scope: &Path) -> FaultPlan {
            FaultPlan {
                kill_after: Some(n),
                scope: Some(scope.to_path_buf()),
                ..FaultPlan::default()
            }
        }
    }

    static HITS: AtomicU64 = AtomicU64::new(0);
    static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
    static ARM_LOCK: Mutex<()> = Mutex::new(());
    static ENV: OnceLock<Option<FaultPlan>> = OnceLock::new();

    fn unpoison<'a, T>(
        r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
    ) -> MutexGuard<'a, T> {
        r.unwrap_or_else(PoisonError::into_inner)
    }

    fn env_plan() -> Option<FaultPlan> {
        ENV.get_or_init(|| {
            let spec = std::env::var("UCP_FAULTS").ok()?;
            let mut plan = FaultPlan::default();
            for part in spec.split(',') {
                let (key, value) = part.split_once('=')?;
                match key.trim() {
                    "kill_after" => plan.kill_after = value.trim().parse().ok(),
                    "truncate" => plan.truncate_to = value.trim().parse().ok(),
                    "scope" => plan.scope = Some(PathBuf::from(value.trim())),
                    "full_disk" => plan.full_disk = matches!(value.trim(), "1" | "true"),
                    _ => return None,
                }
            }
            plan.kill_after?;
            Some(plan)
        })
        .clone()
    }

    /// An armed fault plan. Holds a process-wide arming lock so
    /// concurrent tests cannot clobber each other's plan; dropping it
    /// disarms. Read the kill-point count with [`Armed::hits`] before
    /// dropping.
    pub struct Armed {
        _lock: MutexGuard<'static, ()>,
    }

    impl Armed {
        /// Kill points reached since arming.
        pub fn hits(&self) -> u64 {
            HITS.load(Ordering::SeqCst)
        }
    }

    impl Drop for Armed {
        fn drop(&mut self) {
            *unpoison(PLAN.lock()) = None;
        }
    }

    /// Arm a fault plan (resets the kill-point counter). The plan stays
    /// active — across all threads — until the returned guard drops.
    #[must_use = "the plan disarms when the guard drops"]
    pub fn arm(plan: FaultPlan) -> Armed {
        let lock = unpoison(ARM_LOCK.lock());
        HITS.store(0, Ordering::SeqCst);
        *unpoison(PLAN.lock()) = Some(plan);
        Armed { _lock: lock }
    }

    /// The error every injected crash surfaces as.
    pub fn injected_crash(point: &str) -> std::io::Error {
        std::io::Error::other(format!("injected crash at kill point: {point}"))
    }

    /// Whether `e` is an injected crash (vs a genuine I/O failure).
    /// Injected *disk-full* errors ([`FaultPlan::full_disk`]) are
    /// deliberately not "injected" in this sense: they model a survivable
    /// failure, so error-path cleanup must treat them as real.
    pub fn is_injected(e: &std::io::Error) -> bool {
        e.to_string().contains("injected crash at kill point")
    }

    /// The error a [`FaultPlan::full_disk`] strike surfaces as: shaped
    /// like a real ENOSPC so production error paths cannot tell it apart.
    pub fn disk_full(point: &str) -> std::io::Error {
        std::io::Error::other(format!("no space left on device (at {point})"))
    }

    fn strike_error(plan: &FaultPlan, point: &str) -> std::io::Error {
        if plan.full_disk {
            disk_full(point)
        } else {
            injected_crash(point)
        }
    }

    /// Count one kill point for `path`; `Some` if the plan says die here.
    /// With no in-process plan armed, the `UCP_FAULTS` env plan applies.
    fn strike(path: &Path) -> Option<FaultPlan> {
        let guard = unpoison(PLAN.lock());
        let plan = match &*guard {
            Some(p) => p.clone(),
            None => env_plan()?,
        };
        drop(guard);
        if let Some(scope) = &plan.scope {
            if !path.starts_with(scope) {
                return None;
            }
        }
        let n = HITS.fetch_add(1, Ordering::SeqCst);
        (plan.kill_after == Some(n)).then_some(plan)
    }

    /// Register a non-write kill point (fsync, rename, dir sync) on `path`.
    pub fn gate(point: &str, path: &Path) -> std::io::Result<()> {
        match strike(path) {
            Some(plan) => Err(strike_error(&plan, point)),
            None => Ok(()),
        }
    }

    /// Writer wrapper registering one kill point per `write` call; a
    /// fatal strike lands `truncate_to` bytes (a torn write) and fails.
    pub struct FaultWriter<W: Write> {
        inner: W,
        path: PathBuf,
        dead: bool,
    }

    impl<W: Write> FaultWriter<W> {
        /// Wrap `inner`, attributing its writes to `path` for fault scoping.
        pub fn new(inner: W, path: &Path) -> FaultWriter<W> {
            FaultWriter {
                inner,
                path: path.to_path_buf(),
                dead: false,
            }
        }
    }

    impl<W: Write> Write for FaultWriter<W> {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.dead {
                return Err(injected_crash("write after injected crash"));
            }
            match strike(&self.path) {
                None => self.inner.write(buf),
                Some(plan) => {
                    self.dead = true;
                    let torn = (plan.truncate_to.unwrap_or(0) as usize).min(buf.len());
                    if torn > 0 {
                        let _ = self.inner.write_all(&buf[..torn]);
                    }
                    // Push whatever landed through any buffering so the
                    // on-disk state matches a crash mid-write.
                    let _ = self.inner.flush();
                    Err(strike_error(&plan, "data write"))
                }
            }
        }

        fn flush(&mut self) -> std::io::Result<()> {
            if self.dead {
                return Err(injected_crash("flush after injected crash"));
            }
            self.inner.flush()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_transparent() {
        let dev = Device::unlimited();
        let mut out = Vec::new();
        {
            let mut w = dev.writer(&mut out);
            w.write_all(b"hello").unwrap();
            w.flush().unwrap();
        }
        assert_eq!(out, b"hello");
        let mut r = dev.reader(&out[..]);
        let mut buf = String::new();
        r.read_to_string(&mut buf).unwrap();
        assert_eq!(buf, "hello");
    }

    #[test]
    fn throttled_write_takes_proportional_time() {
        // 1 MiB/s device, 64 KiB payload → ≥ ~60 ms.
        let dev = Device::with_mibps(1);
        let payload = vec![0u8; 64 * 1024];
        let start = Instant::now();
        let mut w = dev.writer(std::io::sink());
        w.write_all(&payload).unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(50),
            "only {elapsed:?} for 64 KiB at 1 MiB/s"
        );
        assert_eq!(w.bytes_transferred(), 64 * 1024);
    }

    #[test]
    fn throttle_sleep_is_recorded_when_telemetry_enabled() {
        let rec = ucp_telemetry::global();
        rec.set_enabled(true);
        let dev = Device::with_mibps(1);
        let payload = vec![0u8; 64 * 1024];
        let mut w = dev.writer(std::io::sink());
        w.write_all(&payload).unwrap();
        rec.set_enabled(false);
        let report = rec.report("io");
        let sleep = report
            .hist("io/throttle_sleep_ns")
            .expect("sleep histogram");
        assert!(sleep.count >= 1, "no throttle sleep recorded");
        assert!(report.counter("io/bytes_written").unwrap_or(0) >= 64 * 1024);
        assert!(report.hist("io/write_op_ns").is_some(), "op histogram");
        // 64 KiB at 1 MiB/s is ~62 ms of simulated device time; the sink
        // write itself is microseconds, so nearly all of it is sleep.
        // (Absolute bound: other tests sharing the global recorder can
        // add op time but cannot shrink this test's recorded sleep.)
        assert!(
            sleep.sum >= 40_000_000,
            "expected >= 40ms of throttle sleep, got {} ns",
            sleep.sum
        );
    }

    #[test]
    fn read_throttle_counts_bytes() {
        let dev = Device {
            read_bps: Some(u64::MAX),
            write_bps: None,
            ..Device::default()
        };
        let data = vec![1u8; 1000];
        let mut r = dev.reader(&data[..]);
        let mut sink = Vec::new();
        r.read_to_end(&mut sink).unwrap();
        assert_eq!(r.bytes_transferred(), 1000);
    }

    #[test]
    fn fetch_pool_follows_profile() {
        // Unlimited → small default pool; throttled → serial (workers
        // would each get their own throttle clock); explicit wins always.
        assert_eq!(Device::unlimited().fetch_pool(), 4);
        assert_eq!(Device::with_mibps(64).fetch_pool(), 1);
        assert_eq!(Device::with_mibps(64).with_fetch_workers(8).fetch_pool(), 8);
        assert_eq!(Device::unlimited().with_fetch_workers(0).fetch_pool(), 1);
    }
}
