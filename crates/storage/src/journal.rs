//! The run journal: a crash-consistent, append-only record of checkpoint
//! lifecycle events.
//!
//! Every per-command artifact (`--metrics-out`, traces, chaos reports) is
//! a post-hoc dump; the journal is the durable *run-scoped* record. It
//! lives as `journal.jsonl` directly under the checkpoint root — one JSON
//! object per line — and is written through [`crate::commit::append_line`],
//! so a crash can only ever lose or tear the final line. Readers (and
//! `ucp fsck`) accept exactly that: [`read`] returns the parseable prefix
//! plus a flag for a torn tail, and any complete line that fails to parse
//! is counted as corruption rather than silently skipped.
//!
//! Events are typed ([`JournalEvent`]) but the format is forward-tolerant:
//! a record whose `kind` this build doesn't know parses as
//! [`JournalEvent::Other`], so newer writers never brick older readers.

use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use ucp_telemetry::Json;

use crate::{commit, Result};

/// File name of the journal under the checkpoint root. The name carries
/// no `global_step` prefix, so step scanners never mistake it for a
/// checkpoint directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// Path of the journal under checkpoint root `base`.
pub fn journal_path(base: &Path) -> PathBuf {
    base.join(JOURNAL_FILE)
}

/// A typed checkpoint-lifecycle event.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A checkpoint save began (snapshot taken / files being written).
    SaveStarted {
        /// Step being saved.
        step: u64,
    },
    /// The step's native files are durable and `latest` points at it.
    NativePersisted {
        /// Step whose native checkpoint completed.
        step: u64,
    },
    /// The step's universal checkpoint is durable and `latest_universal`
    /// points at it.
    UniversalPublished {
        /// Step whose universal checkpoint was published.
        step: u64,
    },
    /// A failure was detected and recovery began.
    RecoveryBegin {
        /// Rank whose failure triggered recovery.
        rank: usize,
        /// Step the run had reached when it failed.
        step: u64,
        /// Attributed cause (panic payload, watchdog verdict, ...).
        cause: String,
    },
    /// Recovery finished and the run resumed.
    RecoveryEnd {
        /// Step the run resumed from (`None` = restarted fresh).
        resume_step: Option<u64>,
        /// Iterations of work lost to the failure.
        lost_steps: u64,
        /// Wall-clock milliseconds from failure detection to resume.
        recovery_ms: u64,
        /// Parallel strategy label resumed under (may differ from the
        /// failed segment's when the supervisor descended its ladder).
        parallel: String,
        /// Recovery tier that served the resume state: `"peer"` when the
        /// hot in-memory tier had a complete copy, `"disk"` otherwise.
        source: String,
    },
    /// A save step's shards were replicated into peer memory (hot tier).
    HotReplicated {
        /// Step whose shards were replicated.
        step: u64,
        /// Ranks that completed their replication round.
        ranks: u64,
        /// Replica payload bytes pushed by rank 0 (one rank's share).
        bytes: u64,
    },
    /// Peer-memory recovery was attempted after a failure.
    HotRecoveryBegin {
        /// Step the run had reached when it failed.
        step: u64,
    },
    /// Peer-memory recovery finished (served from RAM or fell back).
    HotRecoveryEnd {
        /// Surviving ranks whose replica banks served shards (empty on
        /// fallback).
        served_ranks: Vec<usize>,
        /// `true` when the hot copy was incomplete and recovery fell back
        /// to the latest committed disk checkpoint.
        fallback: bool,
    },
    /// A collective watchdog attributed a hang to a rank.
    Watchdog {
        /// Rank the watchdog blamed.
        rank: usize,
        /// Step at which the hang was detected.
        step: u64,
        /// Watchdog verdict text.
        detail: String,
    },
    /// Retention pruning removed old checkpoints.
    RetentionPrune {
        /// Steps whose directories were removed.
        removed: Vec<u64>,
        /// Bytes reclaimed by the prune.
        bytes_reclaimed: u64,
    },
    /// An `ucp fsck` pass finished.
    Fsck {
        /// Problems found (0 = clean).
        problems: u64,
        /// Corrupt files quarantined.
        quarantined: u64,
        /// Whether repair mode was on.
        repair: bool,
    },
    /// A record written by a newer build; preserved but uninterpreted.
    Other {
        /// The unrecognized `kind` tag.
        kind: String,
    },
}

impl JournalEvent {
    /// The record's `kind` tag.
    pub fn kind(&self) -> &str {
        match self {
            JournalEvent::SaveStarted { .. } => "save_started",
            JournalEvent::NativePersisted { .. } => "native_persisted",
            JournalEvent::UniversalPublished { .. } => "universal_published",
            JournalEvent::RecoveryBegin { .. } => "recovery_begin",
            JournalEvent::RecoveryEnd { .. } => "recovery_end",
            JournalEvent::HotReplicated { .. } => "hot_replicated",
            JournalEvent::HotRecoveryBegin { .. } => "hot_recovery_begin",
            JournalEvent::HotRecoveryEnd { .. } => "hot_recovery_end",
            JournalEvent::Watchdog { .. } => "watchdog",
            JournalEvent::RetentionPrune { .. } => "retention_prune",
            JournalEvent::Fsck { .. } => "fsck",
            JournalEvent::Other { kind } => kind,
        }
    }

    fn to_json(&self, t_ms: u64) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("kind", Json::Str(self.kind().to_string())),
            ("t_ms", Json::Num(t_ms as f64)),
        ];
        match self {
            JournalEvent::SaveStarted { step }
            | JournalEvent::NativePersisted { step }
            | JournalEvent::UniversalPublished { step } => {
                fields.push(("step", Json::Num(*step as f64)));
            }
            JournalEvent::RecoveryBegin { rank, step, cause } => {
                fields.push(("rank", Json::Num(*rank as f64)));
                fields.push(("step", Json::Num(*step as f64)));
                fields.push(("cause", Json::Str(cause.clone())));
            }
            JournalEvent::RecoveryEnd {
                resume_step,
                lost_steps,
                recovery_ms,
                parallel,
                source,
            } => {
                fields.push((
                    "resume_step",
                    match resume_step {
                        Some(s) => Json::Num(*s as f64),
                        None => Json::Null,
                    },
                ));
                fields.push(("lost_steps", Json::Num(*lost_steps as f64)));
                fields.push(("recovery_ms", Json::Num(*recovery_ms as f64)));
                fields.push(("parallel", Json::Str(parallel.clone())));
                fields.push(("source", Json::Str(source.clone())));
            }
            JournalEvent::HotReplicated { step, ranks, bytes } => {
                fields.push(("step", Json::Num(*step as f64)));
                fields.push(("ranks", Json::Num(*ranks as f64)));
                fields.push(("bytes", Json::Num(*bytes as f64)));
            }
            JournalEvent::HotRecoveryBegin { step } => {
                fields.push(("step", Json::Num(*step as f64)));
            }
            JournalEvent::HotRecoveryEnd {
                served_ranks,
                fallback,
            } => {
                fields.push((
                    "served_ranks",
                    Json::Arr(served_ranks.iter().map(|r| Json::Num(*r as f64)).collect()),
                ));
                fields.push(("fallback", Json::Bool(*fallback)));
            }
            JournalEvent::Watchdog { rank, step, detail } => {
                fields.push(("rank", Json::Num(*rank as f64)));
                fields.push(("step", Json::Num(*step as f64)));
                fields.push(("detail", Json::Str(detail.clone())));
            }
            JournalEvent::RetentionPrune {
                removed,
                bytes_reclaimed,
            } => {
                fields.push((
                    "removed",
                    Json::Arr(removed.iter().map(|s| Json::Num(*s as f64)).collect()),
                ));
                fields.push(("bytes_reclaimed", Json::Num(*bytes_reclaimed as f64)));
            }
            JournalEvent::Fsck {
                problems,
                quarantined,
                repair,
            } => {
                fields.push(("problems", Json::Num(*problems as f64)));
                fields.push(("quarantined", Json::Num(*quarantined as f64)));
                fields.push(("repair", Json::Bool(*repair)));
            }
            JournalEvent::Other { .. } => {}
        }
        Json::obj(fields)
    }

    fn from_json(doc: &Json) -> Option<JournalEvent> {
        let kind = doc.get("kind")?.as_str()?;
        let step = || doc.get("step").and_then(Json::as_u64);
        let rank = || doc.get("rank").and_then(Json::as_u64).map(|r| r as usize);
        let text = |k: &str| doc.get(k).and_then(Json::as_str).map(str::to_string);
        Some(match kind {
            "save_started" => JournalEvent::SaveStarted { step: step()? },
            "native_persisted" => JournalEvent::NativePersisted { step: step()? },
            "universal_published" => JournalEvent::UniversalPublished { step: step()? },
            "recovery_begin" => JournalEvent::RecoveryBegin {
                rank: rank()?,
                step: step()?,
                cause: text("cause")?,
            },
            "recovery_end" => JournalEvent::RecoveryEnd {
                resume_step: doc.get("resume_step").and_then(Json::as_u64),
                lost_steps: doc.get("lost_steps").and_then(Json::as_u64)?,
                recovery_ms: doc.get("recovery_ms").and_then(Json::as_u64)?,
                parallel: text("parallel")?,
                // Records written before the hot tier existed carry no
                // source; every recovery then was served from disk.
                source: text("source").unwrap_or_else(|| "disk".into()),
            },
            "hot_replicated" => JournalEvent::HotReplicated {
                step: step()?,
                ranks: doc.get("ranks").and_then(Json::as_u64)?,
                bytes: doc.get("bytes").and_then(Json::as_u64)?,
            },
            "hot_recovery_begin" => JournalEvent::HotRecoveryBegin { step: step()? },
            "hot_recovery_end" => JournalEvent::HotRecoveryEnd {
                served_ranks: doc
                    .get("served_ranks")
                    .and_then(Json::as_arr)?
                    .iter()
                    .filter_map(Json::as_u64)
                    .map(|r| r as usize)
                    .collect(),
                fallback: matches!(doc.get("fallback"), Some(Json::Bool(true))),
            },
            "watchdog" => JournalEvent::Watchdog {
                rank: rank()?,
                step: step()?,
                detail: text("detail")?,
            },
            "retention_prune" => JournalEvent::RetentionPrune {
                removed: doc
                    .get("removed")
                    .and_then(Json::as_arr)?
                    .iter()
                    .filter_map(Json::as_u64)
                    .collect(),
                bytes_reclaimed: doc.get("bytes_reclaimed").and_then(Json::as_u64)?,
            },
            "fsck" => JournalEvent::Fsck {
                problems: doc.get("problems").and_then(Json::as_u64)?,
                quarantined: doc.get("quarantined").and_then(Json::as_u64)?,
                repair: matches!(doc.get("repair"), Some(Json::Bool(true))),
            },
            other => JournalEvent::Other {
                kind: other.to_string(),
            },
        })
    }
}

/// One journal line: an event plus its wall-clock timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Milliseconds since the Unix epoch at append time.
    pub t_ms: u64,
    /// The event.
    pub event: JournalEvent,
}

/// The readable state of a journal file.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// All records from complete, parseable lines, in append order.
    pub records: Vec<JournalRecord>,
    /// Whether the file ends in an incomplete line (a crash mid-append).
    pub torn_tail: bool,
    /// Complete lines that failed to parse — corruption, not crash debris.
    pub malformed: usize,
    /// Byte length of the newline-terminated prefix (what a repair keeps).
    pub valid_bytes: u64,
}

impl Journal {
    /// Records of one event kind, in order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a JournalRecord> {
        self.records.iter().filter(move |r| r.event.kind() == kind)
    }

    /// The newest step with a given marker-ish event kind, if any.
    pub fn last_step(&self, kind: &str) -> Option<u64> {
        self.of_kind(kind)
            .filter_map(|r| match &r.event {
                JournalEvent::SaveStarted { step }
                | JournalEvent::NativePersisted { step }
                | JournalEvent::UniversalPublished { step } => Some(*step),
                _ => None,
            })
            .last()
    }
}

/// Append `event` to the journal under `base`, stamped with the current
/// wall clock. Crash-consistent per [`crate::commit::append_line`].
pub fn append(base: &Path, event: &JournalEvent) -> Result<()> {
    let t_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    append_at(base, t_ms, event)
}

/// [`append`] with an explicit timestamp (tests, replays).
pub fn append_at(base: &Path, t_ms: u64, event: &JournalEvent) -> Result<()> {
    commit::append_line(&journal_path(base), &event.to_json(t_ms).compact())
}

/// Read the journal under `base`. A missing file is an empty journal; a
/// torn final line (crash mid-append) is tolerated and flagged, never an
/// error. Only I/O failures propagate.
pub fn read(base: &Path) -> Result<Journal> {
    read_path(&journal_path(base))
}

/// [`read`] against an explicit journal file path.
pub fn read_path(path: &Path) -> Result<Journal> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Journal::default()),
        Err(e) => return Err(e.into()),
    };
    let mut journal = Journal::default();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            // No newline: the append died mid-write. Everything before
            // this line is intact — the parseable prefix.
            journal.torn_tail = true;
            break;
        };
        let line = &bytes[offset..offset + nl];
        offset += nl + 1;
        journal.valid_bytes = offset as u64;
        let text = String::from_utf8_lossy(line);
        match Json::parse(text.trim()) {
            Ok(doc) => match JournalEvent::from_json(&doc) {
                Some(event) => journal.records.push(JournalRecord {
                    t_ms: doc.get("t_ms").and_then(Json::as_u64).unwrap_or(0),
                    event,
                }),
                None => journal.malformed += 1,
            },
            Err(_) => journal.malformed += 1,
        }
    }
    Ok(journal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::fault::{self, FaultPlan};

    fn temp_base(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ucp_journal_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn all_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::SaveStarted { step: 10 },
            JournalEvent::NativePersisted { step: 10 },
            JournalEvent::UniversalPublished { step: 10 },
            JournalEvent::RecoveryBegin {
                rank: 2,
                step: 12,
                cause: "rank 2 panicked: injected \"fault\"".into(),
            },
            JournalEvent::Watchdog {
                rank: 1,
                step: 12,
                detail: "allreduce watchdog: rank 1 silent 5000ms".into(),
            },
            JournalEvent::RecoveryEnd {
                resume_step: Some(10),
                lost_steps: 2,
                recovery_ms: 321,
                parallel: "tp2_pp1_dp2".into(),
                source: "peer".into(),
            },
            JournalEvent::RecoveryEnd {
                resume_step: None,
                lost_steps: 12,
                recovery_ms: 5,
                parallel: "tp1_pp1_dp1".into(),
                source: "disk".into(),
            },
            JournalEvent::HotReplicated {
                step: 10,
                ranks: 4,
                bytes: 65536,
            },
            JournalEvent::HotRecoveryBegin { step: 12 },
            JournalEvent::HotRecoveryEnd {
                served_ranks: vec![0, 1, 3],
                fallback: false,
            },
            JournalEvent::HotRecoveryEnd {
                served_ranks: vec![],
                fallback: true,
            },
            JournalEvent::RetentionPrune {
                removed: vec![2, 4],
                bytes_reclaimed: 4096,
            },
            JournalEvent::Fsck {
                problems: 0,
                quarantined: 0,
                repair: true,
            },
        ]
    }

    #[test]
    fn roundtrip_all_event_kinds() {
        let base = temp_base("roundtrip");
        for (i, ev) in all_events().iter().enumerate() {
            append_at(&base, 1000 + i as u64, ev).unwrap();
        }
        let journal = read(&base).unwrap();
        assert!(!journal.torn_tail);
        assert_eq!(journal.malformed, 0);
        assert_eq!(
            journal.records.iter().map(|r| &r.event).collect::<Vec<_>>(),
            all_events().iter().collect::<Vec<_>>()
        );
        assert_eq!(journal.records[0].t_ms, 1000);
        assert_eq!(journal.last_step("universal_published"), Some(10));
        assert_eq!(journal.of_kind("recovery_end").count(), 2);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn missing_journal_reads_empty() {
        let base = temp_base("missing");
        let journal = read(&base).unwrap();
        assert!(journal.records.is_empty());
        assert!(!journal.torn_tail);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn unknown_kind_is_preserved_not_dropped() {
        let base = temp_base("unknown");
        commit::append_line(
            &journal_path(&base),
            r#"{"kind":"from_the_future","t_ms":9,"payload":[1,2]}"#,
        )
        .unwrap();
        let journal = read(&base).unwrap();
        assert_eq!(journal.malformed, 0);
        assert_eq!(
            journal.records[0].event,
            JournalEvent::Other {
                kind: "from_the_future".into()
            }
        );
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn recovery_end_without_source_defaults_to_disk() {
        // Records written before the hot tier existed carry no `source`
        // field; they must parse as disk recoveries, not as malformed.
        let base = temp_base("no_source");
        commit::append_line(
            &journal_path(&base),
            r#"{"kind":"recovery_end","t_ms":7,"resume_step":4,"lost_steps":1,"recovery_ms":88,"parallel":"tp1_pp1_dp2"}"#,
        )
        .unwrap();
        let journal = read(&base).unwrap();
        assert_eq!(journal.malformed, 0);
        assert_eq!(
            journal.records[0].event,
            JournalEvent::RecoveryEnd {
                resume_step: Some(4),
                lost_steps: 1,
                recovery_ms: 88,
                parallel: "tp1_pp1_dp2".into(),
                source: "disk".into(),
            }
        );
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn torn_tail_is_flagged_and_prefix_kept() {
        let base = temp_base("torn");
        append_at(&base, 1, &JournalEvent::SaveStarted { step: 1 }).unwrap();
        append_at(&base, 2, &JournalEvent::NativePersisted { step: 1 }).unwrap();
        // Simulate a crash mid-append: raw bytes with no newline.
        let path = journal_path(&base);
        let mut bytes = std::fs::read(&path).unwrap();
        let prefix_len = bytes.len() as u64;
        bytes.extend_from_slice(b"{\"kind\":\"save_st");
        std::fs::write(&path, &bytes).unwrap();
        let journal = read(&base).unwrap();
        assert!(journal.torn_tail);
        assert_eq!(journal.records.len(), 2);
        assert_eq!(journal.malformed, 0);
        assert_eq!(journal.valid_bytes, prefix_len);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn malformed_complete_line_is_counted_as_corruption() {
        let base = temp_base("malformed");
        append_at(&base, 1, &JournalEvent::SaveStarted { step: 1 }).unwrap();
        commit::append_line(&journal_path(&base), "not json at all").unwrap();
        append_at(&base, 3, &JournalEvent::NativePersisted { step: 1 }).unwrap();
        let journal = read(&base).unwrap();
        assert_eq!(journal.malformed, 1);
        assert_eq!(journal.records.len(), 2);
        assert!(!journal.torn_tail);
        std::fs::remove_dir_all(&base).ok();
    }

    /// The acceptance sweep: kill the append at every kill point (plus a
    /// torn-write variant) and assert the journal stays a parseable
    /// prefix — prior records intact, at most the new one missing.
    #[test]
    fn kill_point_sweep_leaves_parseable_prefix() {
        let base = temp_base("sweep");
        append_at(&base, 1, &JournalEvent::SaveStarted { step: 1 }).unwrap();
        let armed = fault::arm(FaultPlan::count_only(&base));
        append_at(&base, 2, &JournalEvent::NativePersisted { step: 1 }).unwrap();
        let kill_points = armed.hits();
        drop(armed);
        assert_eq!(kill_points, 2);
        let baseline = read(&base).unwrap().records.len();

        for k in 0..kill_points {
            for truncate in [None, Some(5)] {
                let tag = format!("kill {k} truncate {truncate:?}");
                let plan = FaultPlan {
                    truncate_to: truncate,
                    ..FaultPlan::kill_at(k, &base)
                };
                let armed = fault::arm(plan);
                let err = append_at(
                    &base,
                    100 + k,
                    &JournalEvent::UniversalPublished { step: 1 },
                )
                .unwrap_err();
                drop(armed);
                assert!(err.to_string().contains("injected crash"), "{tag}: {err}");
                let journal = read(&base).unwrap();
                assert_eq!(journal.malformed, 0, "{tag}: corrupt mid-file line");
                assert!(
                    journal.records.len() >= baseline,
                    "{tag}: lost committed records"
                );
                for r in &journal.records[..baseline] {
                    assert_ne!(
                        r.event,
                        JournalEvent::UniversalPublished { step: 1 },
                        "{tag}: prefix reordered"
                    );
                }
                // Heal for the next round: a fresh append must succeed and
                // the journal must absorb any torn tail the crash left.
                append_at(&base, 200 + k, &JournalEvent::SaveStarted { step: 2 }).unwrap();
                let healed = read(&base).unwrap();
                assert_eq!(
                    healed.records.last().unwrap().event,
                    JournalEvent::SaveStarted { step: 2 },
                    "{tag}: journal not replayable after crash"
                );
            }
        }
        std::fs::remove_dir_all(&base).ok();
    }
}
