//! Checkpoint storage: the `UCPT` container format and its I/O substrate.
//!
//! The paper persists checkpoints as PyTorch object files (`.pt`) and loads
//! them through DeepNVMe at near-peak NVMe bandwidth. This crate provides
//! the equivalents: a self-describing binary container with a JSON header
//! and CRC-32C-checksummed tensor sections ([`container`]), an optional
//! rate-limited reader/writer that simulates a storage device for the
//! efficiency benches ([`io`]), and the on-disk directory layouts for both
//! native distributed checkpoints and universal (atom) checkpoints
//! ([`layout`]). Every durable file lands through the crash-consistent
//! staged-rename protocol in [`commit`], instrumented with the fault
//! injection layer in [`io::fault`].

pub mod commit;
pub mod container;
pub mod crc;
pub mod io;
pub mod journal;
pub mod layout;
pub mod retention;

pub use container::{
    read_section_range, Container, ContainerIndex, RangeScratch, Section, SectionInfo,
    RANGE_CRC_BLOCK,
};
pub use io::Device;
pub use journal::{Journal, JournalEvent, JournalRecord};
pub use retention::{prune, InFlightGuard, PruneReport, RetentionPolicy};

/// Storage errors.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// File did not start with the UCPT magic.
    BadMagic,
    /// Unsupported container version.
    BadVersion(u32),
    /// A checksum did not match (corruption).
    ChecksumMismatch {
        /// Which part failed ("header" or a section name).
        what: String,
    },
    /// Structural problem while decoding.
    Malformed(String),
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> StorageError {
        StorageError::Io(e)
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::BadMagic => write!(f, "not a UCPT container (bad magic)"),
            StorageError::BadVersion(v) => write!(f, "unsupported container version {v}"),
            StorageError::ChecksumMismatch { what } => {
                write!(f, "checksum mismatch in {what} (corrupt checkpoint)")
            }
            StorageError::Malformed(msg) => write!(f, "malformed container: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
