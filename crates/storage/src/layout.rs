//! On-disk directory layouts for native distributed checkpoints and for
//! universal (atom) checkpoints, mirroring DeepSpeed's conventions.
//!
//! Native distributed checkpoint (what training writes every interval):
//!
//! ```text
//! <base>/global_step<N>/
//!   mp_rank_<tp>_<pp>/model_states.ucpt          one per (tp, pp)
//!   zero/dp<dp>_mp<tp>_<pp>/optim_states.ucpt    one per (dp, tp, pp)
//! <base>/latest                                  text file: "global_step<N>"
//! ```
//!
//! Universal checkpoint (what UCP conversion produces):
//!
//! ```text
//! <base>/global_step<N>_universal/
//!   manifest.ucpt                                training state + param index
//!   zero/<param_name>/fp32.ucpt
//!   zero/<param_name>/exp_avg.ucpt
//!   zero/<param_name>/exp_avg_sq.ucpt
//! <base>/latest_universal                        text file
//! ```

use std::path::{Path, PathBuf};

use crate::Result;

/// Native checkpoint directory for a step.
pub fn step_dir(base: &Path, step: u64) -> PathBuf {
    base.join(format!("global_step{step}"))
}

/// Universal checkpoint directory for a step.
pub fn universal_dir(base: &Path, step: u64) -> PathBuf {
    base.join(format!("global_step{step}_universal"))
}

/// Model-states file for a (tp, pp) model slice.
pub fn model_states_path(step_dir: &Path, tp: usize, pp: usize) -> PathBuf {
    step_dir.join(format!("mp_rank_{tp:02}_{pp:03}/model_states.ucpt"))
}

/// Optimizer-states file for a (dp, tp, pp) rank.
pub fn optim_states_path(step_dir: &Path, dp: usize, tp: usize, pp: usize) -> PathBuf {
    step_dir.join(format!(
        "zero/dp{dp:02}_mp{tp:02}_{pp:03}/optim_states.ucpt"
    ))
}

/// Directory holding one parameter's atom checkpoint.
pub fn atom_dir(universal_dir: &Path, param: &str) -> PathBuf {
    universal_dir.join("zero").join(param)
}

/// The three files of an atom checkpoint (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomFile {
    /// fp32 master weights.
    Fp32,
    /// Adam first moment.
    ExpAvg,
    /// Adam second moment.
    ExpAvgSq,
}

impl AtomFile {
    /// All three atom files.
    pub const ALL: [AtomFile; 3] = [AtomFile::Fp32, AtomFile::ExpAvg, AtomFile::ExpAvgSq];

    /// File name inside the atom directory.
    pub fn file_name(self) -> &'static str {
        match self {
            AtomFile::Fp32 => "fp32.ucpt",
            AtomFile::ExpAvg => "exp_avg.ucpt",
            AtomFile::ExpAvgSq => "exp_avg_sq.ucpt",
        }
    }

    /// DeepSpeed state key this file corresponds to.
    pub fn state_key(self) -> &'static str {
        match self {
            AtomFile::Fp32 => "fp32",
            AtomFile::ExpAvg => "exp_avg",
            AtomFile::ExpAvgSq => "exp_avg_sq",
        }
    }
}

/// Path of one atom file.
pub fn atom_path(universal_dir: &Path, param: &str, file: AtomFile) -> PathBuf {
    atom_dir(universal_dir, param).join(file.file_name())
}

/// Manifest path of a universal checkpoint.
pub fn manifest_path(universal_dir: &Path) -> PathBuf {
    universal_dir.join("manifest.ucpt")
}

/// Record the latest native checkpoint step. The marker is the commit
/// point of a save: it is staged, fsynced, and renamed into place
/// atomically so a crash can never leave a torn marker referencing a
/// half-written checkpoint.
pub fn write_latest(base: &Path, step: u64) -> Result<()> {
    std::fs::create_dir_all(base)?;
    crate::commit::atomic_write(
        &base.join("latest"),
        format!("global_step{step}").as_bytes(),
    )
}

/// Read the latest native checkpoint step, if any.
pub fn read_latest(base: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(base.join("latest")).ok()?;
    text.trim().strip_prefix("global_step")?.parse().ok()
}

/// Record the latest universal checkpoint step (atomic, like
/// [`write_latest`]).
pub fn write_latest_universal(base: &Path, step: u64) -> Result<()> {
    std::fs::create_dir_all(base)?;
    crate::commit::atomic_write(
        &base.join("latest_universal"),
        format!("global_step{step}_universal").as_bytes(),
    )
}

/// Publish both commit markers of one save: the native `latest` first,
/// then (when `universal` is set) `latest_universal`.
///
/// The ordering is a crash-safety invariant, not a convenience: retention
/// pins and prunes the native step and its universal sibling *together*,
/// keyed on the two markers, and resume trusts `latest_universal` without
/// re-validating the tree it names. Publishing native-first guarantees
/// `read_latest_universal(base) <= read_latest(base)` after a crash at any
/// byte of either write — the universal marker can lag one save behind the
/// native one, but can never point at a step whose native fragments were
/// pruned or never drained. (Each marker write is individually atomic; the
/// universal tree it names was made durable — atoms, then manifest —
/// before this is called.)
pub fn publish_step_markers(base: &Path, step: u64, universal: bool) -> Result<()> {
    write_latest(base, step)?;
    if universal {
        write_latest_universal(base, step)?;
    }
    Ok(())
}

/// Read the latest universal checkpoint step, if any.
pub fn read_latest_universal(base: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(base.join("latest_universal")).ok()?;
    text.trim()
        .strip_prefix("global_step")?
        .strip_suffix("_universal")?
        .parse()
        .ok()
}

/// Total size in bytes of all regular files under `dir` (recursive).
pub fn dir_size_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += dir_size_bytes(&path);
        } else if let Ok(meta) = entry.metadata() {
            total += meta.len();
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shapes_match_deepspeed_conventions() {
        let base = Path::new("/ckpt");
        let sd = step_dir(base, 100);
        assert_eq!(sd, Path::new("/ckpt/global_step100"));
        assert_eq!(
            model_states_path(&sd, 1, 2),
            Path::new("/ckpt/global_step100/mp_rank_01_002/model_states.ucpt")
        );
        assert_eq!(
            optim_states_path(&sd, 3, 1, 0),
            Path::new("/ckpt/global_step100/zero/dp03_mp01_000/optim_states.ucpt")
        );
        let ud = universal_dir(base, 100);
        assert_eq!(
            atom_path(&ud, "layers.0.mlp.weight", AtomFile::ExpAvg),
            Path::new("/ckpt/global_step100_universal/zero/layers.0.mlp.weight/exp_avg.ucpt")
        );
    }

    #[test]
    fn latest_roundtrip() {
        let dir = std::env::temp_dir().join("ucpt_layout_test");
        std::fs::create_dir_all(&dir).unwrap();
        write_latest(&dir, 123).unwrap();
        assert_eq!(read_latest(&dir), Some(123));
        write_latest_universal(&dir, 456).unwrap();
        assert_eq!(read_latest_universal(&dir), Some(456));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_marker_write_preserves_previous_marker() {
        use crate::io::fault::{self, FaultPlan};
        let dir = std::env::temp_dir().join(format!("ucpt_layout_torn_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_latest(&dir, 10).unwrap();
        // Tear the very first write of the new marker after 6 bytes: the
        // published marker must still read as step 10, with the torn
        // bytes confined to the staging file.
        let armed = fault::arm(FaultPlan {
            truncate_to: Some(6),
            ..FaultPlan::kill_at(0, &dir)
        });
        assert!(write_latest(&dir, 20).is_err());
        drop(armed);
        assert_eq!(read_latest(&dir), Some(10));
        assert_eq!(std::fs::read(dir.join("latest.tmp")).unwrap(), b"global");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dual_publish_orders_native_before_universal() {
        use crate::io::fault::{self, FaultPlan};
        let dir = std::env::temp_dir().join(format!("ucpt_layout_dual_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        publish_step_markers(&dir, 10, true).unwrap();
        assert_eq!(read_latest(&dir), Some(10));
        assert_eq!(read_latest_universal(&dir), Some(10));
        // Crash the dual publish at every write it performs (the marker
        // write plus the staging/fsync ops inside each atomic_write): at
        // no kill point may the universal marker run ahead of the native
        // one.
        let mut k = 0;
        loop {
            let armed = fault::arm(FaultPlan::kill_at(k, &dir));
            let r = publish_step_markers(&dir, 20 + k, true);
            let fired = armed.hits() > k;
            drop(armed);
            let native = read_latest(&dir).unwrap();
            let universal = read_latest_universal(&dir).unwrap();
            assert!(
                universal <= native,
                "kill point {k}: latest_universal {universal} ran ahead of latest {native}"
            );
            if r.is_ok() {
                assert!(!fired, "publish succeeded but the fault fired");
                assert_eq!(universal, native);
                break;
            }
            k += 1;
        }
        assert!(k > 0, "fault plan never intercepted the publish");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_latest_is_none() {
        let dir = std::env::temp_dir().join("ucpt_layout_missing");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(read_latest(&dir), None);
        assert_eq!(read_latest_universal(&dir), None);
    }

    #[test]
    fn atom_files_enumerate() {
        assert_eq!(AtomFile::ALL.len(), 3);
        assert_eq!(AtomFile::Fp32.file_name(), "fp32.ucpt");
        assert_eq!(AtomFile::ExpAvgSq.state_key(), "exp_avg_sq");
    }

    #[test]
    fn dir_size_counts_recursively() {
        let dir = std::env::temp_dir().join("ucpt_layout_size");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        std::fs::write(dir.join("a"), [0u8; 10]).unwrap();
        std::fs::write(dir.join("sub/b"), [0u8; 20]).unwrap();
        assert_eq!(dir_size_bytes(&dir), 30);
        std::fs::remove_dir_all(&dir).ok();
    }
}
