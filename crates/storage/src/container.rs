//! The `UCPT` container: a self-describing checkpoint file.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "UCPT" | version u32
//! header_len u32 | header JSON bytes | header crc32c u32
//! section_count u32
//! per section (v2, current):
//!   name_len u16 | name bytes
//!   dtype u8 | rank u8 | dims u64 × rank
//!   payload_len u64 | crc_block u32
//!   payload bytes (dtype-encoded)
//!   crc32c u32 × ceil(payload_len / crc_block)    (the block-CRC table)
//! per section (v1, legacy):
//!   name_len u16 | name bytes
//!   dtype u8 | rank u8 | dims u64 × rank
//!   payload_len u64 | payload bytes | crc32c u32
//! ```
//!
//! The JSON header carries structured metadata (model config, parallel
//! strategy, iteration, flat layout, ...) and stays human-inspectable —
//! the role the pickled dictionary plays in a `.pt` checkpoint. Tensor
//! payloads are stored in their logical dtype, so a bf16 model copy costs
//! two bytes per element while the fp32 master costs four.
//!
//! v2 replaces v1's single whole-payload checksum with a table of per-block
//! CRCs at a fixed block size recorded in the file. Every payload byte is
//! still covered (full reads verify every block in the same single hashing
//! pass v1 used), and in addition an arbitrary *byte range* of a section
//! can be integrity-checked by reading only the blocks it touches — the
//! primitive behind [`ContainerIndex::read_section_range`], which lets a
//! loading rank fetch exactly the slice of an atom it needs. v1 files
//! remain fully readable; range reads of v1 sections fall back to reading
//! and verifying the whole section before slicing.

use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::Path;

use ucp_tensor::{DType, Shape, Tensor};

use crate::commit::AtomicFile;
use crate::crc::{crc32c, BlockCrc, Crc32c};
use crate::{Result, StorageError};

const MAGIC: &[u8; 4] = b"UCPT";
/// Current write version: per-section block-CRC tables.
const VERSION: u32 = 2;
/// Legacy version: one whole-payload CRC per section.
const VERSION_V1: u32 = 1;

/// Cap on the declared header length; any larger value is corruption,
/// not a header we should try to allocate.
const MAX_HEADER_LEN: usize = 256 * 1024 * 1024;

/// Block size for streaming payloads through the CRC hasher.
const CRC_BLOCK: usize = 64 * 1024;

/// Elements encoded per chunk when streaming a section payload out: the
/// writer never materializes a payload-sized buffer, only this much.
/// 16 Ki elements is 64 KiB of fp32 — big enough to amortize the write
/// syscall, small enough to stay cache-resident.
const ENCODE_CHUNK_ELEMS: usize = 16 * 1024;

/// CRC block size (bytes) new v2 sections are written with. Small enough
/// that a tensor-parallel slice of an inner dimension maps to whole blocks
/// with little overshoot, at a table cost of 4 bytes per block (~1.6%).
pub const RANGE_CRC_BLOCK: u32 = 256;

/// Sanity bounds on a *declared* CRC block size: outside this window the
/// field is corruption (and tiny values would make the table allocation
/// attacker-amplified).
const MIN_CRC_BLOCK: u32 = 64;
const MAX_CRC_BLOCK: u32 = 16 * 1024 * 1024;

fn check_crc_block(name: &str, crc_block: u32) -> Result<()> {
    if !(MIN_CRC_BLOCK..=MAX_CRC_BLOCK).contains(&crc_block) || !crc_block.is_power_of_two() {
        return Err(StorageError::Malformed(format!(
            "section {name}: crc block size {crc_block} is not a power of two in \
             [{MIN_CRC_BLOCK}, {MAX_CRC_BLOCK}]"
        )));
    }
    Ok(())
}

/// Number of CRC blocks covering `payload_len` bytes at `crc_block`.
fn block_count(payload_len: u64, crc_block: u32) -> u64 {
    payload_len.div_ceil(crc_block as u64)
}

/// Read exactly `len` declared bytes without trusting `len` for the
/// allocation: the buffer grows only as data actually arrives (via
/// [`Read::take`]), so a corrupt length field hits EOF long before it
/// can exhaust memory.
fn read_bytes_bounded<R: Read>(r: &mut R, len: usize, what: &str) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    read_bytes_bounded_into(r, len, what, &mut buf)?;
    Ok(buf)
}

/// [`read_bytes_bounded`] into a caller-owned buffer, so repeated reads
/// (e.g. one per coalesced gap of a ranged load) reuse the same allocation
/// instead of churning a fresh `Vec` per call. The buffer is cleared but
/// keeps its capacity; growth is still driven by actual arriving data, not
/// the declared length.
fn read_bytes_bounded_into<R: Read>(
    r: &mut R,
    len: usize,
    what: &str,
    buf: &mut Vec<u8>,
) -> Result<()> {
    buf.clear();
    r.take(len as u64).read_to_end(buf)?;
    if buf.len() != len {
        return Err(StorageError::Malformed(format!(
            "{what}: declared {len} bytes, file ends after {}",
            buf.len()
        )));
    }
    Ok(())
}

/// Reusable buffers for [`ContainerIndex::read_section_range_with`]: one
/// for block-aligned payload data, one for the CRC-table slice. A caller
/// issuing many range reads (the atom cache's gap loop, a fetch-pool
/// worker) holds one of these per thread and amortizes the allocations to
/// the high-water mark of its largest read.
#[derive(Debug, Default)]
pub struct RangeScratch {
    data: Vec<u8>,
    table: Vec<u8>,
}

/// Tick the file-open counter: every `File::open` on a container path goes
/// through here so `storage/open` reflects real handle churn.
fn count_open() {
    if ucp_telemetry::enabled() {
        ucp_telemetry::count("storage/open", 1);
    }
}

/// A named tensor inside a container.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Section name (parameter name or state key).
    pub name: String,
    /// The tensor payload.
    pub tensor: Tensor,
}

/// An in-memory checkpoint container.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Container {
    /// JSON metadata header.
    pub header: String,
    /// Tensor sections, in insertion order.
    pub sections: Vec<Section>,
}

impl Container {
    /// Empty container with a header.
    pub fn new(header: impl Into<String>) -> Container {
        Container {
            header: header.into(),
            sections: Vec::new(),
        }
    }

    /// Append a tensor section.
    pub fn push(&mut self, name: impl Into<String>, tensor: Tensor) {
        self.sections.push(Section {
            name: name.into(),
            tensor,
        });
    }

    /// Find a section by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| &s.tensor)
    }

    /// Serialized size in bytes (what [`Container::write_to`] will write).
    pub fn encoded_len(&self) -> usize {
        let mut n = 4 + 4 + 4 + self.header.len() + 4 + 4;
        for s in &self.sections {
            let payload = s.tensor.num_elements() * s.tensor.dtype().size_bytes();
            n += 2 + s.name.len() + 1 + 1 + 8 * s.tensor.shape().rank() + 8 + 4;
            // Payload, per-block CRC table, trailing whole-payload CRC.
            n += payload + 4 * payload.div_ceil(RANGE_CRC_BLOCK as usize) + 4;
        }
        n
    }

    /// Serialize into a writer (current v2 layout, block-CRC tables).
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        self.write_to_version(w, VERSION)
    }

    /// Serialize in the legacy v1 layout (whole-payload CRCs, no block
    /// table). Kept so format-compatibility tests and tooling can produce
    /// v1 files; new files should use [`Container::write_to`].
    pub fn write_to_v1<W: Write>(&self, w: &mut W) -> Result<()> {
        self.write_to_version(w, VERSION_V1)
    }

    fn write_to_version<W: Write>(&self, w: &mut W, version: u32) -> Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&version.to_le_bytes())?;
        let header = self.header.as_bytes();
        w.write_all(&(header.len() as u32).to_le_bytes())?;
        w.write_all(header)?;
        w.write_all(&crc32c(header).to_le_bytes())?;
        w.write_all(&(self.sections.len() as u32).to_le_bytes())?;
        // One scratch buffer reused across all sections: payloads are
        // encoded and hashed in fixed-size chunks, so the writer's memory
        // high-water mark is one chunk, not the largest section.
        let mut scratch = Vec::with_capacity(ENCODE_CHUNK_ELEMS * 4);
        for s in &self.sections {
            let name = s.name.as_bytes();
            w.write_all(&(name.len() as u16).to_le_bytes())?;
            w.write_all(name)?;
            w.write_all(&[s.tensor.dtype().tag()])?;
            let dims = s.tensor.shape().dims();
            w.write_all(&[dims.len() as u8])?;
            for d in dims {
                w.write_all(&(*d as u64).to_le_bytes())?;
            }
            let dtype = s.tensor.dtype();
            let payload_len = (s.tensor.num_elements() * dtype.size_bytes()) as u64;
            w.write_all(&payload_len.to_le_bytes())?;
            if version >= 2 {
                w.write_all(&RANGE_CRC_BLOCK.to_le_bytes())?;
            }
            // Stream the payload: each chunk of elements is encoded into
            // the scratch buffer, written out, and fed to the hashers in a
            // single pass — the block-CRC table and the whole-payload CRC
            // come out of the same traversal that wrote the bytes.
            let mut block = BlockCrc::new(RANGE_CRC_BLOCK as usize);
            let mut whole = Crc32c::new();
            for values in s.tensor.as_slice().chunks(ENCODE_CHUNK_ELEMS) {
                scratch.clear();
                dtype.encode(values, &mut scratch);
                w.write_all(&scratch)?;
                if version >= 2 {
                    block.update(&scratch);
                } else {
                    whole.update(&scratch);
                }
            }
            if version >= 2 {
                let (table, whole) = block.finish();
                for crc in table {
                    w.write_all(&crc.to_le_bytes())?;
                }
                // Whole-payload CRC, independent of the block table: the
                // redundancy that lets a reader with a damaged table fall
                // back to a verified whole-section read
                // ([`ContainerIndex::read_section_lenient`]).
                w.write_all(&whole.to_le_bytes())?;
            } else {
                w.write_all(&whole.finish().to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserialize from a reader, verifying all checksums. Accepts both
    /// the current v2 layout and legacy v1 files.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Container> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = read_u32(r)?;
        if version != VERSION && version != VERSION_V1 {
            return Err(StorageError::BadVersion(version));
        }
        let header_len = read_u32(r)? as usize;
        if header_len > MAX_HEADER_LEN {
            return Err(StorageError::Malformed(format!(
                "header length {header_len} exceeds cap {MAX_HEADER_LEN}"
            )));
        }
        let header = read_bytes_bounded(r, header_len, "header")?;
        let header_crc = read_u32(r)?;
        if crc32c(&header) != header_crc {
            return Err(StorageError::ChecksumMismatch {
                what: "header".into(),
            });
        }
        let header = String::from_utf8(header)
            .map_err(|_| StorageError::Malformed("header is not UTF-8".into()))?;
        let count = read_u32(r)? as usize;
        // Do not trust `count` for the allocation either; grow on demand.
        let mut sections = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            let name_len = read_u16(r)? as usize;
            let name = read_bytes_bounded(r, name_len, "section name")?;
            let name = String::from_utf8(name)
                .map_err(|_| StorageError::Malformed("section name is not UTF-8".into()))?;
            let mut tag = [0u8; 2];
            r.read_exact(&mut tag)?;
            let dtype = DType::from_tag(tag[0])
                .ok_or_else(|| StorageError::Malformed(format!("bad dtype tag {}", tag[0])))?;
            let rank = tag[1] as usize;
            let mut dims = Vec::with_capacity(rank.min(64));
            let mut elems: usize = 1;
            for _ in 0..rank {
                let d = usize::try_from(read_u64(r)?).map_err(|_| {
                    StorageError::Malformed(format!("section {name}: dimension exceeds usize"))
                })?;
                elems = elems.checked_mul(d).ok_or_else(|| {
                    StorageError::Malformed(format!("section {name}: shape overflows"))
                })?;
                dims.push(d);
            }
            let expected = elems.checked_mul(dtype.size_bytes()).ok_or_else(|| {
                StorageError::Malformed(format!("section {name}: payload size overflows"))
            })?;
            let payload_len = read_u64(r)? as usize;
            let shape = Shape::new(dims);
            if payload_len != expected {
                return Err(StorageError::Malformed(format!(
                    "section {name}: payload {payload_len} bytes, shape {shape} implies {expected}"
                )));
            }
            let crc_block = if version >= 2 {
                let b = read_u32(r)?;
                check_crc_block(&name, b)?;
                Some(b as usize)
            } else {
                None
            };
            // Stream the payload through the hashers in fixed-size blocks:
            // checksums are computed in the same pass as the read, and the
            // buffer only grows as real file bytes arrive, so a corrupt
            // length can never force a giant up-front allocation. v1 hashes
            // the whole payload into one checksum; v2 feeds the combined
            // [`BlockCrc`] hasher, which yields the per-block table *and*
            // the whole-payload CRC without rescanning the payload.
            let mut payload = Vec::with_capacity(payload_len.min(1 << 20));
            let mut block = [0u8; CRC_BLOCK];
            let mut remaining = payload_len;
            let mut whole_hasher = Crc32c::new();
            let mut block_hasher = crc_block.map(BlockCrc::new);
            let timing = ucp_telemetry::enabled();
            let mut crc_ns = 0u64;
            while remaining > 0 {
                let n = CRC_BLOCK.min(remaining);
                r.read_exact(&mut block[..n])?;
                let t = timing.then(std::time::Instant::now);
                match &mut block_hasher {
                    None => whole_hasher.update(&block[..n]),
                    Some(h) => h.update(&block[..n]),
                }
                if let Some(t) = t {
                    crc_ns += t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                }
                payload.extend_from_slice(&block[..n]);
                remaining -= n;
            }
            if timing {
                ucp_telemetry::observe("storage/crc_ns", crc_ns);
                ucp_telemetry::count("storage/crc_bytes", payload_len as u64);
            }
            match block_hasher {
                None => {
                    let crc = read_u32(r)?;
                    if whole_hasher.finish() != crc {
                        return Err(StorageError::ChecksumMismatch { what: name });
                    }
                }
                Some(h) => {
                    let (computed_table, computed_whole) = h.finish();
                    let cb = crc_block.unwrap_or(1);
                    let n_blocks = block_count(payload_len as u64, cb as u32) as usize;
                    debug_assert_eq!(computed_table.len(), n_blocks);
                    for (i, computed) in computed_table.iter().enumerate() {
                        let stored = read_u32(r)?;
                        if stored != *computed {
                            return Err(StorageError::ChecksumMismatch {
                                what: format!("{name} (block {i})"),
                            });
                        }
                    }
                    let whole = read_u32(r)?;
                    if computed_whole != whole {
                        return Err(StorageError::ChecksumMismatch {
                            what: format!("{name} (whole payload)"),
                        });
                    }
                }
            }
            let values = dtype
                .decode(&payload, shape.num_elements())
                .ok_or_else(|| StorageError::Malformed(format!("section {name}: short payload")))?;
            let tensor = Tensor::from_vec(values, shape)
                .map_err(|e| StorageError::Malformed(e.to_string()))?
                .cast(dtype);
            sections.push(Section { name, tensor });
        }
        Ok(Container { header, sections })
    }

    /// Write to a file path (creating parent directories). The container
    /// is staged to `<path>.tmp` and renamed into place, so readers see
    /// either the old container or the complete new one; this variant
    /// skips the fsyncs (atomic against concurrent readers, not against
    /// power loss).
    pub fn write_file(&self, path: &Path) -> Result<()> {
        self.write_file_impl(path, false)
    }

    /// Write to a file path through the full crash-consistent commit
    /// protocol (stage, fsync, rename, fsync parent directory). The
    /// serialization cost and the durability cost show up as separate
    /// telemetry spans (`storage/write` vs `storage/fsync`).
    pub fn write_file_durable(&self, path: &Path) -> Result<()> {
        self.write_file_impl(path, true)
    }

    fn write_file_impl(&self, path: &Path, durable: bool) -> Result<()> {
        let staged = AtomicFile::create(path)?;
        // Absolute span paths (via record_span) so the serialize/fsync
        // split reads the same no matter which phase is open above us.
        let t = ucp_telemetry::enabled().then(std::time::Instant::now);
        {
            let mut w = staged.writer();
            self.write_to(&mut w)?;
            w.flush()?;
        }
        if let Some(t) = t {
            ucp_telemetry::global().record_span("storage/write", t.elapsed());
            ucp_telemetry::count("storage/bytes_written", self.encoded_len() as u64);
        }
        if durable {
            let t = ucp_telemetry::enabled().then(std::time::Instant::now);
            staged.commit()?;
            if let Some(t) = t {
                ucp_telemetry::global().record_span("storage/fsync", t.elapsed());
            }
        } else {
            staged.publish_unsynced()?;
        }
        Ok(())
    }

    /// Read from a file path.
    pub fn read_file(path: &Path) -> Result<Container> {
        count_open();
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        Container::read_from(&mut r)
    }
}

/// Metadata of one section, read without its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section name.
    pub name: String,
    /// Logical dtype.
    pub dtype: DType,
    /// Tensor shape.
    pub shape: Shape,
    /// Payload bytes on disk.
    pub payload_len: u64,
    /// Absolute file offset of the first payload byte.
    pub payload_offset: u64,
    /// CRC block size this section was written with (0 for v1 sections,
    /// which carry a single whole-payload checksum instead of a table).
    pub crc_block: u32,
}

impl SectionInfo {
    /// Elements in the section.
    pub fn num_elements(&self) -> usize {
        self.shape.num_elements()
    }

    /// Payload bytes a [`ContainerIndex::read_section_range`] of `elems`
    /// will fetch from disk: the block-aligned span covering the range
    /// (v2), or the whole payload (v1).
    pub fn range_read_bytes(&self, elems: &Range<usize>) -> u64 {
        if elems.start >= elems.end {
            return 0;
        }
        let esize = self.dtype.size_bytes() as u64;
        if self.crc_block == 0 {
            return self.payload_len;
        }
        let cb = self.crc_block as u64;
        let bstart = elems.start as u64 * esize / cb * cb;
        let bend = (elems.end as u64 * esize).div_ceil(cb) * cb;
        bend.min(self.payload_len) - bstart
    }
}

/// A container's header and section index, read by *skipping* payloads —
/// O(header) instead of O(file). Backs fast inspection, metadata-only
/// planning, and verified range reads over large checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerIndex {
    /// Container format version the file was written with.
    pub version: u32,
    /// JSON metadata header (checksum verified).
    pub header: String,
    /// Per-section metadata, in file order.
    pub sections: Vec<SectionInfo>,
}

impl ContainerIndex {
    /// Read the index from a seekable reader.
    pub fn read_from<R: Read + Seek>(r: &mut R) -> Result<ContainerIndex> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = read_u32(r)?;
        if version != VERSION && version != VERSION_V1 {
            return Err(StorageError::BadVersion(version));
        }
        let header_len = read_u32(r)? as usize;
        if header_len > MAX_HEADER_LEN {
            return Err(StorageError::Malformed(format!(
                "header length {header_len} exceeds cap {MAX_HEADER_LEN}"
            )));
        }
        let header = read_bytes_bounded(r, header_len, "header")?;
        let header_crc = read_u32(r)?;
        if crc32c(&header) != header_crc {
            return Err(StorageError::ChecksumMismatch {
                what: "header".into(),
            });
        }
        let header = String::from_utf8(header)
            .map_err(|_| StorageError::Malformed("header is not UTF-8".into()))?;
        let count = read_u32(r)? as usize;
        let mut sections = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            let name_len = read_u16(r)? as usize;
            let name = read_bytes_bounded(r, name_len, "section name")?;
            let name = String::from_utf8(name)
                .map_err(|_| StorageError::Malformed("section name is not UTF-8".into()))?;
            let mut tag = [0u8; 2];
            r.read_exact(&mut tag)?;
            let dtype = DType::from_tag(tag[0])
                .ok_or_else(|| StorageError::Malformed(format!("bad dtype tag {}", tag[0])))?;
            let rank = tag[1] as usize;
            let mut dims = Vec::with_capacity(rank.min(64));
            for _ in 0..rank {
                let d = usize::try_from(read_u64(r)?).map_err(|_| {
                    StorageError::Malformed(format!("section {name}: dimension exceeds usize"))
                })?;
                dims.push(d);
            }
            let payload_len = read_u64(r)?;
            let crc_block = if version >= 2 {
                let b = read_u32(r)?;
                check_crc_block(&name, b)?;
                b
            } else {
                0
            };
            let payload_offset = r.stream_position()?;
            // Skip the payload and its checksum(s): v2 carries a per-block
            // table plus a trailing whole-payload CRC, v1 just the whole
            // CRC. A corrupt length must not wrap negative when cast for
            // the relative seek.
            let checksums = if crc_block > 0 {
                block_count(payload_len, crc_block)
                    .checked_mul(4)
                    .and_then(|t| t.checked_add(4))
            } else {
                Some(4)
            };
            let skip = checksums
                .and_then(|c| payload_len.checked_add(c))
                .and_then(|n| i64::try_from(n).ok())
                .ok_or_else(|| {
                    StorageError::Malformed(format!(
                        "section {name}: payload length {payload_len} overflows seek"
                    ))
                })?;
            r.seek(SeekFrom::Current(skip))?;
            sections.push(SectionInfo {
                name,
                dtype,
                shape: Shape::new(dims),
                payload_len,
                payload_offset,
                crc_block,
            });
        }
        // Relative seeks past EOF succeed silently, so a truncated final
        // payload would otherwise index as present — verify the cursor
        // never left the file.
        let pos = r.stream_position()?;
        let end = r.seek(SeekFrom::End(0))?;
        if pos > end {
            return Err(StorageError::Malformed("file truncated mid-section".into()));
        }
        Ok(ContainerIndex {
            version,
            header,
            sections,
        })
    }

    /// Read the index from a file.
    pub fn read_file(path: &Path) -> Result<ContainerIndex> {
        count_open();
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        ContainerIndex::read_from(&mut r)
    }

    /// Find a section by name.
    pub fn get(&self, name: &str) -> Option<&SectionInfo> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Read elements `elems` of `section` from the same reader the index
    /// was built from, verifying integrity of exactly what is read.
    ///
    /// For v2 sections only the CRC blocks the byte range touches are
    /// fetched and checked — corruption outside the range goes unread and
    /// undetected, corruption inside it surfaces as
    /// [`StorageError::ChecksumMismatch`]. v1 sections have no block
    /// table, so the whole payload is read and verified before slicing.
    /// Returns a 1-D tensor of `elems.len()` values in the section dtype.
    pub fn read_section_range<R: Read + Seek>(
        &self,
        r: &mut R,
        section: &str,
        elems: Range<usize>,
    ) -> Result<Tensor> {
        self.read_section_range_with(r, section, elems, &mut RangeScratch::default())
    }

    /// [`ContainerIndex::read_section_range`] with caller-owned scratch
    /// buffers: repeated calls (one per coalesced gap of a ranged load)
    /// reuse the same allocations instead of churning fresh `Vec`s.
    pub fn read_section_range_with<R: Read + Seek>(
        &self,
        r: &mut R,
        section: &str,
        elems: Range<usize>,
        scratch: &mut RangeScratch,
    ) -> Result<Tensor> {
        let info = self.get(section).ok_or_else(|| {
            StorageError::Malformed(format!("container has no section {section}"))
        })?;
        let total = info.num_elements();
        if elems.start > elems.end || elems.end > total {
            return Err(StorageError::Malformed(format!(
                "section {section}: range {}..{} out of bounds for {total} elements",
                elems.start, elems.end
            )));
        }
        let esize = info.dtype.size_bytes();
        let expected = total as u64 * esize as u64;
        if info.payload_len != expected {
            return Err(StorageError::Malformed(format!(
                "section {section}: payload {} bytes, shape {} implies {expected}",
                info.payload_len, info.shape
            )));
        }
        let n = elems.end - elems.start;
        if n == 0 {
            let t = Tensor::from_vec(Vec::new(), Shape::new([0]))
                .map_err(|e| StorageError::Malformed(e.to_string()))?;
            return Ok(t.cast(info.dtype));
        }
        let bstart = elems.start * esize;
        let bend = elems.end * esize;
        let bytes: &[u8] = if info.crc_block == 0 {
            // v1: no block table — read and verify the whole payload,
            // then slice the requested bytes out of it.
            r.seek(SeekFrom::Start(info.payload_offset))?;
            read_bytes_bounded_into(r, info.payload_len as usize, section, &mut scratch.data)?;
            let crc = read_u32(r)?;
            if crc32c(&scratch.data) != crc {
                return Err(StorageError::ChecksumMismatch {
                    what: section.to_string(),
                });
            }
            self.count_range_read(scratch.data.len() as u64 + 4);
            &scratch.data[bstart..bend]
        } else {
            let cb = info.crc_block as usize;
            let b0 = bstart / cb;
            let b1 = bend.div_ceil(cb);
            let data_off = info.payload_offset + (b0 * cb) as u64;
            let data_len = (b1 * cb).min(info.payload_len as usize) - b0 * cb;
            r.seek(SeekFrom::Start(data_off))?;
            read_bytes_bounded_into(r, data_len, section, &mut scratch.data)?;
            r.seek(SeekFrom::Start(
                info.payload_offset + info.payload_len + (b0 * 4) as u64,
            ))?;
            read_bytes_bounded_into(r, (b1 - b0) * 4, "block crc table", &mut scratch.table)?;
            for (i, chunk) in scratch.data.chunks(cb).enumerate() {
                let stored =
                    u32::from_le_bytes(scratch.table[i * 4..i * 4 + 4].try_into().unwrap());
                if crc32c(chunk) != stored {
                    return Err(StorageError::ChecksumMismatch {
                        what: format!("{section} (block {})", b0 + i),
                    });
                }
            }
            self.count_range_read((data_len + scratch.table.len()) as u64);
            &scratch.data[bstart - b0 * cb..bend - b0 * cb]
        };
        let values = info
            .dtype
            .decode(bytes, n)
            .ok_or_else(|| StorageError::Malformed(format!("section {section}: short payload")))?;
        let tensor = Tensor::from_vec(values, Shape::new([n]))
            .map_err(|e| StorageError::Malformed(e.to_string()))?;
        Ok(tensor.cast(info.dtype))
    }

    /// Read the *whole* payload of `section`, verified against its
    /// whole-payload CRC only — the per-block table is skipped, not
    /// trusted. This is the graceful-degradation path for a damaged block
    /// table: the table and the trailing CRC are independent redundancy,
    /// so a corrupt table with an intact payload still yields correct
    /// bytes here (and a corrupt payload still fails).
    /// Returns a 1-D tensor of the full section in the section dtype.
    pub fn read_section_lenient<R: Read + Seek>(&self, r: &mut R, section: &str) -> Result<Tensor> {
        let info = self.get(section).ok_or_else(|| {
            StorageError::Malformed(format!("container has no section {section}"))
        })?;
        let total = info.num_elements();
        let expected = total as u64 * info.dtype.size_bytes() as u64;
        if info.payload_len != expected {
            return Err(StorageError::Malformed(format!(
                "section {section}: payload {} bytes, shape {} implies {expected}",
                info.payload_len, info.shape
            )));
        }
        r.seek(SeekFrom::Start(info.payload_offset))?;
        let payload = read_bytes_bounded(r, info.payload_len as usize, section)?;
        // Seek past the block table (v2); for v1 the next u32 already is
        // the whole-payload CRC.
        let table_bytes = if info.crc_block == 0 {
            0
        } else {
            block_count(info.payload_len, info.crc_block) * 4
        };
        if table_bytes > 0 {
            r.seek(SeekFrom::Current(table_bytes as i64))?;
        }
        let crc = read_u32(r)?;
        if crc32c(&payload) != crc {
            return Err(StorageError::ChecksumMismatch {
                what: format!("{section} (whole payload)"),
            });
        }
        self.count_range_read(payload.len() as u64 + 4);
        let values = info
            .dtype
            .decode(&payload, total)
            .ok_or_else(|| StorageError::Malformed(format!("section {section}: short payload")))?;
        let tensor = Tensor::from_vec(values, Shape::new([total]))
            .map_err(|e| StorageError::Malformed(e.to_string()))?;
        Ok(tensor.cast(info.dtype))
    }

    fn count_range_read(&self, bytes: u64) {
        if ucp_telemetry::enabled() {
            ucp_telemetry::count("storage/range_reads", 1);
            ucp_telemetry::count("storage/range_bytes_read", bytes);
        }
    }
}

/// Convenience: open the container at `path` and read elements `elems` of
/// `section` through a verified range read (see
/// [`ContainerIndex::read_section_range`]).
pub fn read_section_range(path: &Path, section: &str, elems: Range<usize>) -> Result<Tensor> {
    count_open();
    let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
    let index = ContainerIndex::read_from(&mut r)?;
    index.read_section_range(&mut r, section, elems)
}

fn read_u16<R: Read>(r: &mut R) -> Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_tensor::DetRng;

    fn sample() -> Container {
        let rng = DetRng::new(1);
        let mut c = Container::new(r#"{"iteration": 42, "strategy": "tp2_pp1_dp2"}"#);
        c.push("a.weight", Tensor::randn([4, 3], 1.0, &rng.derive("a")));
        c.push(
            "b.bias",
            Tensor::randn([7], 1.0, &rng.derive("b")).cast(DType::BF16),
        );
        c.push("scalar", Tensor::scalar(3.5));
        c
    }

    /// A container big enough that sections span many CRC blocks.
    fn big_sample() -> Container {
        let rng = DetRng::new(9);
        let mut c = Container::new("{}");
        c.push("w", Tensor::randn([40, 33], 1.0, &rng.derive("w")));
        c.push(
            "h",
            Tensor::randn([777], 1.0, &rng.derive("h")).cast(DType::F16),
        );
        c
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), c.encoded_len());
        let back = Container::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.header, c.header);
        assert_eq!(back.sections.len(), 3);
        for (orig, read) in c.sections.iter().zip(&back.sections) {
            assert_eq!(orig.name, read.name);
            assert_eq!(orig.tensor.dtype(), read.tensor.dtype());
            assert!(orig.tensor.bitwise_eq(&read.tensor), "{}", orig.name);
        }
    }

    #[test]
    fn v1_files_still_read_back() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to_v1(&mut buf).unwrap();
        let back = Container::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.header, c.header);
        for (orig, read) in c.sections.iter().zip(&back.sections) {
            assert!(orig.tensor.bitwise_eq(&read.tensor), "{}", orig.name);
        }
        let index = ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(index.version, 1);
        assert!(index.sections.iter().all(|s| s.crc_block == 0));
    }

    #[test]
    fn bf16_sections_are_half_size() {
        let rng = DetRng::new(2);
        let t = Tensor::randn([1000], 1.0, &rng.derive("t"));
        let mut c32 = Container::new("{}");
        c32.push("w", t.clone());
        let mut c16 = Container::new("{}");
        c16.push("w", t.cast(DType::BF16));
        let diff = c32.encoded_len() - c16.encoded_len();
        // bf16 halves the payload 4000 → 2000 bytes, and with it the
        // block-CRC table (16 blocks → 8 at 4 bytes each).
        assert_eq!(diff, 2000 + 32);
    }

    #[test]
    fn corruption_is_detected() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        // Flip one payload byte somewhere after the header.
        let idx = buf.len() - 10;
        buf[idx] ^= 0x01;
        match Container::read_from(&mut buf.as_slice()) {
            Err(StorageError::ChecksumMismatch { .. }) | Err(StorageError::Malformed(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn v1_corruption_is_detected() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to_v1(&mut buf).unwrap();
        let idx = buf.len() - 10;
        buf[idx] ^= 0x01;
        match Container::read_from(&mut buf.as_slice()) {
            Err(StorageError::ChecksumMismatch { .. }) | Err(StorageError::Malformed(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Container::read_from(&mut &b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, StorageError::BadMagic));
    }

    #[test]
    fn unknown_version_rejected() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        buf[4..8].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            Container::read_from(&mut buf.as_slice()),
            Err(StorageError::BadVersion(3))
        ));
        assert!(matches!(
            ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)),
            Err(StorageError::BadVersion(3))
        ));
    }

    #[test]
    fn truncated_file_is_io_error() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(Container::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ucpt_container_test");
        let path = dir.join("nested/dir/test.ucpt");
        let c = sample();
        c.write_file(&path).unwrap();
        let back = Container::read_file(&path).unwrap();
        assert_eq!(back, c.clone());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_write_file_roundtrip() {
        let dir = std::env::temp_dir().join("ucpt_container_durable_test");
        let path = dir.join("test.ucpt");
        let c = sample();
        c.write_file_durable(&path).unwrap();
        let back = Container::read_file(&path).unwrap();
        assert_eq!(back, c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn get_by_name() {
        let c = sample();
        assert!(c.get("a.weight").is_some());
        assert!(c.get("missing").is_none());
    }

    #[test]
    fn index_matches_full_read() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let index = ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(index.version, 2);
        assert_eq!(index.header, c.header);
        assert_eq!(index.sections.len(), c.sections.len());
        for (info, full) in index.sections.iter().zip(&c.sections) {
            assert_eq!(info.name, full.name);
            assert_eq!(info.dtype, full.tensor.dtype());
            assert_eq!(&info.shape, full.tensor.shape());
            assert_eq!(
                info.payload_len as usize,
                full.tensor.num_elements() * full.tensor.dtype().size_bytes()
            );
            assert_eq!(info.crc_block, RANGE_CRC_BLOCK);
            // The recorded offset really is where the payload starts.
            let esize = info.dtype.size_bytes();
            let first = &buf[info.payload_offset as usize..info.payload_offset as usize + esize];
            let mut enc = Vec::new();
            info.dtype.encode(&full.tensor.as_slice()[..1], &mut enc);
            assert_eq!(first, &enc[..], "payload offset of {}", info.name);
        }
        assert!(index.get("a.weight").is_some());
        assert!(index.get("nope").is_none());
    }

    #[test]
    fn index_skips_corrupt_payloads_but_catches_bad_header() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        // Corrupt a payload byte: the index never reads it, so indexing
        // succeeds (payload verification belongs to the full read). The
        // first section's payload starts after the file preamble and the
        // section's name/dtype/rank/dims/len/crc_block fields.
        let idx = 4 + 4 + 4 + c.header.len() + 4 + 4 + 2 + "a.weight".len() + 1 + 1 + 16 + 8 + 4;
        buf[idx] ^= 1;
        assert!(matches!(
            Container::read_from(&mut buf.as_slice()),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        assert!(ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).is_ok());
        // Corrupt the header: the index must fail.
        buf[12] ^= 1;
        assert!(ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).is_err());
    }

    #[test]
    fn range_read_matches_full_read_slice() {
        let c = big_sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let mut cur = std::io::Cursor::new(&buf);
        let index = ContainerIndex::read_from(&mut cur).unwrap();
        for s in &c.sections {
            let total = s.tensor.num_elements();
            let full: Vec<f32> = s.tensor.flatten().as_slice().to_vec();
            for range in [0..total, 0..1, total - 1..total, 3..total / 2, 0..0] {
                let t = index
                    .read_section_range(&mut cur, &s.name, range.clone())
                    .unwrap();
                assert_eq!(t.num_elements(), range.len());
                assert_eq!(t.dtype(), s.tensor.dtype());
                for (got, want) in t.as_slice().iter().zip(&full[range.clone()]) {
                    assert_eq!(got.to_bits(), want.to_bits(), "{} {range:?}", s.name);
                }
            }
        }
    }

    #[test]
    fn range_read_of_v1_section_falls_back_to_full_verify() {
        let c = big_sample();
        let mut buf = Vec::new();
        c.write_to_v1(&mut buf).unwrap();
        let mut cur = std::io::Cursor::new(&buf);
        let index = ContainerIndex::read_from(&mut cur).unwrap();
        let full: Vec<f32> = c.sections[0].tensor.flatten().as_slice().to_vec();
        let t = index.read_section_range(&mut cur, "w", 5..25).unwrap();
        for (got, want) in t.as_slice().iter().zip(&full[5..25]) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        // Corrupt any payload byte: a v1 range read must fail even when
        // the corruption is outside the requested range.
        let info = index.get("w").unwrap();
        let mut bad = buf.clone();
        bad[info.payload_offset as usize + info.payload_len as usize - 1] ^= 1;
        let mut cur = std::io::Cursor::new(&bad);
        let index = ContainerIndex::read_from(&mut cur).unwrap();
        assert!(matches!(
            index.read_section_range(&mut cur, "w", 5..25),
            Err(StorageError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_block_outside_range_is_not_read() {
        let c = big_sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let index = ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        let info = index.get("w").unwrap().clone();
        // Corrupt the last payload byte (the final block).
        buf[info.payload_offset as usize + info.payload_len as usize - 1] ^= 1;
        let mut cur = std::io::Cursor::new(&buf);
        // A range confined to the first block still reads clean...
        let t = index.read_section_range(&mut cur, "w", 0..10).unwrap();
        assert_eq!(t.num_elements(), 10);
        // ...while a range touching the corrupt block errors, and the full
        // read errors too.
        let total = info.num_elements();
        assert!(matches!(
            index.read_section_range(&mut cur, "w", total - 1..total),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        assert!(Container::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_block_table_entry_fails_matching_range() {
        let c = big_sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let index = ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        let info = index.get("w").unwrap().clone();
        // Corrupt the *table entry* of block 0 rather than the data.
        let table_off = (info.payload_offset + info.payload_len) as usize;
        buf[table_off] ^= 1;
        let mut cur = std::io::Cursor::new(&buf);
        assert!(matches!(
            index.read_section_range(&mut cur, "w", 0..10),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        // The full read verifies the table too.
        assert!(Container::read_from(&mut buf.as_slice()).is_err());
        // Ranges entirely inside later blocks are unaffected.
        let cb = info.crc_block as usize / 4;
        let t = index
            .read_section_range(&mut cur, "w", 2 * cb..3 * cb)
            .unwrap();
        assert_eq!(t.num_elements(), cb);
    }

    #[test]
    fn lenient_read_survives_damaged_block_table() {
        let c = big_sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let index = ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        let info = index.get("w").unwrap().clone();
        // Damage a block-table entry: the ranged read and strict full read
        // fail, the lenient read still yields the correct bytes.
        let table_off = (info.payload_offset + info.payload_len) as usize;
        buf[table_off] ^= 1;
        let mut cur = std::io::Cursor::new(&buf);
        assert!(matches!(
            index.read_section_range(&mut cur, "w", 0..10),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        assert!(Container::read_from(&mut buf.as_slice()).is_err());
        let t = index.read_section_lenient(&mut cur, "w").unwrap();
        let want = c.sections[0].tensor.flatten();
        assert!(t.bitwise_eq(&want), "lenient read returned wrong bytes");
    }

    #[test]
    fn lenient_read_still_fails_on_damaged_payload() {
        let c = big_sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let index = ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        let info = index.get("w").unwrap().clone();
        buf[info.payload_offset as usize + 5] ^= 1;
        let mut cur = std::io::Cursor::new(&buf);
        assert!(matches!(
            index.read_section_lenient(&mut cur, "w"),
            Err(StorageError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn lenient_read_of_v1_section_verifies_whole_crc() {
        let c = big_sample();
        let mut buf = Vec::new();
        c.write_to_v1(&mut buf).unwrap();
        let index = ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        let mut cur = std::io::Cursor::new(&buf);
        let t = index.read_section_lenient(&mut cur, "h").unwrap();
        assert!(t.bitwise_eq(&c.sections[1].tensor.flatten()));
        // And corruption is still caught.
        let info = index.get("h").unwrap().clone();
        buf[info.payload_offset as usize] ^= 1;
        let mut cur = std::io::Cursor::new(&buf);
        assert!(index.read_section_lenient(&mut cur, "h").is_err());
    }

    #[test]
    fn corrupt_trailing_whole_crc_fails_full_read_not_ranged() {
        let c = big_sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let index = ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        let info = index.get("w").unwrap().clone();
        let table_bytes = info.payload_len.div_ceil(info.crc_block as u64) * 4;
        let whole_off = (info.payload_offset + info.payload_len + table_bytes) as usize;
        buf[whole_off] ^= 1;
        // The strict full read verifies the trailing CRC...
        assert!(matches!(
            Container::read_from(&mut buf.as_slice()),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        // ...while ranged reads never touch it.
        let mut cur = std::io::Cursor::new(&buf);
        let t = index.read_section_range(&mut cur, "w", 0..10).unwrap();
        assert_eq!(t.num_elements(), 10);
    }

    #[test]
    fn range_read_bounds_are_checked() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let mut cur = std::io::Cursor::new(&buf);
        let index = ContainerIndex::read_from(&mut cur).unwrap();
        assert!(index
            .read_section_range(&mut cur, "a.weight", 0..13)
            .is_err());
        assert!(index.read_section_range(&mut cur, "nope", 0..1).is_err());
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = 5..2;
        assert!(index
            .read_section_range(&mut cur, "a.weight", reversed)
            .is_err());
    }

    #[test]
    fn range_read_bytes_accounting() {
        let c = big_sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let index = ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        let info = index.get("w").unwrap();
        let cb = info.crc_block as u64;
        // One element in the middle of a block costs exactly one block.
        assert_eq!(info.range_read_bytes(&(100..101)), cb);
        // The full section costs the whole payload (last block short).
        let total = info.num_elements();
        assert_eq!(info.range_read_bytes(&(0..total)), info.payload_len);
        assert_eq!(info.range_read_bytes(&(7..7)), 0);
    }

    #[test]
    fn free_function_reads_range_from_file() {
        let dir = std::env::temp_dir().join("ucpt_range_free_fn");
        let path = dir.join("c.ucpt");
        let c = big_sample();
        c.write_file(&path).unwrap();
        let t = read_section_range(&path, "h", 10..20).unwrap();
        assert_eq!(t.num_elements(), 10);
        assert_eq!(t.dtype(), DType::F16);
        let full: Vec<f32> = c.sections[1].tensor.flatten().as_slice().to_vec();
        for (got, want) in t.as_slice().iter().zip(&full[10..20]) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Hand-rolled container bytes with attacker-controlled geometry:
    /// one F32 section named "w" with the given dims and payload length
    /// (and no payload bytes at all).
    fn raw_container(dims: &[u64], payload_len: u64) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(MAGIC);
        b.extend_from_slice(&VERSION.to_le_bytes());
        let header = b"{}";
        b.extend_from_slice(&(header.len() as u32).to_le_bytes());
        b.extend_from_slice(header);
        b.extend_from_slice(&crc32c(header).to_le_bytes());
        b.extend_from_slice(&1u32.to_le_bytes());
        let name = b"w";
        b.extend_from_slice(&(name.len() as u16).to_le_bytes());
        b.extend_from_slice(name);
        b.push(DType::F32.tag());
        b.push(dims.len() as u8);
        for d in dims {
            b.extend_from_slice(&d.to_le_bytes());
        }
        b.extend_from_slice(&payload_len.to_le_bytes());
        b.extend_from_slice(&RANGE_CRC_BLOCK.to_le_bytes());
        b
    }

    #[test]
    fn oversized_header_len_is_rejected_not_allocated() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        // header_len lives at bytes 8..12.
        buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Container::read_from(&mut buf.as_slice()),
            Err(StorageError::Malformed(_))
        ));
        assert!(matches!(
            ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)),
            Err(StorageError::Malformed(_))
        ));
    }

    #[test]
    fn shape_overflow_is_malformed_not_panic() {
        let buf = raw_container(&[u64::MAX, u64::MAX], 16);
        assert!(matches!(
            Container::read_from(&mut buf.as_slice()),
            Err(StorageError::Malformed(_))
        ));
    }

    #[test]
    fn huge_payload_len_hits_eof_not_oom() {
        // A "valid" terabyte-scale section on a tiny file: the streamed
        // read must fail at EOF after at most one block, never allocate
        // the declared size up front.
        let buf = raw_container(&[1 << 38], 4 << 38);
        assert!(matches!(
            Container::read_from(&mut buf.as_slice()),
            Err(StorageError::Io(_))
        ));
    }

    #[test]
    fn absurd_crc_block_is_rejected() {
        let mut buf = raw_container(&[4], 16);
        // Rewrite the crc_block field (the final 4 bytes of the raw
        // preamble) with an out-of-bounds value.
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            Container::read_from(&mut buf.as_slice()),
            Err(StorageError::Malformed(_))
        ));
        assert!(matches!(
            ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)),
            Err(StorageError::Malformed(_))
        ));
    }

    #[test]
    fn index_seek_overflow_is_malformed_not_wrapped() {
        // payload_len near u64::MAX used to wrap negative through the
        // `as i64` cast and seek *backwards*; it must be rejected.
        let buf = raw_container(&[4], u64::MAX);
        assert!(matches!(
            ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)),
            Err(StorageError::Malformed(_))
        ));
    }

    #[test]
    fn index_detects_truncated_final_payload() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        // Chop off most of the final section's payload: the skip-seek
        // lands past EOF, which must surface as Malformed, not Ok.
        buf.truncate(buf.len() - 16);
        assert!(ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).is_err());
    }

    mod range_read_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// A verified range read agrees byte-for-byte with slicing a
            /// full `Container::read_from`, over random shapes, dtypes
            /// (including fp16/bf16), format versions, and ranges — with
            /// the empty and full ranges checked on every case.
            #[test]
            fn prop_range_read_matches_full_read_slice(
                dims in prop::collection::vec(1usize..12, 1..4),
                dtype_sel in 0usize..3,
                v1 in prop::bool::ANY,
                pick in 0.0f64..1.0,
                span in 0.0f64..1.0,
            ) {
                let dtype = [DType::F32, DType::F16, DType::BF16][dtype_sel];
                let shape = Shape::new(dims);
                let total = shape.num_elements();
                let rng = DetRng::new(0x5EC7 ^ total as u64);
                let t = Tensor::randn(shape, 1.0, &rng.derive("t")).cast(dtype);
                let mut c = Container::new("{}");
                c.push("w", t);
                let mut buf = Vec::new();
                if v1 {
                    c.write_to_v1(&mut buf).unwrap();
                } else {
                    c.write_to(&mut buf).unwrap();
                }
                let full = Container::read_from(&mut buf.as_slice()).unwrap();
                let full: Vec<f32> = full.sections[0].tensor.flatten().as_slice().to_vec();
                let mut cur = std::io::Cursor::new(&buf);
                let index = ContainerIndex::read_from(&mut cur).unwrap();
                let start = ((pick * total as f64) as usize).min(total);
                let len = ((span * (total - start + 1) as f64) as usize).min(total - start);
                for range in [start..start + len, 0..0, 0..total] {
                    let got = index
                        .read_section_range(&mut cur, "w", range.clone())
                        .unwrap();
                    prop_assert_eq!(got.num_elements(), range.len());
                    prop_assert_eq!(got.dtype(), dtype);
                    for (g, w) in got.as_slice().iter().zip(&full[range]) {
                        prop_assert_eq!(g.to_bits(), w.to_bits());
                    }
                }
            }

            /// Flipping one random byte inside a v2 payload fails exactly
            /// the range reads that cover the flipped block — ranges
            /// entirely outside it still load.
            #[test]
            fn prop_corrupt_block_only_fails_covering_ranges(
                elems in 200usize..900,
                victim in 0.0f64..1.0,
            ) {
                let rng = DetRng::new(elems as u64);
                let t = Tensor::randn([elems], 1.0, &rng.derive("t"));
                let mut c = Container::new("{}");
                c.push("w", t);
                let mut buf = Vec::new();
                c.write_to(&mut buf).unwrap();
                let index = ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
                let info = index.get("w").unwrap().clone();
                let byte = ((victim * info.payload_len as f64) as usize)
                    .min(info.payload_len as usize - 1);
                buf[info.payload_offset as usize + byte] ^= 0x40;
                let cb_elems = info.crc_block as usize / 4;
                let bad_block = byte / info.crc_block as usize;
                let mut cur = std::io::Cursor::new(&buf);
                // Any range covering the corrupt element must error...
                let bad = index.read_section_range(&mut cur, "w", byte / 4..byte / 4 + 1);
                prop_assert!(matches!(bad, Err(StorageError::ChecksumMismatch { .. })));
                // ...while ranges confined to other blocks stay readable.
                let clean_block = if bad_block == 0 { 1 } else { 0 };
                let clean = index.read_section_range(
                    &mut cur,
                    "w",
                    clean_block * cb_elems..(clean_block + 1) * cb_elems,
                );
                prop_assert!(clean.is_ok());
            }
        }
    }

    #[test]
    fn byte_flip_fuzz_never_panics() {
        for writer in [Container::write_to, Container::write_to_v1] {
            let c = sample();
            let mut buf = Vec::new();
            writer(&c, &mut buf).unwrap();
            for i in 0..buf.len() {
                let mut mutated = buf.clone();
                mutated[i] ^= 0xFF;
                // Any single corrupt byte must produce Ok or a typed error —
                // never a panic or an absurd allocation.
                let _ = Container::read_from(&mut mutated.as_slice());
                let _ = ContainerIndex::read_from(&mut std::io::Cursor::new(&mutated));
            }
        }
    }
}
