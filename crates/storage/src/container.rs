//! The `UCPT` container: a self-describing checkpoint file.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "UCPT" | version u32
//! header_len u32 | header JSON bytes | header crc32c u32
//! section_count u32
//! per section:
//!   name_len u16 | name bytes
//!   dtype u8 | rank u8 | dims u64 × rank
//!   payload_len u64 | payload bytes (dtype-encoded) | crc32c u32
//! ```
//!
//! The JSON header carries structured metadata (model config, parallel
//! strategy, iteration, flat layout, ...) and stays human-inspectable —
//! the role the pickled dictionary plays in a `.pt` checkpoint. Tensor
//! payloads are stored in their logical dtype, so a bf16 model copy costs
//! two bytes per element while the fp32 master costs four.

use std::io::{Read, Write};
use std::path::Path;

use ucp_tensor::{DType, Shape, Tensor};

use crate::commit::AtomicFile;
use crate::crc::{crc32c, Crc32c};
use crate::{Result, StorageError};

const MAGIC: &[u8; 4] = b"UCPT";
const VERSION: u32 = 1;

/// Cap on the declared header length; any larger value is corruption,
/// not a header we should try to allocate.
const MAX_HEADER_LEN: usize = 256 * 1024 * 1024;

/// Block size for streaming payloads through the CRC hasher.
const CRC_BLOCK: usize = 64 * 1024;

/// Read exactly `len` declared bytes without trusting `len` for the
/// allocation: the buffer grows only as data actually arrives (via
/// [`Read::take`]), so a corrupt length field hits EOF long before it
/// can exhaust memory.
fn read_bytes_bounded<R: Read>(r: &mut R, len: usize, what: &str) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    r.take(len as u64).read_to_end(&mut buf)?;
    if buf.len() != len {
        return Err(StorageError::Malformed(format!(
            "{what}: declared {len} bytes, file ends after {}",
            buf.len()
        )));
    }
    Ok(buf)
}

/// A named tensor inside a container.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Section name (parameter name or state key).
    pub name: String,
    /// The tensor payload.
    pub tensor: Tensor,
}

/// An in-memory checkpoint container.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Container {
    /// JSON metadata header.
    pub header: String,
    /// Tensor sections, in insertion order.
    pub sections: Vec<Section>,
}

impl Container {
    /// Empty container with a header.
    pub fn new(header: impl Into<String>) -> Container {
        Container {
            header: header.into(),
            sections: Vec::new(),
        }
    }

    /// Append a tensor section.
    pub fn push(&mut self, name: impl Into<String>, tensor: Tensor) {
        self.sections.push(Section {
            name: name.into(),
            tensor,
        });
    }

    /// Find a section by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| &s.tensor)
    }

    /// Serialized size in bytes (what will be written).
    pub fn encoded_len(&self) -> usize {
        let mut n = 4 + 4 + 4 + self.header.len() + 4 + 4;
        for s in &self.sections {
            n += 2 + s.name.len() + 1 + 1 + 8 * s.tensor.shape().rank() + 8;
            n += s.tensor.num_elements() * s.tensor.dtype().size_bytes() + 4;
        }
        n
    }

    /// Serialize into a writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        let header = self.header.as_bytes();
        w.write_all(&(header.len() as u32).to_le_bytes())?;
        w.write_all(header)?;
        w.write_all(&crc32c(header).to_le_bytes())?;
        w.write_all(&(self.sections.len() as u32).to_le_bytes())?;
        for s in &self.sections {
            let name = s.name.as_bytes();
            w.write_all(&(name.len() as u16).to_le_bytes())?;
            w.write_all(name)?;
            w.write_all(&[s.tensor.dtype().tag()])?;
            let dims = s.tensor.shape().dims();
            w.write_all(&[dims.len() as u8])?;
            for d in dims {
                w.write_all(&(*d as u64).to_le_bytes())?;
            }
            let mut payload =
                Vec::with_capacity(s.tensor.num_elements() * s.tensor.dtype().size_bytes());
            s.tensor.dtype().encode(s.tensor.as_slice(), &mut payload);
            w.write_all(&(payload.len() as u64).to_le_bytes())?;
            w.write_all(&payload)?;
            w.write_all(&crc32c(&payload).to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserialize from a reader, verifying all checksums.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Container> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(StorageError::BadVersion(version));
        }
        let header_len = read_u32(r)? as usize;
        if header_len > MAX_HEADER_LEN {
            return Err(StorageError::Malformed(format!(
                "header length {header_len} exceeds cap {MAX_HEADER_LEN}"
            )));
        }
        let header = read_bytes_bounded(r, header_len, "header")?;
        let header_crc = read_u32(r)?;
        if crc32c(&header) != header_crc {
            return Err(StorageError::ChecksumMismatch {
                what: "header".into(),
            });
        }
        let header = String::from_utf8(header)
            .map_err(|_| StorageError::Malformed("header is not UTF-8".into()))?;
        let count = read_u32(r)? as usize;
        // Do not trust `count` for the allocation either; grow on demand.
        let mut sections = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            let name_len = read_u16(r)? as usize;
            let name = read_bytes_bounded(r, name_len, "section name")?;
            let name = String::from_utf8(name)
                .map_err(|_| StorageError::Malformed("section name is not UTF-8".into()))?;
            let mut tag = [0u8; 2];
            r.read_exact(&mut tag)?;
            let dtype = DType::from_tag(tag[0])
                .ok_or_else(|| StorageError::Malformed(format!("bad dtype tag {}", tag[0])))?;
            let rank = tag[1] as usize;
            let mut dims = Vec::with_capacity(rank.min(64));
            let mut elems: usize = 1;
            for _ in 0..rank {
                let d = usize::try_from(read_u64(r)?).map_err(|_| {
                    StorageError::Malformed(format!("section {name}: dimension exceeds usize"))
                })?;
                elems = elems.checked_mul(d).ok_or_else(|| {
                    StorageError::Malformed(format!("section {name}: shape overflows"))
                })?;
                dims.push(d);
            }
            let expected = elems.checked_mul(dtype.size_bytes()).ok_or_else(|| {
                StorageError::Malformed(format!("section {name}: payload size overflows"))
            })?;
            let payload_len = read_u64(r)? as usize;
            let shape = Shape::new(dims);
            if payload_len != expected {
                return Err(StorageError::Malformed(format!(
                    "section {name}: payload {payload_len} bytes, shape {shape} implies {expected}"
                )));
            }
            // Stream the payload through the hasher in fixed-size blocks:
            // the checksum is computed in the same pass as the read, and
            // the buffer only grows as real file bytes arrive, so a
            // corrupt length can never force a giant up-front allocation.
            let mut payload = Vec::with_capacity(payload_len.min(1 << 20));
            let mut block = [0u8; CRC_BLOCK];
            let mut remaining = payload_len;
            let mut h = Crc32c::new();
            let timing = ucp_telemetry::enabled();
            let mut crc_ns = 0u64;
            while remaining > 0 {
                let n = CRC_BLOCK.min(remaining);
                r.read_exact(&mut block[..n])?;
                let t = timing.then(std::time::Instant::now);
                h.update(&block[..n]);
                if let Some(t) = t {
                    crc_ns += t.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                }
                payload.extend_from_slice(&block[..n]);
                remaining -= n;
            }
            let verified = h.finish();
            if timing {
                ucp_telemetry::observe("storage/crc_ns", crc_ns);
                ucp_telemetry::count("storage/crc_bytes", payload_len as u64);
            }
            let crc = read_u32(r)?;
            if verified != crc {
                return Err(StorageError::ChecksumMismatch { what: name });
            }
            let values = dtype
                .decode(&payload, shape.num_elements())
                .ok_or_else(|| StorageError::Malformed(format!("section {name}: short payload")))?;
            let tensor = Tensor::from_vec(values, shape)
                .map_err(|e| StorageError::Malformed(e.to_string()))?
                .cast(dtype);
            sections.push(Section { name, tensor });
        }
        Ok(Container { header, sections })
    }

    /// Write to a file path (creating parent directories). The container
    /// is staged to `<path>.tmp` and renamed into place, so readers see
    /// either the old container or the complete new one; this variant
    /// skips the fsyncs (atomic against concurrent readers, not against
    /// power loss).
    pub fn write_file(&self, path: &Path) -> Result<()> {
        self.write_file_impl(path, false)
    }

    /// Write to a file path through the full crash-consistent commit
    /// protocol (stage, fsync, rename, fsync parent directory). The
    /// serialization cost and the durability cost show up as separate
    /// telemetry spans (`storage/write` vs `storage/fsync`).
    pub fn write_file_durable(&self, path: &Path) -> Result<()> {
        self.write_file_impl(path, true)
    }

    fn write_file_impl(&self, path: &Path, durable: bool) -> Result<()> {
        let staged = AtomicFile::create(path)?;
        // Absolute span paths (via record_span) so the serialize/fsync
        // split reads the same no matter which phase is open above us.
        let t = ucp_telemetry::enabled().then(std::time::Instant::now);
        {
            let mut w = staged.writer();
            self.write_to(&mut w)?;
            w.flush()?;
        }
        if let Some(t) = t {
            ucp_telemetry::global().record_span("storage/write", t.elapsed());
            ucp_telemetry::count("storage/bytes_written", self.encoded_len() as u64);
        }
        if durable {
            let t = ucp_telemetry::enabled().then(std::time::Instant::now);
            staged.commit()?;
            if let Some(t) = t {
                ucp_telemetry::global().record_span("storage/fsync", t.elapsed());
            }
        } else {
            staged.publish_unsynced()?;
        }
        Ok(())
    }

    /// Read from a file path.
    pub fn read_file(path: &Path) -> Result<Container> {
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        Container::read_from(&mut r)
    }
}

/// Metadata of one section, read without its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section name.
    pub name: String,
    /// Logical dtype.
    pub dtype: DType,
    /// Tensor shape.
    pub shape: Shape,
    /// Payload bytes on disk.
    pub payload_len: u64,
}

/// A container's header and section index, read by *skipping* payloads —
/// O(header) instead of O(file). Backs fast inspection and metadata-only
/// planning over large checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerIndex {
    /// JSON metadata header (checksum verified).
    pub header: String,
    /// Per-section metadata, in file order.
    pub sections: Vec<SectionInfo>,
}

impl ContainerIndex {
    /// Read the index from a seekable reader.
    pub fn read_from<R: Read + std::io::Seek>(r: &mut R) -> Result<ContainerIndex> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(StorageError::BadVersion(version));
        }
        let header_len = read_u32(r)? as usize;
        if header_len > MAX_HEADER_LEN {
            return Err(StorageError::Malformed(format!(
                "header length {header_len} exceeds cap {MAX_HEADER_LEN}"
            )));
        }
        let header = read_bytes_bounded(r, header_len, "header")?;
        let header_crc = read_u32(r)?;
        if crc32c(&header) != header_crc {
            return Err(StorageError::ChecksumMismatch {
                what: "header".into(),
            });
        }
        let header = String::from_utf8(header)
            .map_err(|_| StorageError::Malformed("header is not UTF-8".into()))?;
        let count = read_u32(r)? as usize;
        let mut sections = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            let name_len = read_u16(r)? as usize;
            let name = read_bytes_bounded(r, name_len, "section name")?;
            let name = String::from_utf8(name)
                .map_err(|_| StorageError::Malformed("section name is not UTF-8".into()))?;
            let mut tag = [0u8; 2];
            r.read_exact(&mut tag)?;
            let dtype = DType::from_tag(tag[0])
                .ok_or_else(|| StorageError::Malformed(format!("bad dtype tag {}", tag[0])))?;
            let rank = tag[1] as usize;
            let mut dims = Vec::with_capacity(rank.min(64));
            for _ in 0..rank {
                let d = usize::try_from(read_u64(r)?).map_err(|_| {
                    StorageError::Malformed(format!("section {name}: dimension exceeds usize"))
                })?;
                dims.push(d);
            }
            let payload_len = read_u64(r)?;
            // Skip the payload and its checksum. A corrupt length must
            // not wrap negative when cast for the relative seek.
            let skip = payload_len
                .checked_add(4)
                .and_then(|n| i64::try_from(n).ok())
                .ok_or_else(|| {
                    StorageError::Malformed(format!(
                        "section {name}: payload length {payload_len} overflows seek"
                    ))
                })?;
            r.seek(std::io::SeekFrom::Current(skip))?;
            sections.push(SectionInfo {
                name,
                dtype,
                shape: Shape::new(dims),
                payload_len,
            });
        }
        // Relative seeks past EOF succeed silently, so a truncated final
        // payload would otherwise index as present — verify the cursor
        // never left the file.
        let pos = r.stream_position()?;
        let end = r.seek(std::io::SeekFrom::End(0))?;
        if pos > end {
            return Err(StorageError::Malformed("file truncated mid-section".into()));
        }
        Ok(ContainerIndex { header, sections })
    }

    /// Read the index from a file.
    pub fn read_file(path: &Path) -> Result<ContainerIndex> {
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        ContainerIndex::read_from(&mut r)
    }

    /// Find a section by name.
    pub fn get(&self, name: &str) -> Option<&SectionInfo> {
        self.sections.iter().find(|s| s.name == name)
    }
}

fn read_u16<R: Read>(r: &mut R) -> Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_tensor::DetRng;

    fn sample() -> Container {
        let rng = DetRng::new(1);
        let mut c = Container::new(r#"{"iteration": 42, "strategy": "tp2_pp1_dp2"}"#);
        c.push("a.weight", Tensor::randn([4, 3], 1.0, &rng.derive("a")));
        c.push(
            "b.bias",
            Tensor::randn([7], 1.0, &rng.derive("b")).cast(DType::BF16),
        );
        c.push("scalar", Tensor::scalar(3.5));
        c
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), c.encoded_len());
        let back = Container::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.header, c.header);
        assert_eq!(back.sections.len(), 3);
        for (orig, read) in c.sections.iter().zip(&back.sections) {
            assert_eq!(orig.name, read.name);
            assert_eq!(orig.tensor.dtype(), read.tensor.dtype());
            assert!(orig.tensor.bitwise_eq(&read.tensor), "{}", orig.name);
        }
    }

    #[test]
    fn bf16_sections_are_half_size() {
        let rng = DetRng::new(2);
        let t = Tensor::randn([1000], 1.0, &rng.derive("t"));
        let mut c32 = Container::new("{}");
        c32.push("w", t.clone());
        let mut c16 = Container::new("{}");
        c16.push("w", t.cast(DType::BF16));
        let diff = c32.encoded_len() - c16.encoded_len();
        assert_eq!(diff, 2000, "bf16 payload halves 4000 → 2000 bytes");
    }

    #[test]
    fn corruption_is_detected() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        // Flip one payload byte somewhere after the header.
        let idx = buf.len() - 10;
        buf[idx] ^= 0x01;
        match Container::read_from(&mut buf.as_slice()) {
            Err(StorageError::ChecksumMismatch { .. }) | Err(StorageError::Malformed(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Container::read_from(&mut &b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, StorageError::BadMagic));
    }

    #[test]
    fn truncated_file_is_io_error() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(Container::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ucpt_container_test");
        let path = dir.join("nested/dir/test.ucpt");
        let c = sample();
        c.write_file(&path).unwrap();
        let back = Container::read_file(&path).unwrap();
        assert_eq!(back, c.clone());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_write_file_roundtrip() {
        let dir = std::env::temp_dir().join("ucpt_container_durable_test");
        let path = dir.join("test.ucpt");
        let c = sample();
        c.write_file_durable(&path).unwrap();
        let back = Container::read_file(&path).unwrap();
        assert_eq!(back, c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn get_by_name() {
        let c = sample();
        assert!(c.get("a.weight").is_some());
        assert!(c.get("missing").is_none());
    }

    #[test]
    fn index_matches_full_read() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        let index = ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(index.header, c.header);
        assert_eq!(index.sections.len(), c.sections.len());
        for (info, full) in index.sections.iter().zip(&c.sections) {
            assert_eq!(info.name, full.name);
            assert_eq!(info.dtype, full.tensor.dtype());
            assert_eq!(&info.shape, full.tensor.shape());
            assert_eq!(
                info.payload_len as usize,
                full.tensor.num_elements() * full.tensor.dtype().size_bytes()
            );
        }
        assert!(index.get("a.weight").is_some());
        assert!(index.get("nope").is_none());
    }

    #[test]
    fn index_skips_corrupt_payloads_but_catches_bad_header() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        // Corrupt a payload byte: the index never reads it, so indexing
        // succeeds (payload verification belongs to the full read). The
        // first section's payload starts after the file preamble and the
        // section's name/dtype/rank/dims/len fields.
        let idx = 4 + 4 + 4 + c.header.len() + 4 + 4 + 2 + "a.weight".len() + 1 + 1 + 16 + 8;
        buf[idx] ^= 1;
        assert!(matches!(
            Container::read_from(&mut buf.as_slice()),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        assert!(ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).is_ok());
        // Corrupt the header: the index must fail.
        buf[12] ^= 1;
        assert!(ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).is_err());
    }

    /// Hand-rolled container bytes with attacker-controlled geometry:
    /// one F32 section named "w" with the given dims and payload length
    /// (and no payload bytes at all).
    fn raw_container(dims: &[u64], payload_len: u64) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(MAGIC);
        b.extend_from_slice(&VERSION.to_le_bytes());
        let header = b"{}";
        b.extend_from_slice(&(header.len() as u32).to_le_bytes());
        b.extend_from_slice(header);
        b.extend_from_slice(&crc32c(header).to_le_bytes());
        b.extend_from_slice(&1u32.to_le_bytes());
        let name = b"w";
        b.extend_from_slice(&(name.len() as u16).to_le_bytes());
        b.extend_from_slice(name);
        b.push(DType::F32.tag());
        b.push(dims.len() as u8);
        for d in dims {
            b.extend_from_slice(&d.to_le_bytes());
        }
        b.extend_from_slice(&payload_len.to_le_bytes());
        b
    }

    #[test]
    fn oversized_header_len_is_rejected_not_allocated() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        // header_len lives at bytes 8..12.
        buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Container::read_from(&mut buf.as_slice()),
            Err(StorageError::Malformed(_))
        ));
        assert!(matches!(
            ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)),
            Err(StorageError::Malformed(_))
        ));
    }

    #[test]
    fn shape_overflow_is_malformed_not_panic() {
        let buf = raw_container(&[u64::MAX, u64::MAX], 16);
        assert!(matches!(
            Container::read_from(&mut buf.as_slice()),
            Err(StorageError::Malformed(_))
        ));
    }

    #[test]
    fn huge_payload_len_hits_eof_not_oom() {
        // A "valid" terabyte-scale section on a tiny file: the streamed
        // read must fail at EOF after at most one block, never allocate
        // the declared size up front.
        let buf = raw_container(&[1 << 38], 4 << 38);
        assert!(matches!(
            Container::read_from(&mut buf.as_slice()),
            Err(StorageError::Io(_))
        ));
    }

    #[test]
    fn index_seek_overflow_is_malformed_not_wrapped() {
        // payload_len near u64::MAX used to wrap negative through the
        // `as i64` cast and seek *backwards*; it must be rejected.
        let buf = raw_container(&[4], u64::MAX);
        assert!(matches!(
            ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)),
            Err(StorageError::Malformed(_))
        ));
    }

    #[test]
    fn index_detects_truncated_final_payload() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        // Chop off most of the final section's payload: the skip-seek
        // lands past EOF, which must surface as Malformed, not Ok.
        buf.truncate(buf.len() - 16);
        assert!(ContainerIndex::read_from(&mut std::io::Cursor::new(&buf)).is_err());
    }

    #[test]
    fn byte_flip_fuzz_never_panics() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_to(&mut buf).unwrap();
        for i in 0..buf.len() {
            let mut mutated = buf.clone();
            mutated[i] ^= 0xFF;
            // Any single corrupt byte must produce Ok or a typed error —
            // never a panic or an absurd allocation.
            let _ = Container::read_from(&mut mutated.as_slice());
            let _ = ContainerIndex::read_from(&mut std::io::Cursor::new(&mutated));
        }
    }
}
