//! Evaluation harness: reproduces every table and figure of the paper's
//! evaluation section (§4) on the simulator substrate.
//!
//! Each `figN` function runs the corresponding experiment and returns a
//! structured result with a paper-style text rendering; the `figures`
//! binary drives them and writes CSV/TXT artifacts under `results/`.
//! Criterion benches in `benches/` cover the efficiency figures and the
//! design-choice ablations called out in DESIGN.md.

pub mod cadence;
pub mod correctness;
pub mod efficiency;
pub mod load_scaling;
pub mod micro;
pub mod perfgate;
pub mod report;

pub use cadence::{CadenceResult, CadenceRow};
pub use correctness::{fig10, fig6, fig7, fig8, fig9, CurveSet, Table3};
pub use efficiency::{fig11, fig12, Fig11Result, Fig12Result};
pub use load_scaling::{fig13, Fig13Result, ScaleRow};
pub use perfgate::{check, render_markdown, GateRow, MetricSpec, DEFAULT_TOLERANCE};
