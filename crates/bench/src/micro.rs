//! The `ucp bench` microbenchmark: raw throughput of the byte-moving hot
//! paths, emitted as a `ucp-metrics-v1` [`Report`] (`BENCH_ops.json`).
//!
//! Each probe times `k` repeats of one hot loop and records them as a
//! span (count = repeats; `min_secs` is the best pass, which the perf
//! gate derives throughput from) plus a counter holding the bytes one
//! pass moves. The probes:
//!
//! - `bench/crc_sliced` — the production slicing-by-8 CRC-32C kernel.
//! - `bench/crc_bytewise` — the classic byte-at-a-time loop (a local
//!   copy; the production oracle is `#[cfg(test)]`). The ratio of the two
//!   is the `crc_speedup` metric the acceptance gate holds ≥ 3×.
//! - `bench/crc_blocks` — per-block table construction at the container's
//!   `RANGE_CRC_BLOCK` granularity.
//! - `bench/range_read` — a verified whole-section
//!   [`ContainerIndex::read_section_range_with`] against a real on-disk
//!   container, scratch buffers reused across passes.
//! - `bench/fig13_load` — the fig13 (fast) ranged-load wall time through
//!   the 64 MiB/s throttled device; sleep-dominated, hence stable across
//!   machines. Skipped in `--fast` runs.

use std::time::Instant;

use ucp_storage::{Container, ContainerIndex, RangeScratch, RANGE_CRC_BLOCK};
use ucp_telemetry::{CounterStat, Report, SpanStat};
use ucp_tensor::{DetRng, Tensor};

use crate::load_scaling::fig13;
use crate::report::scratch_dir;

/// Payload bytes the CRC probes hash per pass (full mode).
const CRC_BYTES: usize = 8 * 1024 * 1024;
/// Elements of the section the range-read probe fetches (full mode).
const RANGE_ELEMS: usize = 1024 * 1024;
/// Timed repeats per probe (full mode).
const REPEATS: usize = 5;

/// The byte-at-a-time reference loop, kept here (not in `ucp-storage`,
/// where the oracle is test-only) so the microbench can measure the
/// speedup the slicing kernel buys on this exact machine.
fn crc32c_bytewise(bytes: &[u8]) -> u32 {
    const POLY: u32 = 0x82F6_3B78;
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *e = crc;
        }
        t
    });
    let mut state = !0u32;
    for &b in bytes {
        state = (state >> 8) ^ table[((state ^ u32::from(b)) & 0xFF) as usize];
    }
    !state
}

/// Deterministic pseudo-random payload (xorshift; no RNG dependency and
/// no wall-clock seed, so every run hashes identical bytes).
fn payload(len: usize) -> Vec<u8> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Time `k` passes of `f`, folding them into one span stat.
fn time_k<F: FnMut()>(path: &str, k: usize, mut f: F) -> SpanStat {
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for _ in 0..k {
        let t = Instant::now();
        f();
        let secs = t.elapsed().as_secs_f64();
        total += secs;
        min = min.min(secs);
        max = max.max(secs);
    }
    SpanStat {
        path: path.to_string(),
        count: k as u64,
        total_secs: total,
        min_secs: min,
        max_secs: max,
    }
}

/// Run the microbenchmark. `fast` shrinks payloads/repeats and skips the
/// fig13 load probe — for quick local iteration; CI gates on full runs.
pub fn run(fast: bool) -> Report {
    let (crc_bytes, range_elems, repeats) = if fast {
        (CRC_BYTES / 8, RANGE_ELEMS / 8, 3)
    } else {
        (CRC_BYTES, RANGE_ELEMS, REPEATS)
    };
    let mut report = Report {
        label: "ops_micro".into(),
        ..Report::default()
    };
    let mut counter = |name: &str, value: u64| {
        report.counters.push(CounterStat {
            name: name.to_string(),
            value,
        });
    };

    // CRC kernels, all over the same payload so ratios are meaningful.
    // `black_box` keeps the checksums observable so the loops can't be
    // optimized away.
    use std::hint::black_box;
    let data = payload(crc_bytes);
    let sliced = time_k("bench/crc_sliced", repeats, || {
        black_box(ucp_storage::crc::crc32c(black_box(&data)));
    });
    let bytewise = time_k("bench/crc_bytewise", repeats, || {
        black_box(crc32c_bytewise(black_box(&data)));
    });
    let blocks = time_k("bench/crc_blocks", repeats, || {
        black_box(ucp_storage::crc::crc32c_blocks(
            black_box(&data),
            RANGE_CRC_BLOCK as usize,
        ));
    });
    counter("bench/crc_sliced_bytes", crc_bytes as u64);
    counter("bench/crc_bytewise_bytes", crc_bytes as u64);
    counter("bench/crc_blocks_bytes", crc_bytes as u64);

    // Verified section-range read against a real container on disk.
    let dir = scratch_dir("bench_micro");
    let path = dir.join("probe.ucpt");
    let rng = DetRng::new(0xBE11C);
    let mut c = Container::new("{}");
    c.push("w", Tensor::randn([range_elems], 1.0, &rng.derive("w")));
    c.write_file(&path).expect("write probe container");
    let index = ContainerIndex::read_file(&path).expect("index probe container");
    let info = index.get("w").expect("probe section");
    let pass_bytes = info.range_read_bytes(&(0..range_elems))
        + 4 * info.payload_len.div_ceil(info.crc_block as u64);
    let mut f = std::io::BufReader::new(std::fs::File::open(&path).expect("open probe"));
    let mut scratch = RangeScratch::default();
    let range = time_k("bench/range_read", repeats, || {
        index
            .read_section_range_with(&mut f, "w", 0..range_elems, &mut scratch)
            .expect("range read");
    });
    counter("bench/range_read_bytes", pass_bytes);
    std::fs::remove_dir_all(&dir).ok();

    report.spans.extend([sliced, bytewise, blocks, range]);

    // End-to-end ranged load through the throttled device (fig13 fast
    // variant). Wall time is sleep-dominated at 64 MiB/s, which is what
    // makes it a stable CI gate.
    if !fast {
        let fig = fig13(true);
        let secs: f64 = fig.rows.iter().map(|r| r.ranged_secs).sum();
        report.spans.push(SpanStat {
            path: "bench/fig13_load".into(),
            count: fig.rows.len() as u64,
            total_secs: secs,
            min_secs: fig
                .rows
                .iter()
                .map(|r| r.ranged_secs)
                .fold(f64::INFINITY, f64::min),
            max_secs: fig.rows.iter().map(|r| r.ranged_secs).fold(0.0, f64::max),
        });
        let read: u64 = fig.rows.iter().map(|r| r.ranged_bytes_read).sum();
        report.counters.push(CounterStat {
            name: "bench/fig13_bytes_read".into(),
            value: read,
        });
    }

    report.spans.sort_by(|a, b| a.path.cmp(&b.path));
    report.counters.sort_by(|a, b| a.name.cmp(&b.name));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytewise_copy_matches_production_kernel() {
        let data = payload(4096 + 3);
        assert_eq!(crc32c_bytewise(&data), ucp_storage::crc::crc32c(&data));
        assert_eq!(crc32c_bytewise(b""), 0);
        assert_eq!(crc32c_bytewise(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn fast_run_emits_all_gated_crc_and_range_metrics() {
        let report = run(true);
        for span in [
            "bench/crc_sliced",
            "bench/crc_bytewise",
            "bench/crc_blocks",
            "bench/range_read",
        ] {
            let s = report.span(span).unwrap_or_else(|| panic!("span {span}"));
            assert!(s.count >= 1);
            assert!(s.min_secs > 0.0, "{span} measured nothing");
            let bytes = report.counter(&format!("{span}_bytes")).unwrap();
            assert!(bytes > 0);
        }
        // Fast mode skips the fig13 probe.
        assert!(report.span("bench/fig13_load").is_none());
        // And the artifact round-trips through the shared schema (JSON
        // rounds seconds to 6 decimals, so compare serialized forms).
        let back = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(back.to_json(), report.to_json());
    }
}
