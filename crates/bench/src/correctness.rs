//! Correctness experiments: Figs. 6–10 and Table 3.
//!
//! Each experiment trains a *Source* configuration, checkpoints midway,
//! converts the distributed checkpoint to a universal checkpoint, resumes
//! one or more *Target* configurations, and compares the resumed loss
//! curves against the uninterrupted baseline. The paper accepts a ±0.02
//! band (GPU nondeterminism); our substrate is deterministic, so observed
//! divergences are orders of magnitude smaller.

use std::path::Path;

use ucp_core::convert::ConvertOptions;
use ucp_model::ModelConfig;
use ucp_optim::LrSchedule;
use ucp_parallel::{ParallelConfig, ZeroStage};
use ucp_trainer::{
    convert_checkpoint, run_elastic, train_run, ElasticPhase, ResumeMode, TrainConfig, TrainPlan,
};

use crate::report::{scratch_dir, Curve};

/// Iteration counts for an experiment: total run length and the
/// mid-training checkpoint step.
#[derive(Debug, Clone, Copy)]
pub struct Schedule {
    /// Total iterations (paper: 200 for GPT).
    pub total: u64,
    /// Checkpoint/transform iteration (paper: 100).
    pub ckpt: u64,
}

impl Schedule {
    /// Paper-scale (200 iters, convert at 100) or fast (30/15) schedule.
    pub fn new(fast: bool) -> Schedule {
        if fast {
            Schedule {
                total: 30,
                ckpt: 15,
            }
        } else {
            Schedule {
                total: 200,
                ckpt: 100,
            }
        }
    }

    /// Table 3's sampling iterations: first post-resume iteration plus five
    /// evenly spaced points up to the end.
    pub fn sample_points(&self) -> Vec<u64> {
        let mut pts = vec![self.ckpt + 1];
        let span = self.total - self.ckpt;
        for k in 1..=5 {
            pts.push(self.ckpt + span * k / 5);
        }
        pts.dedup();
        pts
    }
}

/// The result of one source → targets experiment.
#[derive(Debug, Clone)]
pub struct CurveSet {
    /// Experiment title.
    pub title: String,
    /// Source strategy label.
    pub source_label: String,
    /// Iteration the checkpoint was taken and conversion happened.
    pub ckpt_iteration: u64,
    /// Uninterrupted source run (the paper's gray line).
    pub baseline: Curve,
    /// Resumed target runs.
    pub resumed: Vec<Curve>,
}

impl CurveSet {
    /// Paper-style text rendering: per-target max divergence from the
    /// baseline over the resumed segment.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}\n  source {} | checkpoint + convert @ iteration {}\n",
            self.title, self.source_label, self.ckpt_iteration
        );
        out.push_str(&format!(
            "  baseline final loss: {:.4}\n",
            self.baseline.last().unwrap_or(f64::NAN)
        ));
        for c in &self.resumed {
            let div = crate::report::max_divergence(&self.baseline, c);
            out.push_str(&format!(
                "  target {:<24} final {:.4}  max |Δloss| vs baseline {:.2e}  (paper band: 0.02)\n",
                c.label,
                c.last().unwrap_or(f64::NAN),
                div
            ));
        }
        out
    }

    /// Worst divergence across all targets.
    pub fn worst_divergence(&self) -> f64 {
        self.resumed
            .iter()
            .map(|c| crate::report::max_divergence(&self.baseline, c))
            .fold(0.0, f64::max)
    }
}

/// Build the experiment training config for a model + strategy.
pub fn experiment_config(
    model: ModelConfig,
    parallel: ParallelConfig,
    seed: u64,
    total: u64,
) -> TrainConfig {
    let mut cfg = TrainConfig::quick(model, parallel, seed);
    cfg.global_batch = 8;
    cfg.micro_batch = 2;
    cfg.lr = LrSchedule {
        max_lr: 1e-3,
        min_lr: 1e-4,
        warmup_iters: 10,
        decay_iters: total,
    };
    cfg
}

/// Train `source` fresh with a checkpoint at `sched.ckpt`, convert it to a
/// universal checkpoint, and return the source's loss curve.
pub fn run_source(source: &TrainConfig, dir: &Path, sched: Schedule) -> Curve {
    let plan = TrainPlan {
        config: source.clone(),
        until_iteration: sched.ckpt,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(sched.ckpt),
        checkpoint_dir: Some(dir.to_path_buf()),
    };
    let run = train_run(&plan).expect("source run");
    convert_checkpoint(dir, sched.ckpt, &ConvertOptions::default()).expect("conversion");
    Curve {
        label: source.parallel.label(),
        points: run.losses,
    }
}

/// Resume `target` from the universal checkpoint in `dir` and return its
/// loss curve over the resumed segment.
pub fn resume_target(target: &TrainConfig, dir: &Path, sched: Schedule) -> Curve {
    let plan = TrainPlan {
        config: target.clone(),
        until_iteration: sched.total,
        resume: ResumeMode::Universal {
            dir: dir.to_path_buf(),
            step: sched.ckpt,
        },
        checkpoint_every: None,
        checkpoint_dir: None,
    };
    let run = train_run(&plan).expect("target resume");
    Curve {
        label: target.parallel.label(),
        points: run.losses,
    }
}

/// Uninterrupted baseline run of a config to `sched.total`.
pub fn run_baseline(cfg: &TrainConfig, sched: Schedule) -> Curve {
    let run = train_run(&TrainPlan::simple(cfg.clone(), sched.total)).expect("baseline run");
    Curve {
        label: format!("{} (uninterrupted)", cfg.parallel.label()),
        points: run.losses,
    }
}

/// The 11 target strategies of Fig. 6 / Table 3 (TP/PP/DP/SP + ZeRO).
pub fn fig6_targets() -> Vec<ParallelConfig> {
    use ZeroStage::{Zero1, Zero2, Zero3};
    vec![
        ParallelConfig::new(2, 2, 2, 1, Zero1),
        ParallelConfig::new(1, 1, 1, 1, Zero1),
        ParallelConfig::new(1, 2, 2, 1, Zero1),
        ParallelConfig::new(2, 1, 1, 1, Zero1),
        ParallelConfig::new(1, 1, 2, 2, Zero1),
        ParallelConfig::new(2, 1, 2, 1, Zero1),
        ParallelConfig::new(2, 2, 1, 1, Zero1),
        ParallelConfig::new(1, 1, 4, 1, Zero2),
        ParallelConfig::new(2, 1, 2, 1, Zero2),
        ParallelConfig::new(1, 1, 2, 1, Zero3),
        ParallelConfig::new(1, 1, 4, 1, Zero3),
    ]
}

/// Fig. 6: single GPT source (TP2·PP2·DP2, ZeRO-1) to eleven targets.
pub fn fig6(fast: bool) -> CurveSet {
    let sched = Schedule::new(fast);
    let seed = 2024;
    let model = ModelConfig::gpt3_tiny();
    let src_parallel = ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1);
    let source = experiment_config(model.clone(), src_parallel, seed, sched.total);
    let dir = scratch_dir("fig6");

    run_source(&source, &dir, sched);
    let baseline = run_baseline(&source, sched);
    let resumed = fig6_targets()
        .into_iter()
        .map(|target| {
            let cfg = experiment_config(model.clone(), target, seed, sched.total);
            resume_target(&cfg, &dir, sched)
        })
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    CurveSet {
        title: "Fig. 6: one Source (GPT-3-scaled, TP2/PP2/DP2, ZeRO-1) → 11 Targets".into(),
        source_label: src_parallel.label(),
        ckpt_iteration: sched.ckpt,
        baseline,
        resumed,
    }
}

/// Table 3 view over the Fig. 6 curves: losses at the paper's sampled
/// iterations per target strategy.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Sampled iterations (paper: 101, 120, 140, 160, 180, 200).
    pub iterations: Vec<u64>,
    /// `(strategy label, losses at each sampled iteration)`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table3 {
    /// Build from a Fig. 6 curve set.
    pub fn from_curves(set: &CurveSet, sched: Schedule) -> Table3 {
        let iterations = sched.sample_points();
        let rows = set
            .resumed
            .iter()
            .map(|c| {
                let losses = iterations
                    .iter()
                    .map(|it| c.at(*it).unwrap_or(f64::NAN))
                    .collect();
                (c.label.clone(), losses)
            })
            .collect();
        Table3 { iterations, rows }
    }

    /// Paper-style table rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("Table 3: training losses after loading UCP checkpoints\n");
        out.push_str(&format!("{:<24}", "target strategy"));
        for it in &self.iterations {
            out.push_str(&format!("  loss@{it:<5}"));
        }
        out.push('\n');
        for (label, losses) in &self.rows {
            out.push_str(&format!("{label:<24}"));
            for l in losses {
                out.push_str(&format!("  {l:<10.4}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Fig. 7: multiple GPT sources to a single target (TP2·PP2·DP1).
pub fn fig7(fast: bool) -> CurveSet {
    let sched = Schedule::new(fast);
    let seed = 2025;
    let model = ModelConfig::gpt3_tiny();
    use ZeroStage::{Zero1, Zero2, Zero3};
    let sources = vec![
        ParallelConfig::new(1, 1, 1, 1, Zero1),
        ParallelConfig::new(2, 1, 2, 1, Zero1),
        ParallelConfig::new(1, 2, 2, 1, Zero1),
        ParallelConfig::new(2, 2, 1, 1, Zero1),
        ParallelConfig::new(1, 1, 4, 1, Zero2),
        ParallelConfig::new(1, 1, 2, 1, Zero3),
    ];
    let target_parallel = ParallelConfig::new(2, 2, 1, 1, Zero1);
    let target = experiment_config(model.clone(), target_parallel, seed, sched.total);
    // All sources share the seed, so one uninterrupted run is the baseline
    // for every resumed curve.
    let baseline_cfg = experiment_config(model.clone(), sources[0], seed, sched.total);
    let baseline = run_baseline(&baseline_cfg, sched);

    let mut resumed = Vec::new();
    for src_parallel in sources {
        let dir = scratch_dir(&format!("fig7_{}", src_parallel.label()));
        let source = experiment_config(model.clone(), src_parallel, seed, sched.total);
        run_source(&source, &dir, sched);
        let mut curve = resume_target(&target, &dir, sched);
        curve.label = format!("from {}", src_parallel.label());
        resumed.push(curve);
        std::fs::remove_dir_all(&dir).ok();
    }
    CurveSet {
        title: "Fig. 7: multiple Sources → one Target (TP2/PP2/DP1)".into(),
        source_label: "various".into(),
        ckpt_iteration: sched.ckpt,
        baseline,
        resumed,
    }
}

/// Fig. 8: LLaMA architecture, TP2·PP2·DP2 → {TP2·PP1·DP2, TP2·PP2·DP1}.
pub fn fig8(fast: bool) -> CurveSet {
    arch_experiment(
        "Fig. 8: LLaMA-scaled architecture",
        ModelConfig::llama_tiny(),
        ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1),
        vec![
            ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1),
            ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1),
        ],
        2026,
        fast,
    )
}

/// Fig. 9: BLOOM architecture (24 layers), TP2·PP6·DP2 → TP2·PP6·DP1
/// (elastic shrink; the paper's TP2·PP24·DP8 → DP4 scaled down per the
/// DESIGN.md substitution table).
pub fn fig9(fast: bool) -> CurveSet {
    arch_experiment(
        "Fig. 9: BLOOM-scaled architecture (elastic shrink)",
        ModelConfig::bloom_tiny(),
        ParallelConfig::new(2, 6, 2, 1, ZeroStage::Zero1),
        vec![ParallelConfig::new(2, 6, 1, 1, ZeroStage::Zero1)],
        2027,
        fast,
    )
}

/// Fig. 10: Mixtral-style MoE, TP1·PP2·DP4 → TP2·PP2·DP2.
pub fn fig10(fast: bool) -> CurveSet {
    arch_experiment(
        "Fig. 10: Mixtral-MoE-scaled architecture",
        ModelConfig::moe_tiny(),
        ParallelConfig::new(1, 2, 4, 1, ZeroStage::Zero1),
        vec![ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1)],
        2028,
        fast,
    )
}

fn arch_experiment(
    title: &str,
    model: ModelConfig,
    src_parallel: ParallelConfig,
    targets: Vec<ParallelConfig>,
    seed: u64,
    fast: bool,
) -> CurveSet {
    let sched = Schedule::new(fast);
    let dir = scratch_dir(&format!("arch_{}", src_parallel.label()));
    let source = experiment_config(model.clone(), src_parallel, seed, sched.total);
    run_source(&source, &dir, sched);
    let baseline = run_baseline(&source, sched);
    let resumed = targets
        .into_iter()
        .map(|t| {
            let cfg = experiment_config(model.clone(), t, seed, sched.total);
            resume_target(&cfg, &dir, sched)
        })
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    CurveSet {
        title: title.into(),
        source_label: src_parallel.label(),
        ckpt_iteration: sched.ckpt,
        baseline,
        resumed,
    }
}

/// Supplementary resilience experiment (the paper's Fig. 1 scenario as a
/// measured curve): a GPT run loses half its 8 "GPUs" mid-training,
/// continues on 4 via UCP, then scales back out to 8 — stitched against an
/// uninterrupted baseline.
pub fn elastic_demo(fast: bool) -> CurveSet {
    let sched = Schedule::new(fast);
    let seed = 2029;
    let model = ModelConfig::gpt3_tiny();
    let full = ParallelConfig::new(2, 1, 4, 1, ZeroStage::Zero1);
    let degraded = ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1);
    let base_cfg = experiment_config(model, full, seed, sched.total);

    let baseline = run_baseline(&base_cfg, sched);

    let third = sched.total / 3;
    let phases = [
        ElasticPhase {
            parallel: full,
            until_iteration: third,
        },
        ElasticPhase {
            parallel: degraded,
            until_iteration: 2 * third,
        },
        ElasticPhase {
            parallel: full,
            until_iteration: sched.total,
        },
    ];
    let dir = scratch_dir("elastic_demo");
    let results = run_elastic(base_cfg, &phases, &dir).expect("elastic schedule");
    std::fs::remove_dir_all(&dir).ok();
    let stitched = Curve {
        label: "elastic 8→4→8 GPUs (UCP)".into(),
        points: results.into_iter().flat_map(|r| r.losses).collect(),
    };
    CurveSet {
        title: "Elastic resilience: GPU failure at 1/3, recovery at 2/3 (paper Fig. 1 scenario)"
            .into(),
        source_label: full.label(),
        ckpt_iteration: third,
        baseline,
        resumed: vec![stitched],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sample_points() {
        let s = Schedule {
            total: 200,
            ckpt: 100,
        };
        assert_eq!(s.sample_points(), vec![101, 120, 140, 160, 180, 200]);
        let f = Schedule::new(true);
        assert!(f.sample_points().first() == Some(&(f.ckpt + 1)));
    }

    #[test]
    fn fig6_target_list_matches_table3() {
        let t = fig6_targets();
        assert_eq!(t.len(), 11);
        assert_eq!(t[0].label(), "tp2_pp2_dp2_sp1_z1");
        assert_eq!(t[4].label(), "tp1_pp1_dp2_sp2_z1");
        assert_eq!(t[10].label(), "tp1_pp1_dp4_sp1_z3");
    }
}
