//! Result rendering and persistence helpers shared by the experiments.

use std::path::{Path, PathBuf};

/// A labelled loss curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Configuration label (e.g. `tp2_pp2_dp2_sp1_z1`).
    pub label: String,
    /// `(iteration, mean LM loss)` points.
    pub points: Vec<(u64, f64)>,
}

impl Curve {
    /// Loss at an iteration, if recorded.
    pub fn at(&self, iteration: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|(it, _)| *it == iteration)
            .map(|(_, l)| *l)
    }

    /// Final recorded loss.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|(_, l)| *l)
    }
}

/// Maximum |loss(a) − loss(b)| over iterations both curves share.
pub fn max_divergence(a: &Curve, b: &Curve) -> f64 {
    let mut worst = 0.0f64;
    for (it, la) in &a.points {
        if let Some(lb) = b.at(*it) {
            worst = worst.max((la - lb).abs());
        }
    }
    worst
}

/// Render curves as an aligned CSV (`iteration, <label...>`).
pub fn curves_to_csv(curves: &[Curve]) -> String {
    let mut iters: Vec<u64> = curves
        .iter()
        .flat_map(|c| c.points.iter().map(|(it, _)| *it))
        .collect();
    iters.sort_unstable();
    iters.dedup();
    let mut out = String::from("iteration");
    for c in curves {
        out.push(',');
        out.push_str(&c.label);
    }
    out.push('\n');
    for it in iters {
        out.push_str(&it.to_string());
        for c in curves {
            out.push(',');
            if let Some(l) = c.at(it) {
                out.push_str(&format!("{l:.6}"))
            }
        }
        out.push('\n');
    }
    out
}

/// Where figure artifacts land (`results/` at the workspace root by
/// default; override with `UCP_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("UCP_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("results")
        })
}

/// Write an artifact file under the results directory.
pub fn write_artifact(name: &str, contents: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Fresh scratch directory for checkpoints.
pub fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ucp_bench_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_lookup_and_divergence() {
        let a = Curve {
            label: "a".into(),
            points: vec![(1, 5.0), (2, 4.0)],
        };
        let b = Curve {
            label: "b".into(),
            points: vec![(1, 5.1), (2, 4.0), (3, 3.0)],
        };
        assert_eq!(a.at(2), Some(4.0));
        assert_eq!(a.at(9), None);
        assert_eq!(a.last(), Some(4.0));
        assert!((max_divergence(&a, &b) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn csv_renders_sparse_columns() {
        let a = Curve {
            label: "a".into(),
            points: vec![(1, 5.0)],
        };
        let b = Curve {
            label: "b".into(),
            points: vec![(2, 4.0)],
        };
        let csv = curves_to_csv(&[a, b]);
        assert!(csv.starts_with("iteration,a,b\n"));
        assert!(csv.contains("1,5.000000,\n"));
        assert!(csv.contains("2,,4.000000\n"));
    }
}
