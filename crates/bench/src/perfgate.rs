//! The CI perf-regression gate behind `ucp bench --check`.
//!
//! Gated metrics are *derived* from any `ucp-metrics-v1` report (see
//! [`crate::micro`]): throughputs come out of span best-pass seconds and
//! per-pass byte counters, wall times straight from span totals. A check
//! compares each metric's current value against the committed baseline
//! (`results/BENCH_baseline.json`) with a relative noise tolerance
//! (default 25%, sized for shared CI runners), plus optional absolute
//! floors that hold regardless of what the baseline says — the CRC
//! speedup floor of 3× is the repo's acceptance criterion for the
//! slicing-by-8 kernel. Re-baselining after an intentional change is
//! documented in DESIGN.md ("Hot paths and perf gates").

use ucp_telemetry::Report;

/// Default relative tolerance (fraction) before a drift counts as a
/// regression.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Absolute floor on the sliced-vs-bytewise CRC speedup (the acceptance
/// criterion), enforced on the *current* run independent of the baseline.
pub const CRC_SPEEDUP_FLOOR: f64 = 3.0;

/// One gated metric: how to derive it from a report and which direction
/// is good.
pub struct MetricSpec {
    /// Metric name as shown in tables and errors.
    pub name: &'static str,
    /// Unit label for rendering.
    pub unit: &'static str,
    /// `true`: regressions are *drops* (throughputs). `false`:
    /// regressions are *rises* (wall times).
    pub higher_is_better: bool,
    /// Absolute floor the current value must clear regardless of the
    /// baseline (only meaningful for higher-is-better metrics).
    pub floor: Option<f64>,
    /// Derive the metric from a report; `None` when the report lacks the
    /// underlying spans/counters.
    pub derive: fn(&Report) -> Option<f64>,
}

/// GB/s of a probe whose span best pass moved `<span>_bytes` bytes.
fn gbps(report: &Report, span: &str) -> Option<f64> {
    let s = report.span(span)?;
    let bytes = report.counter(&format!("{span}_bytes"))?;
    if s.min_secs <= 0.0 {
        return None;
    }
    Some(bytes as f64 / s.min_secs / 1e9)
}

/// The gated metric registry. Order is presentation order.
pub fn metrics() -> Vec<MetricSpec> {
    vec![
        MetricSpec {
            name: "crc_sliced_gbps",
            unit: "GB/s",
            higher_is_better: true,
            floor: None,
            derive: |r| gbps(r, "bench/crc_sliced"),
        },
        MetricSpec {
            name: "crc_speedup",
            unit: "x",
            higher_is_better: true,
            floor: Some(CRC_SPEEDUP_FLOOR),
            derive: |r| {
                let sliced = gbps(r, "bench/crc_sliced")?;
                let bytewise = gbps(r, "bench/crc_bytewise")?;
                (bytewise > 0.0).then(|| sliced / bytewise)
            },
        },
        MetricSpec {
            name: "crc_blocks_gbps",
            unit: "GB/s",
            higher_is_better: true,
            floor: None,
            derive: |r| gbps(r, "bench/crc_blocks"),
        },
        MetricSpec {
            name: "range_read_gbps",
            unit: "GB/s",
            higher_is_better: true,
            floor: None,
            derive: |r| gbps(r, "bench/range_read"),
        },
        MetricSpec {
            name: "fig13_load_secs",
            unit: "s",
            higher_is_better: false,
            floor: None,
            derive: |r| {
                let s = r.span("bench/fig13_load")?;
                Some(s.total_secs)
            },
        },
    ]
}

/// One metric's verdict.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Metric name.
    pub name: &'static str,
    /// Unit label.
    pub unit: &'static str,
    /// Baseline value, if present in the baseline report.
    pub baseline: Option<f64>,
    /// Current value, if derivable from the current report.
    pub current: Option<f64>,
    /// `false` when this metric regressed (or could not be compared).
    pub pass: bool,
    /// Human-readable verdict detail.
    pub note: String,
}

/// Compare `current` against `baseline` at `tolerance`. Returns the
/// per-metric rows (presentation order) and the overall verdict. A metric
/// present in the baseline but missing from the current run fails — a
/// silently skipped probe must not read as a pass. Metrics absent from
/// *both* reports are skipped (e.g. fig13 in a `--fast` baseline).
pub fn check(baseline: &Report, current: &Report, tolerance: f64) -> (Vec<GateRow>, bool) {
    let mut rows = Vec::new();
    let mut all_pass = true;
    for spec in metrics() {
        let base = (spec.derive)(baseline);
        let cur = (spec.derive)(current);
        let (pass, note) = match (base, cur) {
            (None, None) => {
                rows.push(GateRow {
                    name: spec.name,
                    unit: spec.unit,
                    baseline: None,
                    current: None,
                    pass: true,
                    note: "absent from both reports; skipped".into(),
                });
                continue;
            }
            (Some(_), None) => (false, "missing from current run".to_string()),
            (None, Some(_)) => (true, "no baseline; informational".to_string()),
            (Some(b), Some(c)) => {
                if spec.higher_is_better {
                    let bound = b * (1.0 - tolerance);
                    if c < bound {
                        (
                            false,
                            format!(
                                "regressed: {c:.3} < {bound:.3} (baseline {b:.3} − {tol}%)",
                                tol = (tolerance * 100.0).round()
                            ),
                        )
                    } else {
                        (
                            true,
                            format!("within {}% of baseline", (tolerance * 100.0).round()),
                        )
                    }
                } else {
                    let bound = b * (1.0 + tolerance);
                    if c > bound {
                        (
                            false,
                            format!(
                                "regressed: {c:.3} > {bound:.3} (baseline {b:.3} + {tol}%)",
                                tol = (tolerance * 100.0).round()
                            ),
                        )
                    } else {
                        (
                            true,
                            format!("within {}% of baseline", (tolerance * 100.0).round()),
                        )
                    }
                }
            }
        };
        // Absolute floor: checked on the current value even when the
        // relative comparison passed (a drifting baseline must not erode
        // the acceptance criterion).
        let (pass, note) = match (spec.floor, cur) {
            (Some(floor), Some(c)) if c < floor => (
                false,
                format!("below absolute floor {floor:.1}{}", spec.unit),
            ),
            _ => (pass, note),
        };
        all_pass &= pass;
        rows.push(GateRow {
            name: spec.name,
            unit: spec.unit,
            baseline: base,
            current: cur,
            pass,
            note,
        });
    }
    (rows, all_pass)
}

fn fmt(v: Option<f64>, unit: &str) -> String {
    match v {
        Some(v) => format!("{v:.3} {unit}"),
        None => "—".into(),
    }
}

/// Render gate rows as a GitHub-flavored markdown table — CI pipes this
/// into `$GITHUB_STEP_SUMMARY` so regressions are diagnosable from the
/// Actions page.
pub fn render_markdown(rows: &[GateRow]) -> String {
    let mut out = String::from("| metric | baseline | current | verdict |\n|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} {} |\n",
            r.name,
            fmt(r.baseline, r.unit),
            fmt(r.current, r.unit),
            if r.pass { "✅" } else { "❌" },
            r.note,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_telemetry::{CounterStat, SpanStat};

    /// A synthetic ops_micro report with the given per-probe seconds.
    fn report(sliced: f64, bytewise: f64, range: f64, fig13: Option<f64>) -> Report {
        let span = |path: &str, secs: f64| SpanStat {
            path: path.into(),
            count: 1,
            total_secs: secs,
            min_secs: secs,
            max_secs: secs,
        };
        let counter = |name: &str, value: u64| CounterStat {
            name: name.into(),
            value,
        };
        let mut spans = vec![
            span("bench/crc_sliced", sliced),
            span("bench/crc_bytewise", bytewise),
            span("bench/crc_blocks", bytewise),
            span("bench/range_read", range),
        ];
        if let Some(secs) = fig13 {
            spans.push(span("bench/fig13_load", secs));
        }
        Report {
            label: "ops_micro".into(),
            spans,
            counters: vec![
                counter("bench/crc_sliced_bytes", 1_000_000_000),
                counter("bench/crc_bytewise_bytes", 1_000_000_000),
                counter("bench/crc_blocks_bytes", 1_000_000_000),
                counter("bench/range_read_bytes", 1_000_000_000),
            ],
            histograms: Vec::new(),
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(0.2, 1.0, 0.5, Some(30.0));
        let (rows, ok) = check(&r, &r, DEFAULT_TOLERANCE);
        assert!(ok, "{}", render_markdown(&rows));
        assert_eq!(rows.len(), metrics().len());
        // crc_speedup derives to 5× here, clearing the 3× floor.
        let speedup = rows.iter().find(|r| r.name == "crc_speedup").unwrap();
        assert!((speedup.current.unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn doctored_baseline_fails_the_gate() {
        // The committed-numbers scenario the acceptance criterion names:
        // doctor the baseline to claim 10× today's CRC throughput and the
        // gate must fail the current run.
        let current = report(0.2, 1.0, 0.5, Some(30.0));
        let doctored = report(0.02, 1.0, 0.5, Some(30.0));
        let (rows, ok) = check(&doctored, &current, DEFAULT_TOLERANCE);
        assert!(!ok);
        let row = rows.iter().find(|r| r.name == "crc_sliced_gbps").unwrap();
        assert!(!row.pass, "{}", row.note);
        assert!(row.note.contains("regressed"));
    }

    #[test]
    fn wall_time_regression_fails_in_the_other_direction() {
        let base = report(0.2, 1.0, 0.5, Some(30.0));
        // 50% slower fig13 load: over the 25% tolerance, must fail.
        let slow = report(0.2, 1.0, 0.5, Some(45.0));
        let (rows, ok) = check(&base, &slow, DEFAULT_TOLERANCE);
        assert!(!ok);
        assert!(
            !rows
                .iter()
                .find(|r| r.name == "fig13_load_secs")
                .unwrap()
                .pass
        );
        // And a *faster* wall time passes.
        let fast = report(0.2, 1.0, 0.5, Some(10.0));
        let (_, ok) = check(&base, &fast, DEFAULT_TOLERANCE);
        assert!(ok);
    }

    #[test]
    fn speedup_floor_holds_even_when_baseline_is_low() {
        // Baseline itself below the floor: relative check passes, the
        // absolute 3× floor still fails the gate.
        let weak = report(0.5, 1.0, 0.5, None);
        let (rows, ok) = check(&weak, &weak, DEFAULT_TOLERANCE);
        assert!(!ok);
        let row = rows.iter().find(|r| r.name == "crc_speedup").unwrap();
        assert!(row.note.contains("floor"));
    }

    #[test]
    fn probe_missing_from_current_fails_but_missing_everywhere_skips() {
        let with_fig = report(0.2, 1.0, 0.5, Some(30.0));
        let without_fig = report(0.2, 1.0, 0.5, None);
        // Baseline has fig13, current doesn't → fail.
        let (rows, ok) = check(&with_fig, &without_fig, DEFAULT_TOLERANCE);
        assert!(!ok);
        assert!(rows
            .iter()
            .any(|r| r.name == "fig13_load_secs" && !r.pass && r.note.contains("missing")));
        // Absent from both → skipped, gate passes.
        let (rows, ok) = check(&without_fig, &without_fig, DEFAULT_TOLERANCE);
        assert!(ok);
        assert!(rows
            .iter()
            .any(|r| r.name == "fig13_load_secs" && r.note.contains("skipped")));
    }

    #[test]
    fn tolerance_widens_the_band() {
        let base = report(0.2, 1.0, 0.5, None);
        let slower = report(0.26, 1.0, 0.5, None); // 23% throughput drop
        assert!(check(&base, &slower, 0.25).1);
        assert!(!check(&base, &slower, 0.10).1);
    }

    #[test]
    fn markdown_table_lists_every_metric() {
        let r = report(0.2, 1.0, 0.5, Some(30.0));
        let (rows, _) = check(&r, &r, DEFAULT_TOLERANCE);
        let table = render_markdown(&rows);
        for spec in metrics() {
            assert!(table.contains(spec.name), "missing {}", spec.name);
        }
        assert!(table.starts_with("| metric |"));
    }
}
