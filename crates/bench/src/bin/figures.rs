//! Regenerates the paper's evaluation tables and figures.
//!
//! ```text
//! figures --experiment all [--fast]
//! figures --experiment fig6          # also emits Table 3
//! ```
//!
//! Text renderings go to stdout; machine-readable CSV/TXT artifacts are
//! written under `results/` (override with `UCP_RESULTS_DIR`). The
//! efficiency figures additionally land as `BENCH_fig*.json` in the
//! `ucp-metrics-v1` schema shared with `ucp --metrics-out`.

use ucp_bench::correctness::{
    elastic_demo, fig10, fig6, fig7, fig8, fig9, CurveSet, Schedule, Table3,
};
use ucp_bench::efficiency::{fig11, fig12};
use ucp_bench::load_scaling::fig13;
use ucp_bench::report::{curves_to_csv, write_artifact};

fn usage() -> ! {
    eprintln!(
        "usage: figures --experiment <fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|all> [--fast]"
    );
    std::process::exit(2)
}

fn emit_curves(name: &str, set: &CurveSet) {
    println!("{}", set.render());
    let mut curves = vec![set.baseline.clone()];
    curves.extend(set.resumed.iter().cloned());
    match write_artifact(&format!("{name}.csv"), &curves_to_csv(&curves)) {
        Ok(path) => println!("  wrote {}\n", path.display()),
        Err(e) => eprintln!("  could not write {name}.csv: {e}"),
    }
    if let Err(e) = write_artifact(&format!("{name}.txt"), &set.render()) {
        eprintln!("  could not write {name}.txt: {e}");
    }
}

fn run(which: &str, fast: bool) {
    match which {
        "fig6" => {
            let set = fig6(fast);
            emit_curves("fig6", &set);
            let table = Table3::from_curves(&set, Schedule::new(fast));
            println!("{}", table.render());
            if let Err(e) = write_artifact("table3.txt", &table.render()) {
                eprintln!("  could not write table3.txt: {e}");
            }
        }
        "fig7" => emit_curves("fig7", &fig7(fast)),
        "fig8" => emit_curves("fig8", &fig8(fast)),
        "fig9" => emit_curves("fig9", &fig9(fast)),
        "fig10" => emit_curves("fig10", &fig10(fast)),
        "elastic" => emit_curves("elastic", &elastic_demo(fast)),
        "fig11" => {
            let r = fig11();
            println!("{}", r.render());
            if let Err(e) = write_artifact("fig11.txt", &r.render()) {
                eprintln!("  could not write fig11.txt: {e}");
            }
            if let Err(e) = write_artifact("BENCH_fig11.json", &r.to_report().to_json()) {
                eprintln!("  could not write BENCH_fig11.json: {e}");
            }
        }
        "fig12" => {
            let r = fig12();
            println!("{}", r.render());
            if let Err(e) = write_artifact("fig12.txt", &r.render()) {
                eprintln!("  could not write fig12.txt: {e}");
            }
            if let Err(e) = write_artifact("BENCH_fig12.json", &r.to_report().to_json()) {
                eprintln!("  could not write BENCH_fig12.json: {e}");
            }
        }
        "fig13" => {
            let r = fig13(fast);
            println!("{}", r.render());
            if let Err(e) = write_artifact("fig13.txt", &r.render()) {
                eprintln!("  could not write fig13.txt: {e}");
            }
            // BENCH_load.json feeds the CI read-amplification gate.
            if let Err(e) = write_artifact("BENCH_load.json", &r.to_report().to_json()) {
                eprintln!("  could not write BENCH_load.json: {e}");
            }
        }
        "all" => {
            for exp in [
                "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "elastic",
            ] {
                run(exp, fast);
            }
        }
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = None;
    let mut fast = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--experiment" | "-e" => {
                i += 1;
                which = args.get(i).cloned();
            }
            "--fast" => fast = true,
            _ => usage(),
        }
        i += 1;
    }
    let Some(which) = which else { usage() };
    run(&which, fast);
}
