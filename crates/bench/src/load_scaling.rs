//! Fig. 13-style load-scaling experiment: universal-load cost under the
//! ranged read path (section-range reads + coalescing + session atom
//! cache) versus whole-file atom reads, across reconfiguration targets.
//!
//! A TP2×PP2 source checkpoint is converted to a universal checkpoint,
//! then every rank of each target strategy is loaded twice through a
//! bandwidth-throttled device — once per read strategy — under one
//! [`LoadSession`] per run, so the bytes-moved difference shows up as
//! wall-clock time. The telemetry counters give the exact read
//! amplification: `load/bytes_read / load/bytes_needed`, which the CI
//! perf gate asserts stays ≤ 1.15 on the ranged path.

use ucp_core::convert::ConvertOptions;
use ucp_core::load::{LoadOptions, LoadSession, DEFAULT_ALIGNMENT};
use ucp_model::ModelConfig;
use ucp_parallel::{ParallelConfig, ZeroStage};
use ucp_storage::Device;
use ucp_telemetry::{CounterStat, Report, SpanStat};
use ucp_trainer::{convert_checkpoint, train_run, ResumeMode, TrainConfig, TrainPlan};

use crate::report::scratch_dir;

/// Simulated device bandwidth (MiB/s): low enough that bytes moved
/// dominate the load wall time, as on a bandwidth-bound NVMe tier.
const MIBPS: u64 = 64;

/// Iterations before the measured checkpoint.
const SOURCE_ITERS: u64 = 2;

/// One target strategy's measurements.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Target label, e.g. `tp2_pp2_dp1`.
    pub target: String,
    /// Target TP degree (the reshard axis the ranged path slices on).
    pub tp: usize,
    /// Wall seconds loading every target rank with ranged reads.
    pub ranged_secs: f64,
    /// Wall seconds loading every target rank with whole-file reads.
    pub full_secs: f64,
    /// Ranged path: bytes fetched from disk (block-aligned + CRC table).
    pub ranged_bytes_read: u64,
    /// Ranged path: exact bytes the ranks' shards needed.
    pub ranged_bytes_needed: u64,
    /// Full path: bytes read (whole atom files).
    pub full_bytes_read: u64,
    /// Ranged path: atom-cache hits across the session.
    pub cache_hits: u64,
    /// Ranged path: atom-cache misses across the session.
    pub cache_misses: u64,
}

impl ScaleRow {
    /// Read amplification of the ranged path (1.0 = reads exactly what is
    /// needed; the CI gate asserts ≤ 1.15).
    pub fn amplification(&self) -> f64 {
        self.ranged_bytes_read as f64 / self.ranged_bytes_needed.max(1) as f64
    }

    /// Ranged-path speedup over whole-file reads.
    pub fn speedup(&self) -> f64 {
        self.full_secs / self.ranged_secs.max(1e-12)
    }
}

/// Fig. 13 result.
#[derive(Debug, Clone)]
pub struct Fig13Result {
    /// Per-target measurements.
    pub rows: Vec<ScaleRow>,
}

impl Fig13Result {
    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Fig. 13: universal load, ranged reads + atom cache vs whole-file reads\n",
        );
        out.push_str(&format!(
            "{:<14} {:>11} {:>11} {:>8} {:>12} {:>12} {:>12} {:>7} {:>6} {:>6}\n",
            "target",
            "ranged (s)",
            "full (s)",
            "speedup",
            "read B",
            "needed B",
            "full read B",
            "ampl.",
            "hits",
            "miss"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>11.4} {:>11.4} {:>7.2}x {:>12} {:>12} {:>12} {:>7.3} {:>6} {:>6}\n",
                r.target,
                r.ranged_secs,
                r.full_secs,
                r.speedup(),
                r.ranged_bytes_read,
                r.ranged_bytes_needed,
                r.full_bytes_read,
                r.amplification(),
                r.cache_hits,
                r.cache_misses,
            ));
        }
        out.push_str("(ranged path reads only the block-aligned ranges each shard touches;\n");
        out.push_str(" DP replicas of a (tp, pp) slice share one session atom cache)\n");
        out
    }

    /// Re-express the table in the `ucp-metrics-v1` schema shared with
    /// `ucp --metrics-out`, so CI consumes one artifact format.
    pub fn to_report(&self) -> Report {
        let mut report = Report {
            label: "load_scaling".into(),
            ..Report::default()
        };
        let span = |path: String, secs: f64| SpanStat {
            path,
            count: 1,
            total_secs: secs,
            min_secs: secs,
            max_secs: secs,
        };
        for r in &self.rows {
            report
                .spans
                .push(span(format!("load/{}/ranged", r.target), r.ranged_secs));
            report
                .spans
                .push(span(format!("load/{}/full", r.target), r.full_secs));
            for (name, value) in [
                ("tp", r.tp as u64),
                ("ranged_bytes_read", r.ranged_bytes_read),
                ("ranged_bytes_needed", r.ranged_bytes_needed),
                ("full_bytes_read", r.full_bytes_read),
                ("cache_hits", r.cache_hits),
                ("cache_misses", r.cache_misses),
            ] {
                report.counters.push(CounterStat {
                    name: format!("load/{}/{name}", r.target),
                    value,
                });
            }
        }
        report.spans.sort_by(|a, b| a.path.cmp(&b.path));
        report.counters.sort_by(|a, b| a.name.cmp(&b.name));
        report
    }
}

fn target_label(p: &ParallelConfig) -> String {
    format!("tp{}_pp{}_dp{}", p.tp, p.pp, p.dp)
}

/// Load every rank of `target` through one session, returning wall
/// seconds plus the session's telemetry counters.
fn timed_session_load(
    dir: &std::path::Path,
    step: u64,
    target: &ParallelConfig,
    ranged: bool,
) -> (f64, Report) {
    let rec = ucp_telemetry::global();
    rec.reset();
    rec.set_enabled(true);
    let opts = LoadOptions {
        workers: 2,
        device: Device::with_mibps(MIBPS),
        ranged,
    };
    let t0 = std::time::Instant::now();
    let session = LoadSession::open(dir, step, opts).expect("open universal checkpoint");
    for rank in 0..target.world_size() {
        session
            .load_rank(target, rank, DEFAULT_ALIGNMENT)
            .expect("load rank");
    }
    let secs = t0.elapsed().as_secs_f64();
    let report = rec.report("load_scaling");
    rec.set_enabled(false);
    (secs, report)
}

/// Fig. 13: train a TP2×PP2 source, convert, then load every rank of each
/// reconfiguration target with ranged and whole-file reads.
pub fn fig13(fast: bool) -> Fig13Result {
    let dir = scratch_dir("fig13");
    let source = ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1);
    let cfg = TrainConfig::quick(ModelConfig::gpt3_tiny(), source, 21);
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: SOURCE_ITERS,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(SOURCE_ITERS),
        checkpoint_dir: Some(dir.clone()),
    })
    .expect("fig13 source run");
    convert_checkpoint(&dir, SOURCE_ITERS, &ConvertOptions::default()).expect("fig13 conversion");

    let mut targets = vec![
        ParallelConfig::new(1, 1, 4, 1, ZeroStage::Zero1),
        ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1),
        ParallelConfig::new(4, 1, 1, 1, ZeroStage::Zero1),
    ];
    if fast {
        // CI smoke keeps one DP-heavy and one TP-heavy target.
        targets.truncate(2);
    }

    let mut rows = Vec::new();
    for target in &targets {
        let counter = |rep: &Report, name: &str| rep.counter(name).unwrap_or(0);
        let (ranged_secs, ranged_rep) = timed_session_load(&dir, SOURCE_ITERS, target, true);
        let (full_secs, full_rep) = timed_session_load(&dir, SOURCE_ITERS, target, false);
        rows.push(ScaleRow {
            target: target_label(target),
            tp: target.tp,
            ranged_secs,
            full_secs,
            ranged_bytes_read: counter(&ranged_rep, "load/bytes_read"),
            ranged_bytes_needed: counter(&ranged_rep, "load/bytes_needed"),
            full_bytes_read: counter(&full_rep, "load/bytes_read"),
            cache_hits: counter(&ranged_rep, "load/cache_hits"),
            cache_misses: counter(&ranged_rep, "load/cache_misses"),
        });
    }
    std::fs::remove_dir_all(&dir).ok();
    Fig13Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_report_round_trips_through_the_shared_schema() {
        let result = Fig13Result {
            rows: vec![ScaleRow {
                target: "tp2_pp2_dp1".into(),
                tp: 2,
                ranged_secs: 0.5,
                full_secs: 1.5,
                ranged_bytes_read: 1100,
                ranged_bytes_needed: 1000,
                full_bytes_read: 4000,
                cache_hits: 7,
                cache_misses: 3,
            }],
        };
        assert!((result.rows[0].amplification() - 1.1).abs() < 1e-9);
        assert!((result.rows[0].speedup() - 3.0).abs() < 1e-9);
        let report = result.to_report();
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.label, "load_scaling");
        assert_eq!(
            parsed.counter("load/tp2_pp2_dp1/ranged_bytes_read"),
            Some(1100)
        );
        assert_eq!(parsed.counter("load/tp2_pp2_dp1/cache_hits"), Some(7));
        let span = parsed.span("load/tp2_pp2_dp1/full").unwrap();
        assert!((span.total_secs - 1.5).abs() < 1e-6);
    }
}
