//! Efficiency experiments: Fig. 11 (checkpoint saving cost) and Fig. 12
//! (UCP transformation + loading cost), swept over three model sizes.

use ucp_core::convert::ConvertOptions;
use ucp_model::{ModelConfig, SizePreset};
use ucp_parallel::{ParallelConfig, ZeroStage};
use ucp_storage::layout as disk;
use ucp_telemetry::{CounterStat, Report, SpanStat};
use ucp_trainer::{convert_checkpoint, train_run, ResumeMode, TrainConfig, TrainPlan};

use crate::report::scratch_dir;

/// A one-shot timing rendered as a span row of the shared metrics schema.
fn single_span(path: String, secs: f64) -> SpanStat {
    SpanStat {
        path,
        count: 1,
        total_secs: secs,
        min_secs: secs,
        max_secs: secs,
    }
}

/// Warm-up iterations before the measured checkpoint.
const WARM_ITERS: u64 = 2;

fn sizes() -> [(&'static str, SizePreset); 3] {
    [
        ("small", SizePreset::Small),
        ("medium", SizePreset::Medium),
        ("large", SizePreset::Large),
    ]
}

fn efficiency_config(model: ModelConfig) -> TrainConfig {
    let parallel = ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1);
    let mut cfg = TrainConfig::quick(model, parallel, 77);
    cfg.global_batch = 4;
    cfg.micro_batch = 2;
    cfg
}

/// One row of the Fig. 11 table.
#[derive(Debug, Clone)]
pub struct SaveRow {
    /// Size label.
    pub size: &'static str,
    /// Model parameter count.
    pub params: usize,
    /// Checkpoint bytes on disk.
    pub bytes: u64,
    /// Save seconds in a standard training run.
    pub standard_secs: f64,
    /// Save seconds in a UCP-enabled training run (same code path: UCP
    /// conversion is lazy and does not touch the save side).
    pub ucp_secs: f64,
    /// Whether the two runs produced byte-identical checkpoint trees.
    pub identical: bool,
}

/// Fig. 11 result.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// Per-size measurements.
    pub rows: Vec<SaveRow>,
}

impl Fig11Result {
    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Fig. 11: checkpoint save time, standard vs UCP-enabled training\n");
        out.push_str(&format!(
            "{:<8} {:>12} {:>12} {:>14} {:>14} {:>11}\n",
            "size", "params", "ckpt bytes", "standard (s)", "ucp-on (s)", "identical"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<8} {:>12} {:>12} {:>14.4} {:>14.4} {:>11}\n",
                r.size, r.params, r.bytes, r.standard_secs, r.ucp_secs, r.identical
            ));
        }
        out.push_str(
            "(UCP adds zero save-side cost: conversion is lazy, the save path is unchanged)\n",
        );
        out
    }

    /// Re-express the table in the `ucp-metrics-v1` schema shared with
    /// `ucp --metrics-out`, so CI consumes one artifact format.
    pub fn to_report(&self) -> Report {
        let mut report = Report {
            label: "fig11".into(),
            ..Report::default()
        };
        for r in &self.rows {
            report.spans.push(single_span(
                format!("fig11/{}/save_standard", r.size),
                r.standard_secs,
            ));
            report.spans.push(single_span(
                format!("fig11/{}/save_ucp", r.size),
                r.ucp_secs,
            ));
            report.counters.push(CounterStat {
                name: format!("fig11/{}/params", r.size),
                value: r.params as u64,
            });
            report.counters.push(CounterStat {
                name: format!("fig11/{}/ckpt_bytes", r.size),
                value: r.bytes,
            });
            report.counters.push(CounterStat {
                name: format!("fig11/{}/identical", r.size),
                value: u64::from(r.identical),
            });
        }
        report.spans.sort_by(|a, b| a.path.cmp(&b.path));
        report.counters.sort_by(|a, b| a.name.cmp(&b.name));
        report
    }
}

fn hash_dir(dir: &std::path::Path) -> u64 {
    use ucp_storage::crc::Crc32c;
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    collect_files(dir, &mut files);
    files.sort();
    let mut h = Crc32c::new();
    for f in files {
        // Hash paths relative to the tree root so two runs in different
        // scratch directories compare equal when their contents match.
        let rel = f.strip_prefix(dir).unwrap_or(&f);
        h.update(rel.to_string_lossy().as_bytes());
        if let Ok(bytes) = std::fs::read(&f) {
            h.update(&bytes);
        }
    }
    u64::from(h.finish())
}

fn collect_files(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_files(&p, out);
        } else {
            out.push(p);
        }
    }
}

/// Fig. 11: time the checkpoint save in a standard run and in a
/// UCP-enabled run, across three model sizes, and verify byte-identity.
pub fn fig11() -> Fig11Result {
    let mut rows = Vec::new();
    for (label, preset) in sizes() {
        let model = ModelConfig::sized(preset);
        let params = model.num_parameters();
        let cfg = efficiency_config(model);

        let mut secs = [0.0f64; 2];
        let mut hashes = [0u64; 2];
        let mut bytes = 0u64;
        for (mode, dest) in [(0usize, "std"), (1, "ucp")] {
            // Median of three runs, after one warmup, to damp page-cache
            // and allocator warmup effects.
            let mut samples = Vec::new();
            for attempt in 0..4 {
                let dir = scratch_dir(&format!("fig11_{label}_{dest}"));
                let run = train_run(&TrainPlan {
                    config: cfg.clone(),
                    until_iteration: WARM_ITERS,
                    resume: ResumeMode::Fresh,
                    checkpoint_every: Some(WARM_ITERS),
                    checkpoint_dir: Some(dir.clone()),
                })
                .expect("fig11 run");
                if attempt > 0 {
                    samples.push(run.save_secs);
                }
                // "UCP-enabled" differs only in *later* lazy conversion;
                // the save path is identical, which the byte hash proves.
                hashes[mode] = hash_dir(&disk::step_dir(&dir, WARM_ITERS));
                bytes = disk::dir_size_bytes(&disk::step_dir(&dir, WARM_ITERS));
                std::fs::remove_dir_all(&dir).ok();
            }
            samples.sort_by(f64::total_cmp);
            secs[mode] = samples[samples.len() / 2];
        }
        rows.push(SaveRow {
            size: label,
            params,
            bytes,
            standard_secs: secs[0],
            ucp_secs: secs[1],
            identical: hashes[0] == hashes[1],
        });
    }
    Fig11Result { rows }
}

/// One row of the Fig. 12 table.
#[derive(Debug, Clone)]
pub struct LoadRow {
    /// Size label.
    pub size: &'static str,
    /// Model parameter count.
    pub params: usize,
    /// Native distributed-checkpoint load seconds.
    pub native_load_secs: f64,
    /// Conversion seconds (distributed → universal).
    pub convert_secs: f64,
    /// Universal-checkpoint load seconds.
    pub ucp_load_secs: f64,
    /// Native checkpoint bytes.
    pub native_bytes: u64,
    /// Universal checkpoint bytes.
    pub universal_bytes: u64,
}

impl LoadRow {
    /// Measured wall-clock ratio (convert + UCP load) / native load.
    pub fn measured_ratio(&self) -> f64 {
        (self.convert_secs + self.ucp_load_secs) / self.native_load_secs
    }

    /// Byte-volume ratio under a bandwidth-bound device model: the paper's
    /// regime, where DeepNVMe makes I/O proportional to bytes moved.
    pub fn modeled_ratio(&self) -> f64 {
        let native = self.native_bytes as f64;
        let ucp = self.native_bytes as f64 + 2.0 * self.universal_bytes as f64;
        ucp / native
    }
}

/// Fig. 12 result.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// Per-size measurements.
    pub rows: Vec<LoadRow>,
}

impl Fig12Result {
    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Fig. 12: load time, native distributed vs convert-to-UCP + load-UCP\n");
        out.push_str(&format!(
            "{:<8} {:>12} {:>11} {:>11} {:>11} {:>10} {:>10}\n",
            "size", "params", "native (s)", "convert(s)", "load (s)", "wall×", "bytes×"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<8} {:>12} {:>11.4} {:>11.4} {:>11.4} {:>10.2} {:>10.2}\n",
                r.size,
                r.params,
                r.native_load_secs,
                r.convert_secs,
                r.ucp_load_secs,
                r.measured_ratio(),
                r.modeled_ratio(),
            ));
        }
        out.push_str("(paper reports 1.14x-1.37x on NVMe-bound loads)\n");
        out
    }

    /// Re-express the table in the `ucp-metrics-v1` schema shared with
    /// `ucp --metrics-out`, so CI consumes one artifact format.
    pub fn to_report(&self) -> Report {
        let mut report = Report {
            label: "fig12".into(),
            ..Report::default()
        };
        for r in &self.rows {
            report.spans.push(single_span(
                format!("fig12/{}/native_load", r.size),
                r.native_load_secs,
            ));
            report.spans.push(single_span(
                format!("fig12/{}/convert", r.size),
                r.convert_secs,
            ));
            report.spans.push(single_span(
                format!("fig12/{}/ucp_load", r.size),
                r.ucp_load_secs,
            ));
            report.counters.push(CounterStat {
                name: format!("fig12/{}/params", r.size),
                value: r.params as u64,
            });
            report.counters.push(CounterStat {
                name: format!("fig12/{}/native_bytes", r.size),
                value: r.native_bytes,
            });
            report.counters.push(CounterStat {
                name: format!("fig12/{}/universal_bytes", r.size),
                value: r.universal_bytes,
            });
        }
        report.spans.sort_by(|a, b| a.path.cmp(&b.path));
        report.counters.sort_by(|a, b| a.name.cmp(&b.name));
        report
    }
}

/// Fig. 12: compare native resume time against conversion + universal
/// resume under the *same* strategy (native checkpoints cannot change
/// strategy at all).
pub fn fig12() -> Fig12Result {
    let mut rows = Vec::new();
    for (label, preset) in sizes() {
        let model = ModelConfig::sized(preset);
        let params = model.num_parameters();
        let cfg = efficiency_config(model);
        let dir = scratch_dir(&format!("fig12_{label}"));

        train_run(&TrainPlan {
            config: cfg.clone(),
            until_iteration: WARM_ITERS,
            resume: ResumeMode::Fresh,
            checkpoint_every: Some(WARM_ITERS),
            checkpoint_dir: Some(dir.clone()),
        })
        .expect("fig12 source");
        let native_bytes = disk::dir_size_bytes(&disk::step_dir(&dir, WARM_ITERS));

        // Native resume (same strategy — the only thing native supports).
        let native = train_run(&TrainPlan {
            config: cfg.clone(),
            until_iteration: WARM_ITERS,
            resume: ResumeMode::Native {
                dir: dir.clone(),
                step: WARM_ITERS,
            },
            checkpoint_every: None,
            checkpoint_dir: None,
        })
        .expect("native resume");

        // Lazy conversion + universal resume.
        let t0 = std::time::Instant::now();
        convert_checkpoint(&dir, WARM_ITERS, &ConvertOptions::default()).expect("fig12 conversion");
        let convert_secs = t0.elapsed().as_secs_f64();
        let universal_bytes = disk::dir_size_bytes(&disk::universal_dir(&dir, WARM_ITERS));
        let ucp = train_run(&TrainPlan {
            config: cfg.clone(),
            until_iteration: WARM_ITERS,
            resume: ResumeMode::Universal {
                dir: dir.clone(),
                step: WARM_ITERS,
            },
            checkpoint_every: None,
            checkpoint_dir: None,
        })
        .expect("ucp resume");

        std::fs::remove_dir_all(&dir).ok();
        rows.push(LoadRow {
            size: label,
            params,
            native_load_secs: native.load_secs,
            convert_secs,
            ucp_load_secs: ucp.load_secs,
            native_bytes,
            universal_bytes,
        });
    }
    Fig12Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_report_round_trips_through_the_shared_schema() {
        let result = Fig11Result {
            rows: vec![SaveRow {
                size: "small",
                params: 1000,
                bytes: 4096,
                standard_secs: 0.25,
                ucp_secs: 0.5,
                identical: true,
            }],
        };
        let report = result.to_report();
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.label, "fig11");
        assert_eq!(parsed.counter("fig11/small/ckpt_bytes"), Some(4096));
        assert_eq!(parsed.counter("fig11/small/identical"), Some(1));
        let span = parsed.span("fig11/small/save_ucp").unwrap();
        assert_eq!(span.count, 1);
        assert!((span.total_secs - 0.5).abs() < 1e-6);
    }

    #[test]
    fn fig12_report_exposes_every_phase_span() {
        let result = Fig12Result {
            rows: vec![LoadRow {
                size: "medium",
                params: 2000,
                native_load_secs: 1.0,
                convert_secs: 0.5,
                ucp_load_secs: 1.25,
                native_bytes: 100,
                universal_bytes: 60,
            }],
        };
        let report = result.to_report();
        for path in [
            "fig12/medium/native_load",
            "fig12/medium/convert",
            "fig12/medium/ucp_load",
        ] {
            assert!(report.span(path).is_some(), "missing span {path}");
        }
        assert_eq!(report.counter("fig12/medium/universal_bytes"), Some(60));
    }
}
