//! Checkpoint-cadence sweep: what does `--save-every 1` actually cost?
//!
//! Runs short overlapped training runs at save cadences {1, 2, 4, 8} over
//! a dense model and an MoE model, and measures the two quantities the
//! per-iteration pipeline is built to keep flat:
//!
//! * **blocking stall per save** — the `save/snapshot` + `save/drain` +
//!   `save/publish` spans, i.e. the time training actually stops at a
//!   checkpoint boundary. With persistent meshes, carried assemblers, and
//!   the bounded snapshot pool this must not grow as the cadence tightens.
//! * **exchange bytes per save** — the dirty-filtered all-to-all volume
//!   (`save/exchange_bytes`). Dense models re-exchange everything; MoE
//!   models route only top-k experts per step, so frozen experts drop out
//!   and the steady-state per-save volume collapses.
//!
//! `ci/check_save_stall.py --cadence` gates both on the emitted
//! `BENCH_cadence.json` (shared `ucp-metrics-v1` schema).

use ucp_model::ModelConfig;
use ucp_parallel::{ParallelConfig, ZeroStage};
use ucp_telemetry::{CounterStat, Report, SpanStat};
use ucp_trainer::{train_run_overlapped, ResumeMode, TrainConfig, TrainPlan};

use crate::report::scratch_dir;

/// Iterations per run; every cadence divides it, so a run at cadence K
/// takes exactly `ITERS / K` checkpoints and always saves at the end.
pub const ITERS: u64 = 8;

/// Spans on the training critical path at a save boundary. Mirrors
/// `BLOCKING_SPANS` in `ci/check_save_stall.py`; assembly and atom I/O run
/// on the background writers and are deliberately absent.
const BLOCKING_SPANS: [&str; 3] = ["save/snapshot", "save/drain", "save/publish"];

/// One (model, cadence) cell of the sweep.
#[derive(Debug, Clone)]
pub struct CadenceRow {
    /// Model label (`dense` or `moe`).
    pub model: &'static str,
    /// Save cadence: checkpoint every K iterations.
    pub every: u64,
    /// Checkpoints taken (`ITERS / every`).
    pub saves: u64,
    /// Total seconds training blocked across all saves (blocking spans).
    pub blocking_secs: f64,
    /// Dirty-filtered all-to-all volume across all saves (bytes).
    pub exchange_bytes: u64,
    /// Universal atoms written fresh across all saves.
    pub atoms_written: u64,
    /// Universal atoms hard-linked clean from the prior step.
    pub atoms_skipped: u64,
    /// Saves that reused the persistent mesh instead of building one.
    pub mesh_reuse: u64,
}

impl CadenceRow {
    /// Seconds training blocked per checkpoint.
    pub fn blocking_per_save(&self) -> f64 {
        self.blocking_secs / self.saves.max(1) as f64
    }

    /// Exchange bytes per checkpoint.
    pub fn bytes_per_save(&self) -> u64 {
        self.exchange_bytes / self.saves.max(1)
    }
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct CadenceResult {
    /// Iterations each run trained for.
    pub iters: u64,
    /// One row per (model, cadence) cell.
    pub rows: Vec<CadenceRow>,
}

impl CadenceResult {
    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Checkpoint cadence sweep: per-save cost vs --save-every ({} iters/run)\n",
            self.iters
        );
        out.push_str(&format!(
            "{:<7} {:>6} {:>6} {:>14} {:>14} {:>12} {:>14} {:>10}\n",
            "model",
            "every",
            "saves",
            "block/save(s)",
            "bytes/save",
            "mesh reuse",
            "atoms w/s",
            "skipped%"
        ));
        for r in &self.rows {
            let atoms = r.atoms_written + r.atoms_skipped;
            let skipped_pct = if atoms == 0 {
                0.0
            } else {
                100.0 * r.atoms_skipped as f64 / atoms as f64
            };
            out.push_str(&format!(
                "{:<7} {:>6} {:>6} {:>14.6} {:>14} {:>12} {:>14} {:>9.1}%\n",
                r.model,
                r.every,
                r.saves,
                r.blocking_per_save(),
                r.bytes_per_save(),
                r.mesh_reuse,
                format!("{}/{}", r.atoms_written, r.atoms_skipped),
                skipped_pct,
            ));
        }
        out.push_str(
            "(per-save blocking must stay flat as cadence tightens; MoE steady-state \
             bytes/save must collapse as frozen experts drop out of the exchange)\n",
        );
        out
    }

    /// Re-express the sweep in the `ucp-metrics-v1` schema shared with
    /// `ucp --metrics-out`, so CI consumes one artifact format. Span
    /// `cadence/<model>/every<K>/blocking` carries the run's total
    /// blocking seconds with `count` = saves taken; the per-cell counters
    /// carry the raw save-path volumes.
    pub fn to_report(&self) -> Report {
        let mut report = Report {
            label: "cadence".into(),
            ..Report::default()
        };
        report.counters.push(CounterStat {
            name: "cadence/iters".into(),
            value: self.iters,
        });
        for r in &self.rows {
            let key = format!("cadence/{}/every{}", r.model, r.every);
            report.spans.push(SpanStat {
                path: format!("{key}/blocking"),
                count: r.saves,
                total_secs: r.blocking_secs,
                min_secs: r.blocking_per_save(),
                max_secs: r.blocking_per_save(),
            });
            for (name, value) in [
                ("saves", r.saves),
                ("exchange_bytes", r.exchange_bytes),
                ("atoms_written", r.atoms_written),
                ("atoms_skipped", r.atoms_skipped),
                ("mesh_reuse", r.mesh_reuse),
            ] {
                report.counters.push(CounterStat {
                    name: format!("{key}/{name}"),
                    value,
                });
            }
        }
        report.spans.sort_by(|a, b| a.path.cmp(&b.path));
        report.counters.sort_by(|a, b| a.name.cmp(&b.name));
        report
    }
}

/// The MoE cell's model: `moe_tiny` widened to 32 experts with top-1
/// routing and a short sequence. The stock test config routes 256 tokens
/// top-2 over 8 experts, so every expert is hit every step and nothing is
/// ever clean; production MoE routes a small top-k over many experts,
/// leaving most experts' gradients exactly zero each step — the regime
/// the dirty filter exploits.
fn moe_sparse() -> ModelConfig {
    let mut cfg = ModelConfig::moe_tiny();
    cfg.num_experts = 32;
    cfg.top_k = 1;
    cfg.max_seq_len = 4;
    cfg
}

/// One overlapped run at the given cadence, measured through the global
/// recorder (reset per run so cells don't bleed into each other).
fn run_cell(label: &'static str, model: &ModelConfig, every: u64) -> CadenceRow {
    let parallel = ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1);
    let dir = scratch_dir(&format!("cadence_{label}_{every}"));
    let mut config = TrainConfig::quick(model.clone(), parallel, 29);
    if label == "moe" {
        // Few tokens per step: 2 samples x 4 tokens x top-1 touches at
        // most 8 of the 32 experts per DP replica.
        config.global_batch = 2;
        config.micro_batch = 1;
    }
    let rec = ucp_telemetry::global();
    rec.reset();
    rec.set_enabled(true);
    train_run_overlapped(&TrainPlan {
        config,
        until_iteration: ITERS,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(every),
        checkpoint_dir: Some(dir.clone()),
    })
    .expect("cadence run");
    let report = rec.report("cadence_cell");
    rec.set_enabled(false);
    std::fs::remove_dir_all(&dir).ok();

    let span_secs = |path: &str| report.span(path).map_or(0.0, |s| s.total_secs);
    let counter = |name: &str| report.counter(name).unwrap_or(0);
    CadenceRow {
        model: label,
        every,
        saves: ITERS / every,
        // A cadence-8 run drains its only writer at shutdown, so
        // `save/drain` may be absent; missing blocking spans count as 0.
        blocking_secs: BLOCKING_SPANS.iter().map(|s| span_secs(s)).sum(),
        exchange_bytes: counter("save/exchange_bytes"),
        atoms_written: counter("save/atoms_written"),
        atoms_skipped: counter("save/atoms_skipped"),
        mesh_reuse: counter("save/mesh_reuse"),
    }
}

/// Run the sweep. `fast` keeps only the two cadence endpoints (1 and 8) —
/// the pair the CI gate compares — for quick local iteration.
pub fn run(fast: bool) -> CadenceResult {
    let cadences: &[u64] = if fast { &[1, 8] } else { &[1, 2, 4, 8] };
    let dense = ModelConfig::gpt3_tiny();
    let moe = moe_sparse();
    let mut rows = Vec::new();
    for (label, model) in [("dense", &dense), ("moe", &moe)] {
        for &every in cadences {
            rows.push(run_cell(label, model, every));
        }
    }
    CadenceResult { iters: ITERS, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CadenceResult {
        CadenceResult {
            iters: 8,
            rows: vec![
                CadenceRow {
                    model: "moe",
                    every: 1,
                    saves: 8,
                    blocking_secs: 0.08,
                    exchange_bytes: 4000,
                    atoms_written: 70,
                    atoms_skipped: 10,
                    mesh_reuse: 7,
                },
                CadenceRow {
                    model: "moe",
                    every: 8,
                    saves: 1,
                    blocking_secs: 0.01,
                    exchange_bytes: 1000,
                    atoms_written: 10,
                    atoms_skipped: 0,
                    mesh_reuse: 0,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_the_shared_schema() {
        let report = sample().to_report();
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.label, "cadence");
        assert_eq!(parsed.counter("cadence/iters"), Some(8));
        assert_eq!(parsed.counter("cadence/moe/every1/saves"), Some(8));
        assert_eq!(
            parsed.counter("cadence/moe/every1/exchange_bytes"),
            Some(4000)
        );
        assert_eq!(parsed.counter("cadence/moe/every8/mesh_reuse"), Some(0));
        let span = parsed.span("cadence/moe/every1/blocking").unwrap();
        assert_eq!(span.count, 8);
        assert!((span.total_secs - 0.08).abs() < 1e-9);
    }

    #[test]
    fn per_save_normalization_divides_by_saves() {
        let result = sample();
        let every1 = &result.rows[0];
        assert!((every1.blocking_per_save() - 0.01).abs() < 1e-9);
        assert_eq!(every1.bytes_per_save(), 500);
        let render = result.render();
        assert!(render.contains("moe"), "render lists the model:\n{render}");
        assert!(render.contains("every"), "render has the header:\n{render}");
    }
}
