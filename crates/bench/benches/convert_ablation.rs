//! Ablation benches for the conversion design choices DESIGN.md calls out:
//!
//! - **Union parallelism**: Table 2 notes that "more parallelism leads to
//!   faster speed but is also more memory intensive" — sweep worker counts.
//! - **Fragment spilling**: the memory-bounded Extract-to-disk variant vs
//!   in-memory hand-off.
//! - **Alignment quantum**: ZeRO padding overhead vs conversion cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ucp_bench::report::scratch_dir;
use ucp_core::convert::ConvertOptions;
use ucp_model::{ModelConfig, SizePreset};
use ucp_parallel::{ParallelConfig, ZeroStage};
use ucp_trainer::{convert_checkpoint, train_run, ResumeMode, TrainConfig, TrainPlan};

fn prepare(name: &str, alignment: usize) -> (std::path::PathBuf, TrainConfig) {
    let model = ModelConfig::sized(SizePreset::Medium);
    let mut cfg = TrainConfig::quick(model, ParallelConfig::new(2, 1, 2, 1, ZeroStage::Zero1), 11);
    cfg.global_batch = 4;
    cfg.micro_batch = 1;
    cfg.alignment = alignment;
    let dir = scratch_dir(&format!("bench_convert_{name}"));
    train_run(&TrainPlan {
        config: cfg.clone(),
        until_iteration: 1,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(1),
        checkpoint_dir: Some(dir.clone()),
    })
    .expect("prepare");
    (dir, cfg)
}

fn bench_workers(c: &mut Criterion) {
    let (dir, _) = prepare("workers", 8);
    let mut group = c.benchmark_group("convert_union_parallelism");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                convert_checkpoint(
                    &dir,
                    1,
                    &ConvertOptions {
                        workers: w,
                        ..ConvertOptions::default()
                    },
                )
                .expect("convert")
            })
        });
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_spill(c: &mut Criterion) {
    let (dir, _) = prepare("spill", 8);
    let mut group = c.benchmark_group("convert_fragment_spill");
    group.sample_size(10);
    for (label, spill) in [("in_memory", false), ("spill_to_disk", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &spill, |b, &s| {
            b.iter(|| {
                convert_checkpoint(
                    &dir,
                    1,
                    &ConvertOptions {
                        spill_fragments: s,
                        ..ConvertOptions::default()
                    },
                )
                .expect("convert")
            })
        });
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_alignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("convert_alignment_quantum");
    group.sample_size(10);
    for alignment in [1usize, 8, 64, 512] {
        let (dir, _) = prepare(&format!("align{alignment}"), alignment);
        group.bench_with_input(
            BenchmarkId::from_parameter(alignment),
            &alignment,
            |b, _| {
                b.iter(|| convert_checkpoint(&dir, 1, &ConvertOptions::default()).expect("convert"))
            },
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

fn bench_load_workers(c: &mut Criterion) {
    // Parallel atom loading (the paper's loading-efficiency future work):
    // sweep reader threads for one target rank's load plan.
    use ucp_core::load::{gen_ucp_metadata, load_with_plan_workers, DEFAULT_ALIGNMENT};
    use ucp_storage::layout;

    let (dir, _) = prepare("load_workers", 8);
    convert_checkpoint(&dir, 1, &ConvertOptions::default()).expect("convert");
    let universal = layout::universal_dir(&dir, 1);
    let manifest = ucp_core::manifest::UcpManifest::load(&universal).expect("manifest");
    let target = ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1);
    let plan = gen_ucp_metadata(&manifest, &target, 0, DEFAULT_ALIGNMENT).expect("plan");

    let mut group = c.benchmark_group("load_atom_parallelism");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| load_with_plan_workers(&universal, &plan, w).expect("load"))
        });
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    benches,
    bench_workers,
    bench_spill,
    bench_alignment,
    bench_load_workers
);
criterion_main!(benches);
