//! Fig. 11 bench: checkpoint save time in a standard training run vs a
//! UCP-enabled run, across three model sizes.
//!
//! UCP's claim is zero added save-side cost: conversion is lazy, so the
//! save path is byte-for-byte the standard distributed save. The two
//! benchmark groups must therefore coincide within noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ucp_bench::report::scratch_dir;
use ucp_model::{ModelConfig, SizePreset};
use ucp_parallel::{ParallelConfig, ZeroStage};
use ucp_trainer::{train_run, train_run_overlapped, ResumeMode, TrainConfig, TrainPlan};

fn save_once(cfg: &TrainConfig, dir: &std::path::Path, overlapped: bool) -> f64 {
    let plan = TrainPlan {
        config: cfg.clone(),
        until_iteration: 1,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(1),
        checkpoint_dir: Some(dir.to_path_buf()),
    };
    let run = if overlapped {
        train_run_overlapped(&plan)
    } else {
        train_run(&plan)
    }
    .expect("save run");
    run.save_secs
}

fn bench_save(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_save");
    group.sample_size(10);
    for (label, preset) in [
        ("small", SizePreset::Small),
        ("medium", SizePreset::Medium),
        ("large", SizePreset::Large),
    ] {
        let model = ModelConfig::sized(preset);
        let mut cfg =
            TrainConfig::quick(model, ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1), 7);
        cfg.global_batch = 2;
        cfg.micro_batch = 1;
        // Standard training: save path as-is.
        group.bench_with_input(BenchmarkId::new("standard", label), &cfg, |b, cfg| {
            b.iter(|| {
                let dir = scratch_dir("bench_save_std");
                let secs = save_once(cfg, &dir, false);
                std::fs::remove_dir_all(&dir).ok();
                secs
            })
        });
        // UCP-enabled training: identical save path (conversion is lazy
        // and not part of the measured save).
        group.bench_with_input(BenchmarkId::new("ucp_enabled", label), &cfg, |b, cfg| {
            b.iter(|| {
                let dir = scratch_dir("bench_save_ucp");
                let secs = save_once(cfg, &dir, false);
                std::fs::remove_dir_all(&dir).ok();
                secs
            })
        });
        // Overlapped (CheckFreq-style) saving: only snapshot time blocks.
        group.bench_with_input(BenchmarkId::new("overlapped", label), &cfg, |b, cfg| {
            b.iter(|| {
                let dir = scratch_dir("bench_save_overlap");
                let secs = save_once(cfg, &dir, true);
                std::fs::remove_dir_all(&dir).ok();
                secs
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_save);
criterion_main!(benches);
