//! Fig. 12 bench: native distributed-checkpoint loading vs UCP
//! transformation + loading, across three model sizes.
//!
//! The paper measures 1.14×–1.37× on NVMe-bound loads; at simulator scale
//! fixed per-file overheads weigh more, so the companion `figures
//! --experiment fig12` run additionally reports the byte-volume ratio
//! (the bandwidth-bound model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ucp_bench::report::scratch_dir;
use ucp_core::convert::ConvertOptions;
use ucp_model::{ModelConfig, SizePreset};
use ucp_parallel::{ParallelConfig, ZeroStage};
use ucp_trainer::{convert_checkpoint, train_run, ResumeMode, TrainConfig, TrainPlan};

struct Prepared {
    cfg: TrainConfig,
    dir: std::path::PathBuf,
}

fn prepare(label: &str, preset: SizePreset) -> Prepared {
    let model = ModelConfig::sized(preset);
    let mut cfg = TrainConfig::quick(model, ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1), 9);
    cfg.global_batch = 2;
    cfg.micro_batch = 1;
    let dir = scratch_dir(&format!("bench_load_{label}"));
    train_run(&TrainPlan {
        config: cfg.clone(),
        until_iteration: 1,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(1),
        checkpoint_dir: Some(dir.clone()),
    })
    .expect("prepare checkpoint");
    Prepared { cfg, dir }
}

fn bench_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_load");
    group.sample_size(10);
    for (label, preset) in [
        ("small", SizePreset::Small),
        ("medium", SizePreset::Medium),
        ("large", SizePreset::Large),
    ] {
        let prep = prepare(label, preset);
        group.bench_with_input(BenchmarkId::new("native_load", label), &prep, |b, p| {
            b.iter(|| {
                train_run(&TrainPlan {
                    config: p.cfg.clone(),
                    until_iteration: 1,
                    resume: ResumeMode::Native {
                        dir: p.dir.clone(),
                        step: 1,
                    },
                    checkpoint_every: None,
                    checkpoint_dir: None,
                })
                .expect("native load")
                .load_secs
            })
        });
        group.bench_with_input(
            BenchmarkId::new("convert_plus_ucp_load", label),
            &prep,
            |b, p| {
                b.iter(|| {
                    // Conversion is re-run each iteration (it overwrites).
                    convert_checkpoint(&p.dir, 1, &ConvertOptions::default()).expect("convert");
                    train_run(&TrainPlan {
                        config: p.cfg.clone(),
                        until_iteration: 1,
                        resume: ResumeMode::Universal {
                            dir: p.dir.clone(),
                            step: 1,
                        },
                        checkpoint_every: None,
                        checkpoint_dir: None,
                    })
                    .expect("ucp load")
                    .load_secs
                })
            },
        );
        std::fs::remove_dir_all(&prep.dir).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_load);
criterion_main!(benches);
