//! Microbenchmarks for the UCP primitives: pattern-dispatched Union,
//! flat Extract, the container codec, and glob matching — the inner loops
//! of the conversion pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ucp_core::language::glob_match;
use ucp_core::ops::{extract_flat, union_tp};
use ucp_core::pattern::{FragmentSpec, ParamPattern};
use ucp_model::Partition;
use ucp_parallel::FlatLayout;
use ucp_storage::Container;
use ucp_tensor::{DetRng, Shape, Tensor};

fn bench_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_tp");
    let rng = DetRng::new(1);
    let full = Tensor::randn([1024, 512], 1.0, &rng.derive("w"));
    for tp in [2usize, 4, 8] {
        let partition = Partition::Shard { dim: 0 };
        let shards: Vec<Tensor> = (0..tp).map(|r| partition.shard(&full, tp, r)).collect();
        let pattern = ParamPattern::Fragment(FragmentSpec::Dim { dim: 0 });
        group.bench_with_input(BenchmarkId::new("dim0", tp), &shards, |b, shards| {
            b.iter(|| union_tp(&pattern, shards, false).unwrap())
        });
        let grouped = Partition::Grouped {
            dim: 0,
            sections: vec![512, 256, 256],
        };
        let gshards: Vec<Tensor> = (0..tp).map(|r| grouped.shard(&full, tp, r)).collect();
        let gpattern = ParamPattern::Fragment(FragmentSpec::Grouped {
            dim: 0,
            sections: vec![512, 256, 256],
        });
        group.bench_with_input(
            BenchmarkId::new("grouped_qkv", tp),
            &gshards,
            |b, shards| b.iter(|| union_tp(&gpattern, shards, false).unwrap()),
        );
    }
    // Replica verification cost (the corruption tripwire).
    let replicas = vec![full.clone(), full.clone()];
    group.bench_function("replicated_verified", |b| {
        b.iter(|| union_tp(&ParamPattern::Replicated, &replicas, true).unwrap())
    });
    group.bench_function("to_average", |b| {
        b.iter(|| union_tp(&ParamPattern::ToAverage, &replicas, false).unwrap())
    });
    group.finish();
}

fn bench_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract_flat");
    for n_params in [10usize, 100, 1000] {
        let params: Vec<(String, Shape)> = (0..n_params)
            .map(|i| (format!("p{i:04}"), Shape::new([257])))
            .collect();
        let layout = FlatLayout::build(&params, 8, 4);
        let chunk = vec![1.0f32; layout.chunk];
        group.bench_with_input(
            BenchmarkId::from_parameter(n_params),
            &(layout, chunk),
            |b, (layout, chunk)| b.iter(|| extract_flat(layout, 1, chunk)),
        );
    }
    group.finish();
}

fn bench_container(c: &mut Criterion) {
    let mut group = c.benchmark_group("container_codec");
    let rng = DetRng::new(2);
    for elems in [1usize << 12, 1 << 16, 1 << 20] {
        let t = Tensor::randn([elems], 1.0, &rng.derive("payload"));
        let mut container = Container::new(r#"{"kind": "bench"}"#);
        container.push("data", t);
        let mut encoded = Vec::new();
        container.write_to(&mut encoded).unwrap();
        group.bench_with_input(BenchmarkId::new("encode", elems), &container, |b, c| {
            b.iter(|| {
                let mut out = Vec::with_capacity(c.encoded_len());
                c.write_to(&mut out).unwrap();
                out.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("decode", elems), &encoded, |b, bytes| {
            b.iter(|| Container::read_from(&mut bytes.as_slice()).unwrap())
        });
    }
    group.finish();
}

fn bench_telemetry_disabled(c: &mut Criterion) {
    // The hot paths call these unconditionally; with the global recorder
    // disabled (the default) they must cost no more than a relaxed atomic
    // load. Any regression here slows every convert/load/save inner loop.
    let mut group = c.benchmark_group("telemetry_disabled");
    group.bench_function("enabled_check", |b| b.iter(ucp_telemetry::enabled));
    group.bench_function("count", |b| {
        b.iter(|| ucp_telemetry::count("bench/noop", 1))
    });
    group.bench_function("observe", |b| {
        b.iter(|| ucp_telemetry::observe("bench/noop_ns", 1234))
    });
    group.bench_function("span_guard", |b| {
        b.iter(|| ucp_telemetry::span("bench/noop_span"))
    });
    // The tracing layer shares the contract: while the global tracer is
    // disabled (the default), recording spans, collectives, and comm
    // edges must also reduce to one relaxed atomic load each.
    group.bench_function("trace_span_guard", |b| {
        b.iter(|| {
            ucp_telemetry::trace::span(ucp_telemetry::TraceCat::Compute, "bench/noop_trace_span")
        })
    });
    group.bench_function("trace_collective_guard", |b| {
        b.iter(|| ucp_telemetry::trace::collective("bench_noop", "0-3", 4096))
    });
    group.bench_function("trace_edge", |b| {
        b.iter(|| ucp_telemetry::trace::edge(true, 1, 4096))
    });
    group.finish();
}

fn bench_glob(c: &mut Criterion) {
    let cases = [
        (
            "layers.*.attention.query_key_value.weight",
            "layers.17.attention.query_key_value.weight",
        ),
        ("**.bias", "layers.17.mlp.dense_4h_to_h.bias"),
        ("embedding.**", "layers.17.mlp.dense_4h_to_h.weight"),
    ];
    c.bench_function("glob_match_3rules", |b| {
        b.iter(|| cases.iter().filter(|(g, n)| glob_match(g, n)).count())
    });
}

criterion_group!(
    benches,
    bench_union,
    bench_extract,
    bench_container,
    bench_telemetry_disabled,
    bench_glob
);
criterion_main!(benches);
