//! The parallel atom-fetch pool must be invisible except for speed: any
//! pool width produces bitwise-identical rank state and identical
//! `load/bytes_read` accounting to the serial path, including through a
//! bandwidth-throttled device.

use ucp_bench::report::scratch_dir;
use ucp_core::convert::ConvertOptions;
use ucp_core::load::{LoadOptions, LoadSession, RankState, DEFAULT_ALIGNMENT};
use ucp_model::ModelConfig;
use ucp_parallel::{ParallelConfig, ZeroStage};
use ucp_storage::Device;
use ucp_trainer::{convert_checkpoint, train_run, ResumeMode, TrainConfig, TrainPlan};

/// Train a tiny TP2×PP2 source and convert it to a universal checkpoint.
fn universal_checkpoint(dir: &std::path::Path, step: u64) {
    let source = ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1);
    let cfg = TrainConfig::quick(ModelConfig::gpt3_tiny(), source, 97);
    train_run(&TrainPlan {
        config: cfg,
        until_iteration: step,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(step),
        checkpoint_dir: Some(dir.to_path_buf()),
    })
    .expect("source training run");
    convert_checkpoint(dir, step, &ConvertOptions::default()).expect("conversion");
}

/// Load every rank of `target` through one session on `device`, returning
/// the states plus the session's `load/bytes_read` and `storage/open`
/// counters.
fn session_load(
    dir: &std::path::Path,
    step: u64,
    target: &ParallelConfig,
    device: Device,
) -> (Vec<RankState>, u64, u64) {
    let rec = ucp_telemetry::global();
    rec.reset();
    rec.set_enabled(true);
    let opts = LoadOptions {
        workers: 2,
        device,
        ranged: true,
    };
    let session = LoadSession::open(dir, step, opts).expect("open universal checkpoint");
    let states = (0..target.world_size())
        .map(|rank| {
            session
                .load_rank(target, rank, DEFAULT_ALIGNMENT)
                .expect("load rank")
        })
        .collect();
    let report = rec.report("parallel_fetch");
    rec.set_enabled(false);
    (
        states,
        report.counter("load/bytes_read").unwrap_or(0),
        report.counter("storage/open").unwrap_or(0),
    )
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_states_identical(label: &str, a: &RankState, b: &RankState) {
    assert_eq!(bits(&a.fp32), bits(&b.fp32), "{label}: fp32 chunk differs");
    assert_eq!(
        bits(&a.exp_avg),
        bits(&b.exp_avg),
        "{label}: exp_avg chunk differs"
    );
    assert_eq!(
        bits(&a.exp_avg_sq),
        bits(&b.exp_avg_sq),
        "{label}: exp_avg_sq chunk differs"
    );
    assert_eq!(a.model_params.len(), b.model_params.len(), "{label}");
    for ((an, at), (bn, bt)) in a.model_params.iter().zip(&b.model_params) {
        assert_eq!(an, bn, "{label}: param order differs");
        assert_eq!(
            bits(at.as_slice()),
            bits(bt.as_slice()),
            "{label}: param {an} differs"
        );
    }
}

/// Pool widths {1, 2, 8} all reconstruct the exact serial-path state and
/// account the exact serial-path bytes, for a DP-heavy target (atom-cache
/// sharing) and a TP-heavy target (re-sharded ranges), through a 64 MiB/s
/// throttled device.
#[test]
fn fetch_pool_widths_are_bitwise_invisible() {
    let dir = scratch_dir("parallel_fetch");
    let step = 2;
    universal_checkpoint(&dir, step);

    for target in [
        ParallelConfig::new(1, 1, 4, 1, ZeroStage::Zero1),
        ParallelConfig::new(4, 1, 1, 1, ZeroStage::Zero1),
    ] {
        let label = format!("tp{}_pp{}_dp{}", target.tp, target.pp, target.dp);
        // Serial reference: a throttled device with no explicit pool runs
        // one fetch worker (parallel workers would each get their own
        // throttle clock and multiply the simulated bandwidth).
        let serial = Device::with_mibps(64);
        assert_eq!(serial.fetch_pool(), 1);
        let (ref_states, ref_bytes, ref_opens) = session_load(&dir, step, &target, serial);
        assert!(ref_bytes > 0, "{label}: serial path read nothing");
        assert!(ref_opens > 0, "{label}: no storage/open ticks recorded");

        for pool in [1usize, 2, 8] {
            let device = Device::with_mibps(64).with_fetch_workers(pool);
            assert_eq!(device.fetch_pool(), pool);
            let (states, bytes, _) = session_load(&dir, step, &target, device);
            assert_eq!(
                states.len(),
                ref_states.len(),
                "{label} pool={pool}: rank count"
            );
            for (rank, (a, b)) in ref_states.iter().zip(&states).enumerate() {
                assert_states_identical(&format!("{label} pool={pool} rank={rank}"), a, b);
            }
            assert_eq!(
                bytes, ref_bytes,
                "{label} pool={pool}: load/bytes_read diverged from serial"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
