//! Primitive layer math with hand-derived backward passes.
//!
//! Conventions: activations are `[tokens, features]` row-major; weights use
//! the PyTorch `Linear` layout `[out_features, in_features]` with
//! `y = x Wᵀ + b`, matching the paper's QKV example shapes. Every backward
//! accumulates parameter gradients into `f64` buffers (see the crate docs on
//! layout-independent reduction).

use ucp_tensor::{ops, Tensor};

/// Accumulate `src` into an f64 gradient buffer.
pub fn grad_accumulate(buf: &mut [f64], src: &[f32]) {
    debug_assert_eq!(buf.len(), src.len());
    for (b, s) in buf.iter_mut().zip(src) {
        *b += f64::from(*s);
    }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Cache for the linear backward pass.
pub struct LinearCache {
    /// Saved input `[n, in]`.
    pub x: Tensor,
}

/// `y = x Wᵀ + b` with `x: [n, in]`, `w: [out, in]`, `b: [out]`.
pub fn linear_forward(x: &Tensor, w: &Tensor, b: Option<&Tensor>) -> (Tensor, LinearCache) {
    let mut y = ops::matmul_a_bt(x, w).expect("linear dims");
    if let Some(b) = b {
        let out = b.num_elements();
        for row in y.as_mut_slice().chunks_exact_mut(out) {
            for (v, bias) in row.iter_mut().zip(b.as_slice()) {
                *v += bias;
            }
        }
    }
    (y, LinearCache { x: x.clone() })
}

/// Backward of [`linear_forward`]. Returns `dx` and accumulates `dw`
/// (and `db` when present) into the provided f64 buffers.
pub fn linear_backward(
    cache: &LinearCache,
    w: &Tensor,
    dy: &Tensor,
    dw: &mut [f64],
    db: Option<&mut [f64]>,
) -> Tensor {
    // dx = dy · W ; dW = dyᵀ · x ; db = column-sum of dy.
    let dx = ops::matmul(dy, w).expect("linear bwd dx");
    let dw_t = ops::matmul_at_b(dy, &cache.x).expect("linear bwd dw");
    grad_accumulate(dw, dw_t.as_slice());
    if let Some(db) = db {
        let out = w.shape().dims()[0];
        for row in dy.as_slice().chunks_exact(out) {
            for (acc, v) in db.iter_mut().zip(row) {
                *acc += f64::from(*v);
            }
        }
    }
    dx
}

// ---------------------------------------------------------------------------
// LayerNorm / RMSNorm
// ---------------------------------------------------------------------------

const NORM_EPS: f64 = 1e-5;

/// Cache for normalization backward passes.
pub struct NormCache {
    /// Saved input `[n, h]`.
    pub x: Tensor,
    /// Per-row mean (LayerNorm) — empty for RMSNorm.
    pub mean: Vec<f64>,
    /// Per-row inverse standard deviation (or inverse RMS).
    pub inv_std: Vec<f64>,
}

/// LayerNorm: `y = (x - μ)/σ · g + b` per row.
pub fn layernorm_forward(x: &Tensor, g: &Tensor, b: &Tensor) -> (Tensor, NormCache) {
    let h = g.num_elements();
    let n = x.num_elements() / h;
    let mut y = x.clone();
    let mut mean = Vec::with_capacity(n);
    let mut inv_std = Vec::with_capacity(n);
    for row in y.as_mut_slice().chunks_exact_mut(h) {
        let mu: f64 = row.iter().map(|v| f64::from(*v)).sum::<f64>() / h as f64;
        let var: f64 = row
            .iter()
            .map(|v| (f64::from(*v) - mu).powi(2))
            .sum::<f64>()
            / h as f64;
        let istd = 1.0 / (var + NORM_EPS).sqrt();
        for (v, (gv, bv)) in row.iter_mut().zip(g.as_slice().iter().zip(b.as_slice())) {
            *v = (((f64::from(*v) - mu) * istd) as f32) * gv + bv;
        }
        mean.push(mu);
        inv_std.push(istd);
    }
    (
        y,
        NormCache {
            x: x.clone(),
            mean,
            inv_std,
        },
    )
}

/// Backward of [`layernorm_forward`].
pub fn layernorm_backward(
    cache: &NormCache,
    g: &Tensor,
    dy: &Tensor,
    dg: &mut [f64],
    db: &mut [f64],
) -> Tensor {
    let h = g.num_elements();
    let mut dx = Tensor::zeros(cache.x.shape().clone());
    let xs = cache.x.as_slice();
    let dys = dy.as_slice();
    for (r, drow) in dx.as_mut_slice().chunks_exact_mut(h).enumerate() {
        let xrow = &xs[r * h..(r + 1) * h];
        let dyrow = &dys[r * h..(r + 1) * h];
        let (mu, istd) = (cache.mean[r], cache.inv_std[r]);
        // xhat = (x - μ)·istd; dxhat = dy·g.
        let mut sum_dxhat = 0.0f64;
        let mut sum_dxhat_xhat = 0.0f64;
        for i in 0..h {
            let xhat = (f64::from(xrow[i]) - mu) * istd;
            let dxhat = f64::from(dyrow[i]) * f64::from(g.as_slice()[i]);
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * xhat;
            dg[i] += f64::from(dyrow[i]) * xhat;
            db[i] += f64::from(dyrow[i]);
        }
        let hn = h as f64;
        for i in 0..h {
            let xhat = (f64::from(xrow[i]) - mu) * istd;
            let dxhat = f64::from(dyrow[i]) * f64::from(g.as_slice()[i]);
            drow[i] = (istd * (dxhat - sum_dxhat / hn - xhat * sum_dxhat_xhat / hn)) as f32;
        }
    }
    dx
}

/// RMSNorm: `y = x / rms(x) · g` per row.
pub fn rmsnorm_forward(x: &Tensor, g: &Tensor) -> (Tensor, NormCache) {
    let h = g.num_elements();
    let n = x.num_elements() / h;
    let mut y = x.clone();
    let mut inv_std = Vec::with_capacity(n);
    for row in y.as_mut_slice().chunks_exact_mut(h) {
        let ms: f64 = row.iter().map(|v| f64::from(*v).powi(2)).sum::<f64>() / h as f64;
        let irms = 1.0 / (ms + NORM_EPS).sqrt();
        for (v, gv) in row.iter_mut().zip(g.as_slice()) {
            *v = ((f64::from(*v) * irms) as f32) * gv;
        }
        inv_std.push(irms);
    }
    (
        y,
        NormCache {
            x: x.clone(),
            mean: Vec::new(),
            inv_std,
        },
    )
}

/// Backward of [`rmsnorm_forward`].
pub fn rmsnorm_backward(cache: &NormCache, g: &Tensor, dy: &Tensor, dg: &mut [f64]) -> Tensor {
    let h = g.num_elements();
    let mut dx = Tensor::zeros(cache.x.shape().clone());
    let xs = cache.x.as_slice();
    let dys = dy.as_slice();
    for (r, drow) in dx.as_mut_slice().chunks_exact_mut(h).enumerate() {
        let xrow = &xs[r * h..(r + 1) * h];
        let dyrow = &dys[r * h..(r + 1) * h];
        let irms = cache.inv_std[r];
        let mut sum_dxhat_xhat = 0.0f64;
        for i in 0..h {
            let xhat = f64::from(xrow[i]) * irms;
            let dxhat = f64::from(dyrow[i]) * f64::from(g.as_slice()[i]);
            sum_dxhat_xhat += dxhat * xhat;
            dg[i] += f64::from(dyrow[i]) * xhat;
        }
        let hn = h as f64;
        for i in 0..h {
            let xhat = f64::from(xrow[i]) * irms;
            let dxhat = f64::from(dyrow[i]) * f64::from(g.as_slice()[i]);
            drow[i] = (irms * (dxhat - xhat * sum_dxhat_xhat / hn)) as f32;
        }
    }
    dx
}

// ---------------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------------

/// GELU (tanh approximation), elementwise.
pub fn gelu(x: f32) -> f32 {
    let x = f64::from(x);
    let c = (2.0 / std::f64::consts::PI).sqrt();
    (0.5 * x * (1.0 + (c * (x + 0.044715 * x.powi(3))).tanh())) as f32
}

/// Derivative of [`gelu`].
pub fn gelu_grad(x: f32) -> f32 {
    let x = f64::from(x);
    let c = (2.0 / std::f64::consts::PI).sqrt();
    let inner = c * (x + 0.044715 * x.powi(3));
    let t = inner.tanh();
    let dinner = c * (1.0 + 3.0 * 0.044715 * x * x);
    (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner) as f32
}

/// SiLU `x · σ(x)`, elementwise.
pub fn silu(x: f32) -> f32 {
    let x = f64::from(x);
    (x / (1.0 + (-x).exp())) as f32
}

/// Derivative of [`silu`].
pub fn silu_grad(x: f32) -> f32 {
    let x = f64::from(x);
    let s = 1.0 / (1.0 + (-x).exp());
    (s * (1.0 + x * (1.0 - s))) as f32
}

// ---------------------------------------------------------------------------
// Embedding
// ---------------------------------------------------------------------------

/// Vocab-parallel embedding lookup.
///
/// The weight shard covers vocab rows `[vocab_start, vocab_start + rows)`;
/// out-of-range tokens contribute zero. Summing the per-rank results over
/// the TP group (done by the caller) yields the full lookup.
pub fn embedding_forward(tokens: &[u32], w_shard: &Tensor, vocab_start: usize) -> Tensor {
    let h = w_shard.shape().dims()[1];
    let rows = w_shard.shape().dims()[0];
    let mut out = Tensor::zeros([tokens.len(), h]);
    let (src, dst) = (w_shard.as_slice(), out.as_mut_slice());
    for (t, &tok) in tokens.iter().enumerate() {
        let tok = tok as usize;
        if tok >= vocab_start && tok < vocab_start + rows {
            let r = tok - vocab_start;
            dst[t * h..(t + 1) * h].copy_from_slice(&src[r * h..(r + 1) * h]);
        }
    }
    out
}

/// Backward of [`embedding_forward`]: scatter-add `dy` rows into the shard
/// gradient for in-range tokens.
pub fn embedding_backward(
    tokens: &[u32],
    dy: &Tensor,
    vocab_start: usize,
    rows: usize,
    dw: &mut [f64],
) {
    let h = dy.shape().dims()[1];
    let dys = dy.as_slice();
    for (t, &tok) in tokens.iter().enumerate() {
        let tok = tok as usize;
        if tok >= vocab_start && tok < vocab_start + rows {
            let r = tok - vocab_start;
            for i in 0..h {
                dw[r * h + i] += f64::from(dys[t * h + i]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cross entropy
// ---------------------------------------------------------------------------

/// Fused softmax + cross-entropy over full-vocabulary logits.
///
/// Returns `(sum of per-token negative log-likelihoods, d logits)` where the
/// gradient corresponds to the *sum* (not mean) of token losses — the caller
/// divides by the global token count after data/sequence-parallel reduction,
/// which keeps gradients independent of the parallel layout.
pub fn cross_entropy(logits: &Tensor, targets: &[u32]) -> (f64, Tensor) {
    let v = logits.shape().dims()[1];
    debug_assert_eq!(logits.shape().dims()[0], targets.len());
    let mut dlogits = logits.clone();
    let mut loss_sum = 0.0f64;
    for (row, &target) in dlogits
        .as_mut_slice()
        .chunks_exact_mut(v)
        .zip(targets.iter())
    {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for x in row.iter() {
            denom += f64::from(x - max).exp();
        }
        let log_denom = denom.ln() + f64::from(max);
        loss_sum += log_denom - f64::from(row[target as usize]);
        for x in row.iter_mut() {
            *x = (f64::from(*x - max).exp() / denom) as f32;
        }
        row[target as usize] -= 1.0;
    }
    (loss_sum, dlogits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_tensor::DetRng;

    /// Finite-difference check helper: |analytic - numeric| must be small.
    fn fd_close(analytic: f64, numeric: f64) {
        let denom = analytic.abs().max(numeric.abs()).max(1e-4);
        assert!(
            ((analytic - numeric) / denom).abs() < 2e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn linear_matches_manual() {
        let x = Tensor::from_vec(vec![1.0, 2.0], [1, 2]).unwrap();
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], [3, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.5, 0.5, 0.5], [3]).unwrap();
        let (y, _) = linear_forward(&x, &w, Some(&b));
        assert_eq!(y.as_slice(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn linear_backward_finite_difference() {
        let rng = DetRng::new(1);
        let x = Tensor::randn([3, 4], 1.0, &rng.derive("x"));
        let w = Tensor::randn([2, 4], 0.5, &rng.derive("w"));
        let b = Tensor::randn([2], 0.5, &rng.derive("b"));
        let dy = Tensor::randn([3, 2], 1.0, &rng.derive("dy"));

        let (_, cache) = linear_forward(&x, &w, Some(&b));
        let mut dw = vec![0.0f64; 8];
        let mut db = vec![0.0f64; 2];
        let dx = linear_backward(&cache, &w, &dy, &mut dw, Some(&mut db));

        // Loss L = Σ dy ⊙ y; check dL/dx[0], dL/dw[3], dL/db[1] numerically.
        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f64 {
            let (y, _) = linear_forward(x, w, Some(b));
            ops::dot64(y.as_slice(), dy.as_slice())
        };
        let eps = 1e-3f32;
        let mut xp = x.clone();
        xp.as_mut_slice()[0] += eps;
        fd_close(
            f64::from(dx.as_slice()[0]),
            (loss(&xp, &w, &b) - loss(&x, &w, &b)) / f64::from(eps),
        );
        let mut wp = w.clone();
        wp.as_mut_slice()[3] += eps;
        fd_close(
            dw[3],
            (loss(&x, &wp, &b) - loss(&x, &w, &b)) / f64::from(eps),
        );
        let mut bp = b.clone();
        bp.as_mut_slice()[1] += eps;
        fd_close(
            db[1],
            (loss(&x, &w, &bp) - loss(&x, &w, &b)) / f64::from(eps),
        );
    }

    #[test]
    fn layernorm_output_is_normalized() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 4]).unwrap();
        let g = Tensor::full([4], 1.0);
        let b = Tensor::zeros([4]);
        let (y, _) = layernorm_forward(&x, &g, &b);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 4.0;
        let var: f32 = y
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_backward_finite_difference() {
        let rng = DetRng::new(2);
        let x = Tensor::randn([2, 6], 1.0, &rng.derive("x"));
        let g = Tensor::randn([6], 0.5, &rng.derive("g"));
        let b = Tensor::randn([6], 0.5, &rng.derive("b"));
        let dy = Tensor::randn([2, 6], 1.0, &rng.derive("dy"));

        let (_, cache) = layernorm_forward(&x, &g, &b);
        let mut dg = vec![0.0f64; 6];
        let mut db = vec![0.0f64; 6];
        let dx = layernorm_backward(&cache, &g, &dy, &mut dg, &mut db);

        let loss = |x: &Tensor, g: &Tensor, b: &Tensor| -> f64 {
            let (y, _) = layernorm_forward(x, g, b);
            ops::dot64(y.as_slice(), dy.as_slice())
        };
        let eps = 1e-3f32;
        for idx in [0usize, 7] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            fd_close(
                f64::from(dx.as_slice()[idx]),
                (loss(&xp, &g, &b) - loss(&x, &g, &b)) / f64::from(eps),
            );
        }
        let mut gp = g.clone();
        gp.as_mut_slice()[2] += eps;
        fd_close(
            dg[2],
            (loss(&x, &gp, &b) - loss(&x, &g, &b)) / f64::from(eps),
        );
        let mut bp = b.clone();
        bp.as_mut_slice()[4] += eps;
        fd_close(
            db[4],
            (loss(&x, &g, &bp) - loss(&x, &g, &b)) / f64::from(eps),
        );
    }

    #[test]
    fn rmsnorm_backward_finite_difference() {
        let rng = DetRng::new(3);
        let x = Tensor::randn([2, 5], 1.0, &rng.derive("x"));
        let g = Tensor::randn([5], 0.5, &rng.derive("g"));
        let dy = Tensor::randn([2, 5], 1.0, &rng.derive("dy"));

        let (_, cache) = rmsnorm_forward(&x, &g);
        let mut dg = vec![0.0f64; 5];
        let dx = rmsnorm_backward(&cache, &g, &dy, &mut dg);

        let loss = |x: &Tensor, g: &Tensor| -> f64 {
            let (y, _) = rmsnorm_forward(x, g);
            ops::dot64(y.as_slice(), dy.as_slice())
        };
        let eps = 1e-3f32;
        let mut xp = x.clone();
        xp.as_mut_slice()[3] += eps;
        fd_close(
            f64::from(dx.as_slice()[3]),
            (loss(&xp, &g) - loss(&x, &g)) / f64::from(eps),
        );
        let mut gp = g.clone();
        gp.as_mut_slice()[1] += eps;
        fd_close(dg[1], (loss(&x, &gp) - loss(&x, &g)) / f64::from(eps));
    }

    #[test]
    fn activation_gradients_finite_difference() {
        let eps = 1e-3f32;
        for x in [-2.0f32, -0.5, 0.0, 0.7, 3.0] {
            fd_close(
                f64::from(gelu_grad(x)),
                f64::from(gelu(x + eps) - gelu(x - eps)) / f64::from(2.0 * eps),
            );
            fd_close(
                f64::from(silu_grad(x)),
                f64::from(silu(x + eps) - silu(x - eps)) / f64::from(2.0 * eps),
            );
        }
    }

    #[test]
    fn embedding_sharded_sum_equals_full() {
        let rng = DetRng::new(4);
        let w = Tensor::randn([8, 3], 1.0, &rng.derive("emb"));
        let tokens = vec![0u32, 3, 7, 5];
        let full = embedding_forward(&tokens, &w, 0);
        // Two vocab shards of 4 rows each.
        let w0 = w.narrow(0, 0, 4).unwrap();
        let w1 = w.narrow(0, 4, 4).unwrap();
        let y0 = embedding_forward(&tokens, &w0, 0);
        let y1 = embedding_forward(&tokens, &w1, 4);
        let sum = ops::add(&y0, &y1).unwrap();
        assert!(sum.bitwise_eq(&full));
    }

    #[test]
    fn embedding_backward_scatters_rows() {
        let tokens = vec![1u32, 1, 3];
        let dy = Tensor::full([3, 2], 1.0);
        let mut dw = vec![0.0f64; 8];
        embedding_backward(&tokens, &dy, 0, 4, &mut dw);
        assert_eq!(dw, vec![0., 0., 2., 2., 0., 0., 1., 1.]);
        // Out-of-shard tokens contribute nothing.
        let mut dw2 = vec![0.0f64; 4];
        embedding_backward(&tokens, &dy, 2, 2, &mut dw2);
        assert_eq!(dw2, vec![0., 0., 1., 1.]);
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros([2, 4]);
        let (loss, dlogits) = cross_entropy(&logits, &[0, 3]);
        assert!((loss - 2.0 * (4.0f64).ln()).abs() < 1e-6);
        // dlogits = softmax - onehot = 0.25 everywhere except target (−0.75).
        assert!((dlogits.as_slice()[0] + 0.75).abs() < 1e-6);
        assert!((dlogits.as_slice()[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_finite_difference() {
        let rng = DetRng::new(5);
        let logits = Tensor::randn([3, 5], 1.0, &rng.derive("l"));
        let targets = [2u32, 0, 4];
        let (_, d) = cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for idx in [0usize, 7, 14] {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let (loss_p, _) = cross_entropy(&lp, &targets);
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let (loss_m, _) = cross_entropy(&lm, &targets);
            fd_close(
                f64::from(d.as_slice()[idx]),
                (loss_p - loss_m) / f64::from(2.0 * eps),
            );
        }
    }

    use ucp_tensor::ops;
}
