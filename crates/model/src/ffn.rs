//! Feed-forward blocks: dense GELU MLP, SwiGLU MLP, and the top-k routed
//! mixture-of-experts FFN (Mixtral-style).
//!
//! Tensor-parallel convention matches Megatron: the first projection is
//! column-parallel (no forward communication), the second is row-parallel
//! (one all-reduce of the partial outputs). Backward passes return an
//! already-TP-reduced input gradient.

use ucp_tensor::{ops, Tensor};

use crate::config::MlpKind;
use crate::group_ops::GroupOps;
use crate::layers::{
    gelu, gelu_grad, linear_backward, linear_forward, silu, silu_grad, LinearCache,
};

// ---------------------------------------------------------------------------
// Dense MLP
// ---------------------------------------------------------------------------

/// Parameter shards for a dense MLP block.
pub struct MlpParams<'a> {
    /// Flavor (GELU two-matrix or fused SwiGLU).
    pub kind: MlpKind,
    /// First projection shard: GELU `[F/tp, H]`, SwiGLU `[2F/tp, H]`
    /// (gate rows then up rows).
    pub w1: &'a Tensor,
    /// First projection bias shard (GELU only).
    pub b1: Option<&'a Tensor>,
    /// Second projection shard `[H, F/tp]` (row-parallel).
    pub w2: &'a Tensor,
    /// Output bias `[H]` (replicated, added post-reduce).
    pub b2: Option<&'a Tensor>,
}

/// Gradient buffers matching [`MlpParams`].
pub struct MlpGrads<'a> {
    /// Gradient of `w1`.
    pub w1: &'a mut [f64],
    /// Gradient of `b1`.
    pub b1: Option<&'a mut [f64]>,
    /// Gradient of `w2`.
    pub w2: &'a mut [f64],
    /// Gradient of `b2`.
    pub b2: Option<&'a mut [f64]>,
}

/// Backward cache for the dense MLP.
pub struct MlpCache {
    kind: MlpKind,
    c1: LinearCache,
    /// Pre-activation `[T, rows_local]`.
    pre: Tensor,
    c2: LinearCache,
}

/// Apply the activation to pre-activations, returning the second-projection
/// input.
fn activate(kind: MlpKind, pre: &Tensor) -> Tensor {
    match kind {
        MlpKind::Gelu => {
            let data = pre.as_slice().iter().map(|v| gelu(*v)).collect();
            Tensor::from_vec(data, pre.shape().clone()).expect("same shape")
        }
        MlpKind::SwiGlu => {
            let rows = pre.shape().dims()[1];
            let f_local = rows / 2;
            let t = pre.shape().dims()[0];
            let mut out = vec![0.0f32; t * f_local];
            let src = pre.as_slice();
            for ti in 0..t {
                let row = &src[ti * rows..(ti + 1) * rows];
                for i in 0..f_local {
                    out[ti * f_local + i] = silu(row[i]) * row[f_local + i];
                }
            }
            Tensor::from_vec(out, [t, f_local]).expect("act dims")
        }
    }
}

/// Backward of [`activate`]: gradient w.r.t. the pre-activation.
fn activate_backward(kind: MlpKind, pre: &Tensor, dact: &Tensor) -> Tensor {
    match kind {
        MlpKind::Gelu => {
            let data = pre
                .as_slice()
                .iter()
                .zip(dact.as_slice())
                .map(|(x, d)| gelu_grad(*x) * d)
                .collect();
            Tensor::from_vec(data, pre.shape().clone()).expect("same shape")
        }
        MlpKind::SwiGlu => {
            let rows = pre.shape().dims()[1];
            let f_local = rows / 2;
            let t = pre.shape().dims()[0];
            let mut out = vec![0.0f32; t * rows];
            let (src, d) = (pre.as_slice(), dact.as_slice());
            for ti in 0..t {
                let row = &src[ti * rows..(ti + 1) * rows];
                let drow = &mut out[ti * rows..(ti + 1) * rows];
                for i in 0..f_local {
                    let dv = d[ti * f_local + i];
                    drow[i] = silu_grad(row[i]) * row[f_local + i] * dv;
                    drow[f_local + i] = silu(row[i]) * dv;
                }
            }
            Tensor::from_vec(out, pre.shape().clone()).expect("same shape")
        }
    }
}

/// Dense MLP forward; returns the TP-reduced block output `[T, H]`.
pub fn mlp_forward(h: &Tensor, params: &MlpParams<'_>, tp: &dyn GroupOps) -> (Tensor, MlpCache) {
    let (pre, c1) = linear_forward(h, params.w1, params.b1);
    let act = activate(params.kind, &pre);
    let (partial, c2) = linear_forward(&act, params.w2, None);
    let mut out = tp.all_reduce_sum(&partial);
    if let Some(bias) = params.b2 {
        let hd = bias.num_elements();
        for row in out.as_mut_slice().chunks_exact_mut(hd) {
            for (v, bv) in row.iter_mut().zip(bias.as_slice()) {
                *v += bv;
            }
        }
    }
    (
        out,
        MlpCache {
            kind: params.kind,
            c1,
            pre,
            c2,
        },
    )
}

/// Dense MLP backward; returns the TP-reduced input gradient.
pub fn mlp_backward(
    cache: &MlpCache,
    params: &MlpParams<'_>,
    grads: &mut MlpGrads<'_>,
    dy: &Tensor,
    tp: &dyn GroupOps,
) -> Tensor {
    if let (Some(db), Some(bias)) = (grads.b2.as_deref_mut(), params.b2) {
        let hd = bias.num_elements();
        for row in dy.as_slice().chunks_exact(hd) {
            for (acc, v) in db.iter_mut().zip(row) {
                *acc += f64::from(*v);
            }
        }
    }
    let dact = linear_backward(&cache.c2, params.w2, dy, grads.w2, None);
    let dpre = activate_backward(cache.kind, &cache.pre, &dact);
    let dx = linear_backward(
        &cache.c1,
        params.w1,
        &dpre,
        grads.w1,
        grads.b1.as_deref_mut(),
    );
    tp.all_reduce_sum(&dx)
}

// ---------------------------------------------------------------------------
// Mixture of experts
// ---------------------------------------------------------------------------

/// Parameter shards for a routed MoE block.
pub struct MoeParams<'a> {
    /// FFN flavor inside each expert.
    pub kind: MlpKind,
    /// Router `[E, H]` (replicated).
    pub router: &'a Tensor,
    /// Expert first projections `[E, rows_local, H]`.
    pub w1: &'a Tensor,
    /// Expert second projections `[E, H, F/tp]`.
    pub w2: &'a Tensor,
    /// Experts routed per token.
    pub top_k: usize,
}

/// Gradient buffers matching [`MoeParams`].
pub struct MoeGrads<'a> {
    /// Gradient of `router`.
    pub router: &'a mut [f64],
    /// Gradient of `w1`.
    pub w1: &'a mut [f64],
    /// Gradient of `w2`.
    pub w2: &'a mut [f64],
}

/// Per-token routing decision.
#[derive(Debug, Clone)]
struct Route {
    /// Selected expert ids, highest probability first.
    experts: Vec<usize>,
    /// Renormalized gate weights (sum to 1 over the selection).
    gates: Vec<f64>,
    /// Full softmax probabilities over all experts.
    probs: Vec<f64>,
}

/// Backward cache for the MoE block.
pub struct MoeCache {
    /// Saved block input `[T, H]`.
    x: Tensor,
    routes: Vec<Route>,
    /// Per (token, slot): expert pre-activation (local rows).
    pre: Vec<Vec<f32>>,
    /// Per (token, slot): activated values `[F/tp]`.
    act: Vec<Vec<f32>>,
    /// Per (token, slot): partial expert output `[H]` (pre-gate, pre-reduce).
    partial: Vec<Vec<f32>>,
}

/// Deterministic top-k: probabilities descending, ties broken by lower
/// expert index. Identical on every rank because the router input is
/// replicated across TP.
fn top_k_indices(probs: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..probs.len()).collect();
    idx.sort_by(|&a, &b| {
        probs[b]
            .partial_cmp(&probs[a])
            .expect("finite probabilities")
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// MoE forward; returns the TP-reduced block output `[T, H]`.
pub fn moe_forward(h: &Tensor, params: &MoeParams<'_>, tp: &dyn GroupOps) -> (Tensor, MoeCache) {
    let t_count = h.shape().dims()[0];
    let hd = h.shape().dims()[1];
    let n_exp = params.router.shape().dims()[0];
    let rows_local = params.w1.shape().dims()[1];
    let f_local = params.w2.shape().dims()[2];

    let (logits, _) = linear_forward(h, params.router, None);
    let xs = h.as_slice();
    let w1s = params.w1.as_slice();
    let w2s = params.w2.as_slice();

    let mut routes = Vec::with_capacity(t_count);
    let mut pres = Vec::with_capacity(t_count * params.top_k);
    let mut acts = Vec::with_capacity(t_count * params.top_k);
    let mut partials = Vec::with_capacity(t_count * params.top_k);
    let mut out = vec![0.0f32; t_count * hd];

    for t in 0..t_count {
        let lrow = &logits.as_slice()[t * n_exp..(t + 1) * n_exp];
        let max = lrow.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut probs: Vec<f64> = lrow.iter().map(|v| f64::from(v - max).exp()).collect();
        let denom: f64 = probs.iter().sum();
        for p in probs.iter_mut() {
            *p /= denom;
        }
        let experts = top_k_indices(&probs, params.top_k);
        let z: f64 = experts.iter().map(|&e| probs[e]).sum();
        let gates: Vec<f64> = experts.iter().map(|&e| probs[e] / z).collect();

        let xrow = &xs[t * hd..(t + 1) * hd];
        let orow = &mut out[t * hd..(t + 1) * hd];
        for (slot, &e) in experts.iter().enumerate() {
            // pre = W1[e] · x  (rows_local × H matrix-vector).
            let w1e = &w1s[e * rows_local * hd..(e + 1) * rows_local * hd];
            let mut pre = vec![0.0f32; rows_local];
            for (r, p) in pre.iter_mut().enumerate() {
                *p = ops::dot64(&w1e[r * hd..(r + 1) * hd], xrow) as f32;
            }
            // Activate.
            let act: Vec<f32> = match params.kind {
                MlpKind::Gelu => pre.iter().map(|v| gelu(*v)).collect(),
                MlpKind::SwiGlu => (0..f_local)
                    .map(|i| silu(pre[i]) * pre[f_local + i])
                    .collect(),
            };
            // partial = W2[e] · act  (H × F_local matrix-vector).
            let w2e = &w2s[e * hd * f_local..(e + 1) * hd * f_local];
            let mut partial = vec![0.0f32; hd];
            for (r, p) in partial.iter_mut().enumerate() {
                *p = ops::dot64(&w2e[r * f_local..(r + 1) * f_local], &act) as f32;
            }
            let g = gates[slot];
            for (o, p) in orow.iter_mut().zip(&partial) {
                *o += (g * f64::from(*p)) as f32;
            }
            pres.push(pre);
            acts.push(act);
            partials.push(partial);
        }
        routes.push(Route {
            experts,
            gates,
            probs,
        });
    }

    let out = Tensor::from_vec(out, [t_count, hd]).expect("moe out dims");
    let out = tp.all_reduce_sum(&out);
    (
        out,
        MoeCache {
            x: h.clone(),
            routes,
            pre: pres,
            act: acts,
            partial: partials,
        },
    )
}

/// MoE backward; returns the TP-reduced input gradient (expert paths summed
/// across TP, router path added once).
pub fn moe_backward(
    cache: &MoeCache,
    params: &MoeParams<'_>,
    grads: &mut MoeGrads<'_>,
    dy: &Tensor,
    tp: &dyn GroupOps,
) -> Tensor {
    let t_count = cache.x.shape().dims()[0];
    let hd = cache.x.shape().dims()[1];
    let n_exp = params.router.shape().dims()[0];
    let rows_local = params.w1.shape().dims()[1];
    let f_local = params.w2.shape().dims()[2];

    let xs = cache.x.as_slice();
    let dys = dy.as_slice();
    let w1s = params.w1.as_slice();
    let w2s = params.w2.as_slice();

    // Gate gradients need the *full* expert outputs, which are sharded
    // across TP; compute partial dot products and reduce once.
    let mut dgate_partial = vec![0.0f32; t_count * params.top_k];
    for t in 0..t_count {
        let dyrow = &dys[t * hd..(t + 1) * hd];
        for slot in 0..cache.routes[t].experts.len() {
            let partial = &cache.partial[t * params.top_k + slot];
            dgate_partial[t * params.top_k + slot] = ops::dot64(dyrow, partial) as f32;
        }
    }
    let dgate = tp.all_reduce_sum(
        &Tensor::from_vec(dgate_partial, [t_count, params.top_k]).expect("gate dims"),
    );

    let mut dx_experts = vec![0.0f64; t_count * hd];
    let mut dlogits = vec![0.0f32; t_count * n_exp];
    for t in 0..t_count {
        let route = &cache.routes[t];
        let dyrow = &dys[t * hd..(t + 1) * hd];
        let xrow = &xs[t * hd..(t + 1) * hd];

        // Renormalized-gate → softmax → router-logit backward.
        let dgrow = &dgate.as_slice()[t * params.top_k..(t + 1) * params.top_k];
        let z: f64 = route.experts.iter().map(|&e| route.probs[e]).sum();
        let inner_g: f64 = dgrow
            .iter()
            .zip(&route.gates)
            .map(|(dg, g)| f64::from(*dg) * g)
            .sum();
        let mut dp = vec![0.0f64; n_exp];
        for (slot, &e) in route.experts.iter().enumerate() {
            dp[e] = (f64::from(dgrow[slot]) - inner_g) / z;
        }
        let inner_p: f64 = dp.iter().zip(&route.probs).map(|(d, p)| d * p).sum();
        let dlrow = &mut dlogits[t * n_exp..(t + 1) * n_exp];
        for e in 0..n_exp {
            dlrow[e] = (route.probs[e] * (dp[e] - inner_p)) as f32;
        }

        // Expert paths.
        for (slot, &e) in route.experts.iter().enumerate() {
            let g = route.gates[slot];
            let pre = &cache.pre[t * params.top_k + slot];
            let act = &cache.act[t * params.top_k + slot];
            // d partial = g · dy ; dW2[e] += dpartial ⊗ act ; dact = W2[e]ᵀ dpartial.
            let w2e = &w2s[e * hd * f_local..(e + 1) * hd * f_local];
            let gw2 = &mut grads.w2[e * hd * f_local..(e + 1) * hd * f_local];
            let mut dact = vec![0.0f64; f_local];
            for r in 0..hd {
                let dpart = g * f64::from(dyrow[r]);
                for i in 0..f_local {
                    gw2[r * f_local + i] += dpart * f64::from(act[i]);
                    dact[i] += dpart * f64::from(w2e[r * f_local + i]);
                }
            }
            // Activation backward.
            let mut dpre = vec![0.0f64; rows_local];
            match params.kind {
                MlpKind::Gelu => {
                    for i in 0..rows_local {
                        dpre[i] = dact[i] * f64::from(gelu_grad(pre[i]));
                    }
                }
                MlpKind::SwiGlu => {
                    for i in 0..f_local {
                        dpre[i] =
                            dact[i] * f64::from(silu_grad(pre[i])) * f64::from(pre[f_local + i]);
                        dpre[f_local + i] = dact[i] * f64::from(silu(pre[i]));
                    }
                }
            }
            // dW1[e] += dpre ⊗ x ; dx += W1[e]ᵀ dpre.
            let w1e = &w1s[e * rows_local * hd..(e + 1) * rows_local * hd];
            let gw1 = &mut grads.w1[e * rows_local * hd..(e + 1) * rows_local * hd];
            let dxrow = &mut dx_experts[t * hd..(t + 1) * hd];
            for r in 0..rows_local {
                let dp = dpre[r];
                if dp == 0.0 {
                    continue;
                }
                for i in 0..hd {
                    gw1[r * hd + i] += dp * f64::from(xrow[i]);
                    dxrow[i] += dp * f64::from(w1e[r * hd + i]);
                }
            }
        }
    }

    // Router backward (replicated parameter: gradients identical across TP
    // because dlogits derive from TP-reduced quantities).
    let dlogits = Tensor::from_vec(dlogits, [t_count, n_exp]).expect("dlogits dims");
    let router_cache = LinearCache { x: cache.x.clone() };
    let dx_router = linear_backward(&router_cache, params.router, &dlogits, grads.router, None);

    // Expert dx is partial (sums over local FFN units) → reduce, then add
    // the already-full router path once.
    let dx_experts = Tensor::from_vec(
        dx_experts.into_iter().map(|v| v as f32).collect(),
        [t_count, hd],
    )
    .expect("dx dims");
    let mut dx = tp.all_reduce_sum(&dx_experts);
    ops::add_assign(&mut dx, &dx_router).expect("same dims");
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group_ops::Solo;
    use ucp_tensor::DetRng;

    #[test]
    fn gelu_mlp_finite_difference() {
        let rng = DetRng::new(20);
        let (t, h, f) = (3, 4, 8);
        let x = Tensor::randn([t, h], 0.5, &rng.derive("x"));
        let w1 = Tensor::randn([f, h], 0.4, &rng.derive("w1"));
        let b1 = Tensor::randn([f], 0.1, &rng.derive("b1"));
        let w2 = Tensor::randn([h, f], 0.4, &rng.derive("w2"));
        let b2 = Tensor::randn([h], 0.1, &rng.derive("b2"));
        let dy = Tensor::randn([t, h], 1.0, &rng.derive("dy"));

        let run = |x: &Tensor, w1: &Tensor| -> f64 {
            let p = MlpParams {
                kind: MlpKind::Gelu,
                w1,
                b1: Some(&b1),
                w2: &w2,
                b2: Some(&b2),
            };
            let (y, _) = mlp_forward(x, &p, &Solo);
            ops::dot64(y.as_slice(), dy.as_slice())
        };
        let p = MlpParams {
            kind: MlpKind::Gelu,
            w1: &w1,
            b1: Some(&b1),
            w2: &w2,
            b2: Some(&b2),
        };
        let (_, cache) = mlp_forward(&x, &p, &Solo);
        let mut gw1 = vec![0.0f64; w1.num_elements()];
        let mut gb1 = vec![0.0f64; f];
        let mut gw2 = vec![0.0f64; w2.num_elements()];
        let mut gb2 = vec![0.0f64; h];
        let mut grads = MlpGrads {
            w1: &mut gw1,
            b1: Some(&mut gb1),
            w2: &mut gw2,
            b2: Some(&mut gb2),
        };
        let dx = mlp_backward(&cache, &p, &mut grads, &dy, &Solo);

        let eps = 1e-3f32;
        let base = run(&x, &w1);
        for idx in [0usize, 5, 11] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let numeric = (run(&xp, &w1) - base) / f64::from(eps);
            let analytic = f64::from(dx.as_slice()[idx]);
            assert!(
                (analytic - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                "dx[{idx}] {analytic} vs {numeric}"
            );
        }
        for idx in [2usize, 19] {
            let mut wp = w1.clone();
            wp.as_mut_slice()[idx] += eps;
            let numeric = (run(&x, &wp) - base) / f64::from(eps);
            assert!(
                (gw1[idx] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                "gw1[{idx}] {} vs {numeric}",
                gw1[idx]
            );
        }
    }

    #[test]
    fn swiglu_mlp_finite_difference() {
        let rng = DetRng::new(21);
        let (t, h, f) = (2, 4, 6);
        let x = Tensor::randn([t, h], 0.5, &rng.derive("x"));
        let w1 = Tensor::randn([2 * f, h], 0.4, &rng.derive("w1"));
        let w2 = Tensor::randn([h, f], 0.4, &rng.derive("w2"));
        let dy = Tensor::randn([t, h], 1.0, &rng.derive("dy"));

        let run = |x: &Tensor| -> f64 {
            let p = MlpParams {
                kind: MlpKind::SwiGlu,
                w1: &w1,
                b1: None,
                w2: &w2,
                b2: None,
            };
            let (y, _) = mlp_forward(x, &p, &Solo);
            ops::dot64(y.as_slice(), dy.as_slice())
        };
        let p = MlpParams {
            kind: MlpKind::SwiGlu,
            w1: &w1,
            b1: None,
            w2: &w2,
            b2: None,
        };
        let (_, cache) = mlp_forward(&x, &p, &Solo);
        let mut gw1 = vec![0.0f64; w1.num_elements()];
        let mut gw2 = vec![0.0f64; w2.num_elements()];
        let mut grads = MlpGrads {
            w1: &mut gw1,
            b1: None,
            w2: &mut gw2,
            b2: None,
        };
        let dx = mlp_backward(&cache, &p, &mut grads, &dy, &Solo);
        let eps = 1e-3f32;
        let base = run(&x);
        for idx in [1usize, 6] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let numeric = (run(&xp) - base) / f64::from(eps);
            let analytic = f64::from(dx.as_slice()[idx]);
            assert!(
                (analytic - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                "dx[{idx}] {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn top_k_is_deterministic_with_ties() {
        assert_eq!(top_k_indices(&[0.25, 0.25, 0.25, 0.25], 2), vec![0, 1]);
        assert_eq!(top_k_indices(&[0.1, 0.4, 0.2, 0.3], 2), vec![1, 3]);
    }

    #[test]
    fn moe_gates_sum_to_one() {
        let rng = DetRng::new(22);
        let (t, h, f, e) = (4, 4, 6, 4);
        let x = Tensor::randn([t, h], 0.5, &rng.derive("x"));
        let router = Tensor::randn([e, h], 0.4, &rng.derive("r"));
        let w1 = Tensor::randn([e, 2 * f, h], 0.4, &rng.derive("w1"));
        let w2 = Tensor::randn([e, h, f], 0.4, &rng.derive("w2"));
        let p = MoeParams {
            kind: MlpKind::SwiGlu,
            router: &router,
            w1: &w1,
            w2: &w2,
            top_k: 2,
        };
        let (_, cache) = moe_forward(&x, &p, &Solo);
        for route in &cache.routes {
            let s: f64 = route.gates.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert_eq!(route.experts.len(), 2);
        }
    }

    #[test]
    fn moe_backward_finite_difference() {
        let rng = DetRng::new(23);
        let (t, h, f, e) = (3, 4, 4, 3);
        let x = Tensor::randn([t, h], 0.5, &rng.derive("x"));
        let router = Tensor::randn([e, h], 0.4, &rng.derive("r"));
        let w1 = Tensor::randn([e, 2 * f, h], 0.4, &rng.derive("w1"));
        let w2 = Tensor::randn([e, h, f], 0.4, &rng.derive("w2"));
        let dy = Tensor::randn([t, h], 1.0, &rng.derive("dy"));

        let run = |x: &Tensor, router: &Tensor, w1: &Tensor, w2: &Tensor| -> f64 {
            let p = MoeParams {
                kind: MlpKind::SwiGlu,
                router,
                w1,
                w2,
                top_k: 2,
            };
            let (y, _) = moe_forward(x, &p, &Solo);
            ops::dot64(y.as_slice(), dy.as_slice())
        };
        let p = MoeParams {
            kind: MlpKind::SwiGlu,
            router: &router,
            w1: &w1,
            w2: &w2,
            top_k: 2,
        };
        let (_, cache) = moe_forward(&x, &p, &Solo);
        let mut gr = vec![0.0f64; router.num_elements()];
        let mut gw1 = vec![0.0f64; w1.num_elements()];
        let mut gw2 = vec![0.0f64; w2.num_elements()];
        let mut grads = MoeGrads {
            router: &mut gr,
            w1: &mut gw1,
            w2: &mut gw2,
        };
        let dx = moe_backward(&cache, &p, &mut grads, &dy, &Solo);

        let eps = 1e-3f32;
        let base = run(&x, &router, &w1, &w2);
        for idx in [0usize, 7] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let numeric = (run(&xp, &router, &w1, &w2) - base) / f64::from(eps);
            let analytic = f64::from(dx.as_slice()[idx]);
            assert!(
                (analytic - numeric).abs() < 3e-2 * numeric.abs().max(1.0),
                "dx[{idx}] {analytic} vs {numeric}"
            );
        }
        for idx in [1usize, 9] {
            let mut rp = router.clone();
            rp.as_mut_slice()[idx] += eps;
            let numeric = (run(&x, &rp, &w1, &w2) - base) / f64::from(eps);
            assert!(
                (gr[idx] - numeric).abs() < 3e-2 * numeric.abs().max(1.0),
                "grouter[{idx}] {} vs {numeric}",
                gr[idx]
            );
        }
        for idx in [4usize, 40] {
            let mut wp = w1.clone();
            wp.as_mut_slice()[idx] += eps;
            let numeric = (run(&x, &router, &wp, &w2) - base) / f64::from(eps);
            assert!(
                (gw1[idx] - numeric).abs() < 3e-2 * numeric.abs().max(1.0),
                "gw1[{idx}] {} vs {numeric}",
                gw1[idx]
            );
        }
        for idx in [2usize, 30] {
            let mut wp = w2.clone();
            wp.as_mut_slice()[idx] += eps;
            let numeric = (run(&x, &router, &w1, &wp) - base) / f64::from(eps);
            assert!(
                (gw2[idx] - numeric).abs() < 3e-2 * numeric.abs().max(1.0),
                "gw2[{idx}] {} vs {numeric}",
                gw2[idx]
            );
        }
    }

    use ucp_tensor::ops;
}
