//! Per-rank parameter and gradient storage.

use std::collections::BTreeMap;

use ucp_tensor::{DType, DetRng, Tensor};

use crate::spec::{LayerRole, ParamSpec};

/// A rank's named parameter shards.
///
/// Keys are canonical parameter names; iteration order (BTreeMap) is the
/// deterministic flattening order used by the ZeRO partitioner.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: BTreeMap<String, Tensor>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> ParamStore {
        ParamStore::default()
    }

    /// Materialize shards for every spec in `specs` whose role is within
    /// this stage's ownership, at TP coordinate `(tp_rank / tp_size)`.
    ///
    /// `owns` decides stage ownership (pipeline assignment).
    pub fn init<F>(
        specs: &[ParamSpec],
        seed_rng: &DetRng,
        tp_size: usize,
        tp_rank: usize,
        owns: F,
    ) -> ParamStore
    where
        F: Fn(&LayerRole) -> bool,
    {
        let mut params = BTreeMap::new();
        for spec in specs {
            if owns(&spec.role) {
                params.insert(
                    spec.name.clone(),
                    spec.materialize_shard(seed_rng, tp_size, tp_rank),
                );
            }
        }
        ParamStore { params }
    }

    /// Insert or replace a parameter.
    pub fn insert(&mut self, name: impl Into<String>, t: Tensor) {
        self.params.insert(name.into(), t);
    }

    /// Fetch a parameter.
    ///
    /// # Panics
    ///
    /// Panics if absent — an absent required parameter is a wiring bug, not
    /// a runtime condition.
    pub fn get(&self, name: &str) -> &Tensor {
        self.params
            .get(name)
            .unwrap_or_else(|| panic!("parameter {name} missing from store"))
    }

    /// Fetch a parameter if present.
    pub fn get_opt(&self, name: &str) -> Option<&Tensor> {
        self.params.get(name)
    }

    /// Whether the store holds `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.params.contains_key(name)
    }

    /// Iterate `(name, tensor)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Tensor)> {
        self.params.iter()
    }

    /// Names in deterministic order.
    pub fn names(&self) -> Vec<String> {
        self.params.keys().cloned().collect()
    }

    /// Number of parameters held.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are held.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total elements across all held shards.
    pub fn num_elements(&self) -> usize {
        self.params.values().map(Tensor::num_elements).sum()
    }

    /// Quantize every parameter to `dtype` in place (mixed-precision model
    /// copy refresh after an fp32 master update).
    pub fn cast_all(&mut self, dtype: DType) {
        for t in self.params.values_mut() {
            *t = t.cast(dtype);
        }
    }
}

/// f64 gradient accumulators, keyed like [`ParamStore`].
#[derive(Debug, Default)]
pub struct GradStore {
    grads: BTreeMap<String, Vec<f64>>,
}

impl GradStore {
    /// Zeroed accumulators matching the shapes held in `params`.
    pub fn zeros_like(params: &ParamStore) -> GradStore {
        let grads = params
            .iter()
            .map(|(name, t)| (name.clone(), vec![0.0f64; t.num_elements()]))
            .collect();
        GradStore { grads }
    }

    /// Temporarily remove a buffer (so several can be borrowed mutably at
    /// once); pair with [`GradStore::put`].
    ///
    /// # Panics
    ///
    /// Panics if absent.
    pub fn take(&mut self, name: &str) -> Vec<f64> {
        self.grads
            .remove(name)
            .unwrap_or_else(|| panic!("gradient buffer {name} missing"))
    }

    /// Return a buffer taken with [`GradStore::take`].
    pub fn put(&mut self, name: impl Into<String>, buf: Vec<f64>) {
        self.grads.insert(name.into(), buf);
    }

    /// Mutable access to a single buffer.
    pub fn get_mut(&mut self, name: &str) -> &mut [f64] {
        self.grads
            .get_mut(name)
            .unwrap_or_else(|| panic!("gradient buffer {name} missing"))
    }

    /// Read access.
    pub fn get(&self, name: &str) -> &[f64] {
        self.grads
            .get(name)
            .unwrap_or_else(|| panic!("gradient buffer {name} missing"))
    }

    /// Whether a buffer exists.
    pub fn contains(&self, name: &str) -> bool {
        self.grads.contains_key(name)
    }

    /// Iterate `(name, buffer)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Vec<f64>)> {
        self.grads.iter()
    }

    /// Reset all buffers to zero.
    pub fn zero(&mut self) {
        for buf in self.grads.values_mut() {
            buf.fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::spec::param_specs;

    #[test]
    fn init_filters_by_role() {
        let cfg = ModelConfig::gpt3_tiny();
        let specs = param_specs(&cfg);
        let rng = DetRng::new(1);
        let store = ParamStore::init(
            &specs,
            &rng,
            1,
            0,
            |role| matches!(role, LayerRole::Block(i) if *i < 2),
        );
        assert!(store.contains("layers.0.attention.query_key_value.weight"));
        assert!(store.contains("layers.1.mlp.dense_4h_to_h.weight"));
        assert!(!store.contains("layers.2.mlp.dense_4h_to_h.weight"));
        assert!(!store.contains("embedding.word_embeddings.weight"));
    }

    #[test]
    fn tp_shard_sizes() {
        let cfg = ModelConfig::gpt3_tiny();
        let specs = param_specs(&cfg);
        let rng = DetRng::new(1);
        let full = ParamStore::init(&specs, &rng, 1, 0, |_| true);
        let half = ParamStore::init(&specs, &rng, 2, 0, |_| true);
        let qkv = "layers.0.attention.query_key_value.weight";
        assert_eq!(
            half.get(qkv).num_elements() * 2,
            full.get(qkv).num_elements()
        );
        // Replicated params stay full.
        let ln = "layers.0.input_layernorm.weight";
        assert_eq!(half.get(ln).num_elements(), full.get(ln).num_elements());
    }

    #[test]
    fn grad_store_take_put_roundtrip() {
        let cfg = ModelConfig::gpt3_tiny();
        let specs = param_specs(&cfg);
        let rng = DetRng::new(1);
        let store = ParamStore::init(&specs, &rng, 1, 0, |r| *r == LayerRole::Head);
        let mut grads = GradStore::zeros_like(&store);
        let mut buf = grads.take("lm_head.weight");
        buf[0] = 1.5;
        grads.put("lm_head.weight", buf);
        assert_eq!(grads.get("lm_head.weight")[0], 1.5);
        grads.zero();
        assert_eq!(grads.get("lm_head.weight")[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "missing from store")]
    fn missing_param_panics() {
        ParamStore::new().get("nope");
    }

    #[test]
    fn cast_all_quantizes() {
        let mut store = ParamStore::new();
        store.insert(
            "w",
            Tensor::from_vec(vec![1.0 + f32::EPSILON; 2], [2]).unwrap(),
        );
        store.cast_all(DType::BF16);
        assert!(store.get("w").as_slice().iter().all(|v| *v == 1.0));
        assert_eq!(store.get("w").dtype(), DType::BF16);
    }
}
