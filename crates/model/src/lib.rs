//! Decoder-only transformer family with hand-written autograd.
//!
//! This crate is the "Megatron-LM" stand-in of the UCP reproduction: it
//! defines the model architectures of the paper's evaluation (GPT-3-style,
//! LLaMA-style, BLOOM-style, and Mixtral-style MoE), their named-parameter
//! inventories with tensor-parallel partition rules, and pipeline-stage
//! execution with exact hand-derived backward passes.
//!
//! Determinism contract: given a run seed, parameter initialization, the
//! forward pass, and all gradients are identical across any TP/PP/SP layout
//! up to f64-accumulation rounding (≪ f32 epsilon). Parameter gradients
//! accumulate in `f64` buffers so the data-parallel reduction order cannot
//! perturb training (the property that lets the reproduction assert loss
//! continuity far tighter than the paper's ±0.02 band).

pub mod attention;
pub mod config;
pub mod ffn;
pub mod group_ops;
pub mod layers;
pub mod spec;
pub mod stage;
pub mod store;

pub use config::{MlpKind, ModelConfig, NormKind, PositionKind, SizePreset};
pub use group_ops::{GroupOps, Solo};
pub use spec::{find_spec, param_specs, Init, LayerRole, ParamSpec, Partition, ShardSegment};
pub use stage::{Stage, StageCache, StageIn, StageLayout, StageOut};
pub use store::{GradStore, ParamStore};
