//! Communication abstraction for tensor- and sequence-parallel math.
//!
//! The model crate stays independent of the cluster implementation: layer
//! math calls these two collectives through a trait object, the trainer
//! wires them to real process groups, and [`Solo`] provides the degenerate
//! single-member implementation so `TP=1`/`SP=1` code paths involve no
//! communication at all.

use ucp_tensor::Tensor;

/// The collectives layer math needs within one parallel group.
pub trait GroupOps {
    /// Number of members in the group.
    fn size(&self) -> usize;
    /// This member's index within the group.
    fn rank(&self) -> usize;
    /// Deterministic elementwise sum across the group.
    fn all_reduce_sum(&self, t: &Tensor) -> Tensor;
    /// Gather all members' tensors and concatenate along `dim`, member
    /// order.
    fn all_gather_cat(&self, t: &Tensor, dim: usize) -> Tensor;
}

/// A group of one: all collectives are identities.
pub struct Solo;

impl GroupOps for Solo {
    fn size(&self) -> usize {
        1
    }

    fn rank(&self) -> usize {
        0
    }

    fn all_reduce_sum(&self, t: &Tensor) -> Tensor {
        t.clone()
    }

    fn all_gather_cat(&self, t: &Tensor, _dim: usize) -> Tensor {
        t.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_is_identity() {
        let t = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let g = Solo;
        assert_eq!(g.size(), 1);
        assert_eq!(g.rank(), 0);
        assert!(g.all_reduce_sum(&t).bitwise_eq(&t));
        assert!(g.all_gather_cat(&t, 0).bitwise_eq(&t));
    }
}
