//! A pipeline stage: the contiguous slice of the model owned by one
//! (pp, tp, sp) coordinate, with microbatch forward/backward execution.
//!
//! The trainer drives stages GPipe-style: forward activations flow
//! stage-to-stage via point-to-point sends, the last stage computes the
//! loss, and gradients flow back in reverse. Within a stage, tensor- and
//! sequence-parallel collectives run through the [`GroupOps`] handles.

use std::ops::Range;

use ucp_tensor::{ops, DetRng, Tensor};

use crate::attention::{
    attention_backward, attention_forward, AttnCache, AttnDims, AttnGrads, AttnParams,
};
use crate::config::{ModelConfig, NormKind, PositionKind};
use crate::ffn::{
    mlp_backward, mlp_forward, moe_backward, moe_forward, MlpCache, MlpGrads, MlpParams, MoeCache,
    MoeGrads, MoeParams,
};
use crate::group_ops::GroupOps;
use crate::layers::{
    cross_entropy, embedding_backward, embedding_forward, layernorm_backward, layernorm_forward,
    linear_backward, linear_forward, rmsnorm_backward, rmsnorm_forward, LinearCache, NormCache,
};
use crate::spec::{param_specs, LayerRole, ParamSpec};
use crate::store::{GradStore, ParamStore};

/// The parallel coordinates and layer ownership of a stage.
#[derive(Debug, Clone)]
pub struct StageLayout {
    /// Tensor-parallel group size.
    pub tp_size: usize,
    /// This rank's TP index.
    pub tp_rank: usize,
    /// Sequence-parallel group size.
    pub sp_size: usize,
    /// This rank's SP index.
    pub sp_rank: usize,
    /// Transformer blocks owned by this stage.
    pub blocks: Range<usize>,
    /// Whether this stage owns the embeddings (first pipeline stage).
    pub is_first: bool,
    /// Whether this stage owns the head and computes the loss (last stage).
    pub is_last: bool,
}

impl StageLayout {
    /// Ownership predicate over parameter roles.
    pub fn owns(&self, role: &LayerRole) -> bool {
        match role {
            LayerRole::Embedding => self.is_first,
            LayerRole::Head => self.is_last,
            LayerRole::Block(i) => self.blocks.contains(i),
            LayerRole::SharedEmbedding => self.is_first || self.is_last,
        }
    }
}

/// Input to a stage's microbatch forward.
pub enum StageIn<'a> {
    /// Token ids `[batch · s_local]`, batch-major (first stage only).
    Tokens(&'a [u32]),
    /// Hidden activations from the previous stage.
    Hidden(Tensor),
}

/// Output of a stage's microbatch forward.
pub enum StageOut {
    /// Activations to ship to the next stage.
    Hidden(Tensor),
    /// Loss produced by the last stage: sum of token NLLs and token count
    /// (local to this SP rank; the trainer reduces across SP×DP).
    Loss {
        /// Sum of per-token negative log-likelihoods.
        sum: f64,
        /// Number of tokens contributing.
        count: usize,
    },
}

enum FfnCache {
    Mlp(MlpCache),
    Moe(MoeCache),
}

struct BlockCache {
    norm1: NormCache,
    attn: AttnCache,
    norm2: NormCache,
    ffn: FfnCache,
}

/// Saved forward state for one microbatch.
pub struct StageCache {
    batch: usize,
    s_local: usize,
    tokens: Option<Vec<u32>>,
    blocks: Vec<BlockCache>,
    final_norm: Option<NormCache>,
    head: Option<LinearCache>,
    /// Local-vocab slice of the cross-entropy logit gradient.
    dlogits_local: Option<Tensor>,
}

/// One pipeline stage's parameters plus execution logic.
pub struct Stage {
    /// Model architecture.
    pub cfg: ModelConfig,
    /// Parallel coordinates and ownership.
    pub layout: StageLayout,
    /// This rank's parameter shards.
    pub params: ParamStore,
    /// Cached full inventory (for spec lookups).
    specs: Vec<ParamSpec>,
}

impl Stage {
    /// Materialize a stage from the run seed. Initialization is identical
    /// across all parallel layouts (see [`crate::spec::ParamSpec`]).
    pub fn new(cfg: ModelConfig, layout: StageLayout, seed_rng: &DetRng) -> Stage {
        let specs = param_specs(&cfg);
        let params = ParamStore::init(&specs, seed_rng, layout.tp_size, layout.tp_rank, |role| {
            layout.owns(role)
        });
        Stage {
            cfg,
            layout,
            params,
            specs,
        }
    }

    /// The full parameter inventory of the model (not just this stage).
    pub fn specs(&self) -> &[ParamSpec] {
        &self.specs
    }

    fn norm_forward(&self, prefix: &str, x: &Tensor) -> (Tensor, NormCache) {
        let g = self.params.get(&format!("{prefix}.weight"));
        match self.cfg.norm {
            NormKind::LayerNorm => {
                let b = self.params.get(&format!("{prefix}.bias"));
                layernorm_forward(x, g, b)
            }
            NormKind::RmsNorm => rmsnorm_forward(x, g),
        }
    }

    fn norm_backward(
        &self,
        prefix: &str,
        cache: &NormCache,
        dy: &Tensor,
        grads: &mut GradStore,
    ) -> Tensor {
        let g = self.params.get(&format!("{prefix}.weight"));
        let mut dg = grads.take(&format!("{prefix}.weight"));
        let dx = match self.cfg.norm {
            NormKind::LayerNorm => {
                let mut db = grads.take(&format!("{prefix}.bias"));
                let dx = layernorm_backward(cache, g, dy, &mut dg, &mut db);
                grads.put(format!("{prefix}.bias"), db);
                dx
            }
            NormKind::RmsNorm => rmsnorm_backward(cache, g, dy, &mut dg),
        };
        grads.put(format!("{prefix}.weight"), dg);
        dx
    }

    fn attn_dims(&self, batch: usize, s_local: usize) -> AttnDims {
        let tp = self.layout.tp_size;
        AttnDims {
            batch,
            s_local,
            seq_total: s_local * self.layout.sp_size,
            n_q_local: self.cfg.num_heads / tp,
            n_kv_local: self.cfg.num_kv_heads / tp,
            head_dim: self.cfg.head_dim(),
            pos_start: self.layout.sp_rank * s_local,
            q_head_start: self.layout.tp_rank * (self.cfg.num_heads / tp),
            n_heads_total: self.cfg.num_heads,
            position: self.cfg.position,
        }
    }

    /// Microbatch forward. `targets` must be provided on the last stage.
    pub fn forward(
        &self,
        input: StageIn<'_>,
        batch: usize,
        targets: Option<&[u32]>,
        tp: &dyn GroupOps,
        sp: &dyn GroupOps,
    ) -> (StageOut, StageCache) {
        // Stage input: embedding lookup or upstream activations.
        let (mut h, tokens, s_local) = match input {
            StageIn::Tokens(tokens) => {
                assert!(self.layout.is_first, "tokens fed to a non-first stage");
                let s_local = tokens.len() / batch;
                let emb = self.params.get("embedding.word_embeddings.weight");
                // Shard geometry from the tensor itself: under padded vocab
                // sharding the rows per rank exceed vocab/tp.
                let vocab_start = self.layout.tp_rank * emb.shape().dims()[0];
                let partial = embedding_forward(tokens, emb, vocab_start);
                let mut h = tp.all_reduce_sum(&partial);
                if self.cfg.position == PositionKind::Learned {
                    let pos = self.params.get("embedding.position_embeddings.weight");
                    let hdim = self.cfg.hidden_size;
                    let ps = pos.as_slice();
                    let hs = h.as_mut_slice();
                    for b in 0..batch {
                        for s in 0..s_local {
                            let gpos = self.layout.sp_rank * s_local + s;
                            let t = b * s_local + s;
                            for i in 0..hdim {
                                hs[t * hdim + i] += ps[gpos * hdim + i];
                            }
                        }
                    }
                }
                (h, Some(tokens.to_vec()), s_local)
            }
            StageIn::Hidden(h) => {
                let s_local = h.shape().dims()[0] / batch;
                (h, None, s_local)
            }
        };

        // Transformer blocks.
        let dims = self.attn_dims(batch, s_local);
        let mut block_caches = Vec::with_capacity(self.layout.blocks.len());
        for i in self.layout.blocks.clone() {
            let p = |s: &str| format!("layers.{i}.{s}");
            let (ln1, norm1) = self.norm_forward(&p("input_layernorm"), &h);
            let attn_params = AttnParams {
                qkv_w: self.params.get(&p("attention.query_key_value.weight")),
                qkv_b: self.params.get_opt(&p("attention.query_key_value.bias")),
                dense_w: self.params.get(&p("attention.dense.weight")),
                dense_b: self.params.get_opt(&p("attention.dense.bias")),
            };
            let (attn_out, attn) = attention_forward(&ln1, &attn_params, &dims, tp, sp);
            let x1 = ops::add(&h, &attn_out).expect("residual dims");

            let (ln2, norm2) = self.norm_forward(&p("post_attention_layernorm"), &x1);
            let (ffn_out, ffn) = if self.cfg.is_moe() {
                let moe_params = MoeParams {
                    kind: self.cfg.mlp,
                    router: self.params.get(&p("moe.router.weight")),
                    w1: self.params.get(&p("moe.experts.dense_h_to_4h.weight")),
                    w2: self.params.get(&p("moe.experts.dense_4h_to_h.weight")),
                    top_k: self.cfg.top_k,
                };
                let (out, cache) = moe_forward(&ln2, &moe_params, tp);
                (out, FfnCache::Moe(cache))
            } else {
                let mlp_params = self.mlp_params(i);
                let (out, cache) = mlp_forward(&ln2, &mlp_params, tp);
                (out, FfnCache::Mlp(cache))
            };
            h = ops::add(&x1, &ffn_out).expect("residual dims");
            block_caches.push(BlockCache {
                norm1,
                attn,
                norm2,
                ffn,
            });
        }

        // Head or hand-off.
        if self.layout.is_last {
            let targets = targets.expect("last stage requires targets");
            let (hn, final_norm) = self.norm_forward("final_layernorm", &h);
            let head_name = if self.cfg.tie_embeddings {
                "embedding.word_embeddings.weight"
            } else {
                "lm_head.weight"
            };
            let lm_head = self.params.get(head_name);
            let vocab_local = lm_head.shape().dims()[0];
            let vocab_start = self.layout.tp_rank * vocab_local;
            let (logits_local, head_cache) = linear_forward(&hn, lm_head, None);
            let logits = tp.all_gather_cat(&logits_local, 1);
            // Drop alignment-padding logit columns before the softmax —
            // padded vocab rows must never receive probability mass.
            let padded_vocab = logits.shape().dims()[1];
            let logits = if padded_vocab > self.cfg.vocab_size {
                logits
                    .narrow(1, 0, self.cfg.vocab_size)
                    .expect("padded vocab exceeds logical vocab")
            } else {
                logits
            };
            let (loss_sum, dlogits) = cross_entropy(&logits, targets);
            // Re-introduce zero gradient columns for the padding, then take
            // this rank's slice.
            let dlogits = if padded_vocab > self.cfg.vocab_size {
                dlogits
                    .pad_dim(1, padded_vocab)
                    .expect("pad gradient back to padded vocab")
            } else {
                dlogits
            };
            let dlogits_local = dlogits
                .narrow(1, vocab_start, vocab_local)
                .expect("local vocab slice");
            (
                StageOut::Loss {
                    sum: loss_sum,
                    count: targets.len(),
                },
                StageCache {
                    batch,
                    s_local,
                    tokens,
                    blocks: block_caches,
                    final_norm: Some(final_norm),
                    head: Some(head_cache),
                    dlogits_local: Some(dlogits_local),
                },
            )
        } else {
            (
                StageOut::Hidden(h),
                StageCache {
                    batch,
                    s_local,
                    tokens,
                    blocks: block_caches,
                    final_norm: None,
                    head: None,
                    dlogits_local: None,
                },
            )
        }
    }

    fn mlp_params(&self, i: usize) -> MlpParams<'_> {
        let p = |s: &str| format!("layers.{i}.{s}");
        match self.cfg.mlp {
            crate::config::MlpKind::Gelu => MlpParams {
                kind: self.cfg.mlp,
                w1: self.params.get(&p("mlp.dense_h_to_4h.weight")),
                b1: self.params.get_opt(&p("mlp.dense_h_to_4h.bias")),
                w2: self.params.get(&p("mlp.dense_4h_to_h.weight")),
                b2: self.params.get_opt(&p("mlp.dense_4h_to_h.bias")),
            },
            crate::config::MlpKind::SwiGlu => MlpParams {
                kind: self.cfg.mlp,
                w1: self.params.get(&p("mlp.gate_up.weight")),
                b1: None,
                w2: self.params.get(&p("mlp.dense_4h_to_h.weight")),
                b2: self.params.get_opt(&p("mlp.dense_4h_to_h.bias")),
            },
        }
    }

    /// Microbatch backward. `dh_next` is the activation gradient from the
    /// next stage (`None` on the last stage). Returns the gradient to ship
    /// to the previous stage (`None` on the first stage).
    pub fn backward(
        &self,
        cache: &StageCache,
        dh_next: Option<Tensor>,
        grads: &mut GradStore,
        tp: &dyn GroupOps,
        sp: &dyn GroupOps,
    ) -> Option<Tensor> {
        // Seed the backward chain.
        let mut dh = if self.layout.is_last {
            debug_assert!(dh_next.is_none());
            let dlogits_local = cache.dlogits_local.as_ref().expect("loss was computed");
            let head_cache = cache.head.as_ref().expect("head cache");
            let head_name = if self.cfg.tie_embeddings {
                "embedding.word_embeddings.weight"
            } else {
                "lm_head.weight"
            };
            let lm_head = self.params.get(head_name);
            let mut g_head = grads.take(head_name);
            let dhn = linear_backward(head_cache, lm_head, dlogits_local, &mut g_head, None);
            grads.put(head_name, g_head);
            let dhn = tp.all_reduce_sum(&dhn);
            self.norm_backward(
                "final_layernorm",
                cache.final_norm.as_ref().expect("final norm cache"),
                &dhn,
                grads,
            )
        } else {
            dh_next.expect("non-last stage requires upstream gradient")
        };

        // Blocks in reverse.
        for (idx, i) in self.layout.blocks.clone().enumerate().rev() {
            let p = |s: &str| format!("layers.{i}.{s}");
            let bc = &cache.blocks[idx];

            // FFN path.
            let d_ln2_out = match &bc.ffn {
                FfnCache::Mlp(mlp_cache) => {
                    let params = self.mlp_params(i);
                    let (w1_name, b1_name) = match self.cfg.mlp {
                        crate::config::MlpKind::Gelu => {
                            (p("mlp.dense_h_to_4h.weight"), p("mlp.dense_h_to_4h.bias"))
                        }
                        crate::config::MlpKind::SwiGlu => (p("mlp.gate_up.weight"), String::new()),
                    };
                    let mut gw1 = grads.take(&w1_name);
                    let mut gb1 = if params.b1.is_some() {
                        Some(grads.take(&b1_name))
                    } else {
                        None
                    };
                    let mut gw2 = grads.take(&p("mlp.dense_4h_to_h.weight"));
                    let mut gb2 = if params.b2.is_some() {
                        Some(grads.take(&p("mlp.dense_4h_to_h.bias")))
                    } else {
                        None
                    };
                    let mut mg = MlpGrads {
                        w1: &mut gw1,
                        b1: gb1.as_deref_mut(),
                        w2: &mut gw2,
                        b2: gb2.as_deref_mut(),
                    };
                    let dx = mlp_backward(mlp_cache, &params, &mut mg, &dh, tp);
                    grads.put(w1_name, gw1);
                    if let Some(gb1) = gb1 {
                        grads.put(b1_name, gb1);
                    }
                    grads.put(p("mlp.dense_4h_to_h.weight"), gw2);
                    if let Some(gb2) = gb2 {
                        grads.put(p("mlp.dense_4h_to_h.bias"), gb2);
                    }
                    dx
                }
                FfnCache::Moe(moe_cache) => {
                    let params = MoeParams {
                        kind: self.cfg.mlp,
                        router: self.params.get(&p("moe.router.weight")),
                        w1: self.params.get(&p("moe.experts.dense_h_to_4h.weight")),
                        w2: self.params.get(&p("moe.experts.dense_4h_to_h.weight")),
                        top_k: self.cfg.top_k,
                    };
                    let mut gr = grads.take(&p("moe.router.weight"));
                    let mut gw1 = grads.take(&p("moe.experts.dense_h_to_4h.weight"));
                    let mut gw2 = grads.take(&p("moe.experts.dense_4h_to_h.weight"));
                    let mut mg = MoeGrads {
                        router: &mut gr,
                        w1: &mut gw1,
                        w2: &mut gw2,
                    };
                    let dx = moe_backward(moe_cache, &params, &mut mg, &dh, tp);
                    grads.put(p("moe.router.weight"), gr);
                    grads.put(p("moe.experts.dense_h_to_4h.weight"), gw1);
                    grads.put(p("moe.experts.dense_4h_to_h.weight"), gw2);
                    dx
                }
            };
            let d_x1_norm =
                self.norm_backward(&p("post_attention_layernorm"), &bc.norm2, &d_ln2_out, grads);
            let dx1 = ops::add(&dh, &d_x1_norm).expect("residual dims");

            // Attention path.
            let attn_params = AttnParams {
                qkv_w: self.params.get(&p("attention.query_key_value.weight")),
                qkv_b: self.params.get_opt(&p("attention.query_key_value.bias")),
                dense_w: self.params.get(&p("attention.dense.weight")),
                dense_b: self.params.get_opt(&p("attention.dense.bias")),
            };
            let mut g_qkv_w = grads.take(&p("attention.query_key_value.weight"));
            let mut g_qkv_b = attn_params
                .qkv_b
                .is_some()
                .then(|| grads.take(&p("attention.query_key_value.bias")));
            let mut g_dense_w = grads.take(&p("attention.dense.weight"));
            let mut g_dense_b = attn_params
                .dense_b
                .is_some()
                .then(|| grads.take(&p("attention.dense.bias")));
            let mut ag = AttnGrads {
                qkv_w: &mut g_qkv_w,
                qkv_b: g_qkv_b.as_deref_mut(),
                dense_w: &mut g_dense_w,
                dense_b: g_dense_b.as_deref_mut(),
            };
            let d_ln1_out = attention_backward(&bc.attn, &attn_params, &mut ag, &dx1, tp, sp);
            grads.put(p("attention.query_key_value.weight"), g_qkv_w);
            if let Some(g) = g_qkv_b {
                grads.put(p("attention.query_key_value.bias"), g);
            }
            grads.put(p("attention.dense.weight"), g_dense_w);
            if let Some(g) = g_dense_b {
                grads.put(p("attention.dense.bias"), g);
            }
            let d_h_norm = self.norm_backward(&p("input_layernorm"), &bc.norm1, &d_ln1_out, grads);
            dh = ops::add(&dx1, &d_h_norm).expect("residual dims");
        }

        // Embedding backward on the first stage.
        if self.layout.is_first {
            let tokens = cache.tokens.as_ref().expect("first stage saw tokens");
            let emb_rows = self
                .params
                .get("embedding.word_embeddings.weight")
                .shape()
                .dims()[0];
            {
                let vocab_start = self.layout.tp_rank * emb_rows;
                let dw = grads.get_mut("embedding.word_embeddings.weight");
                embedding_backward(tokens, &dh, vocab_start, emb_rows, dw);
            }
            if self.cfg.position == PositionKind::Learned {
                let hdim = self.cfg.hidden_size;
                let dpos = grads.get_mut("embedding.position_embeddings.weight");
                let dhs = dh.as_slice();
                for b in 0..cache.batch {
                    for s in 0..cache.s_local {
                        let gpos = self.layout.sp_rank * cache.s_local + s;
                        let t = b * cache.s_local + s;
                        for i in 0..hdim {
                            dpos[gpos * hdim + i] += f64::from(dhs[t * hdim + i]);
                        }
                    }
                }
            }
            None
        } else {
            Some(dh)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group_ops::Solo;

    fn solo_layout(cfg: &ModelConfig) -> StageLayout {
        StageLayout {
            tp_size: 1,
            tp_rank: 0,
            sp_size: 1,
            sp_rank: 0,
            blocks: 0..cfg.num_layers,
            is_first: true,
            is_last: true,
        }
    }

    fn toy_batch(cfg: &ModelConfig, batch: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
        let mut rng = DetRng::new(seed);
        let n = batch * cfg.max_seq_len;
        let mut stream: Vec<u32> = Vec::with_capacity(n + 1);
        for _ in 0..n + batch {
            stream.push(rng.next_bounded(cfg.vocab_size as u64) as u32);
        }
        // inputs = tokens[0..n), targets shifted by one within each row.
        let mut inputs = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for b in 0..batch {
            for s in 0..cfg.max_seq_len {
                inputs.push(stream[b * (cfg.max_seq_len + 1) + s]);
                targets.push(stream[b * (cfg.max_seq_len + 1) + s + 1]);
            }
        }
        (inputs, targets)
    }

    fn full_stage(cfg: &ModelConfig, seed: u64) -> Stage {
        Stage::new(cfg.clone(), solo_layout(cfg), &DetRng::new(seed))
    }

    #[test]
    fn initial_loss_near_uniform() {
        for cfg in [
            ModelConfig::gpt3_tiny(),
            ModelConfig::llama_tiny(),
            ModelConfig::bloom_tiny(),
            ModelConfig::moe_tiny(),
        ] {
            let stage = full_stage(&cfg, 42);
            let (inputs, targets) = toy_batch(&cfg, 2, 7);
            let (out, _) = stage.forward(StageIn::Tokens(&inputs), 2, Some(&targets), &Solo, &Solo);
            let StageOut::Loss { sum, count } = out else {
                panic!("last stage must emit loss");
            };
            let mean = sum / count as f64;
            let uniform = (cfg.vocab_size as f64).ln();
            assert!(
                (mean - uniform).abs() < 0.5,
                "{}: initial loss {mean} should be near ln(V) = {uniform}",
                cfg.family
            );
        }
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        // A crude full-batch gradient step must reduce the loss on the same
        // batch — end-to-end sanity of the whole backward pass.
        for cfg in [ModelConfig::gpt3_tiny(), ModelConfig::llama_tiny()] {
            let mut stage = full_stage(&cfg, 1);
            let (inputs, targets) = toy_batch(&cfg, 2, 3);
            let run = |stage: &Stage| {
                let (out, cache) =
                    stage.forward(StageIn::Tokens(&inputs), 2, Some(&targets), &Solo, &Solo);
                let StageOut::Loss { sum, count } = out else {
                    unreachable!()
                };
                (sum / count as f64, cache)
            };
            let (loss0, cache) = run(&stage);
            let mut grads = GradStore::zeros_like(&stage.params);
            let out = stage.backward(&cache, None, &mut grads, &Solo, &Solo);
            assert!(out.is_none(), "first stage returns no upstream grad");

            let token_count = targets.len() as f64;
            let lr = 0.25f32;
            let names = stage.params.names();
            for name in names {
                let g = grads.get(&name).to_vec();
                let t = stage.params.get(&name).clone();
                let mut new = t.clone();
                for (v, gv) in new.as_mut_slice().iter_mut().zip(g) {
                    *v -= lr * (gv / token_count) as f32;
                }
                stage.params.insert(name, new);
            }
            let (loss1, _) = run(&stage);
            assert!(
                loss1 < loss0,
                "{}: loss should drop after an SGD step ({loss0} → {loss1})",
                cfg.family
            );
        }
    }

    #[test]
    fn moe_stage_trains() {
        let cfg = ModelConfig::moe_tiny();
        let mut stage = full_stage(&cfg, 2);
        let (inputs, targets) = toy_batch(&cfg, 2, 9);
        let run = |stage: &Stage| {
            let (out, cache) =
                stage.forward(StageIn::Tokens(&inputs), 2, Some(&targets), &Solo, &Solo);
            let StageOut::Loss { sum, count } = out else {
                unreachable!()
            };
            (sum / count as f64, cache)
        };
        let (loss0, cache) = run(&stage);
        let mut grads = GradStore::zeros_like(&stage.params);
        stage.backward(&cache, None, &mut grads, &Solo, &Solo);
        let token_count = targets.len() as f64;
        for name in stage.params.names() {
            let g = grads.get(&name).to_vec();
            let mut new = stage.params.get(&name).clone();
            for (v, gv) in new.as_mut_slice().iter_mut().zip(g) {
                *v -= 0.2 * (gv / token_count) as f32;
            }
            stage.params.insert(name, new);
        }
        let (loss1, _) = run(&stage);
        assert!(loss1 < loss0, "MoE loss should drop ({loss0} → {loss1})");
    }

    #[test]
    fn split_stages_match_full_model() {
        // Running layers 0..4 and 4..8 as two chained stages must produce
        // the same loss as the single full stage (pipeline correctness).
        let cfg = ModelConfig::gpt3_tiny();
        let rng = DetRng::new(5);
        let full = full_stage(&cfg, 5);
        let (inputs, targets) = toy_batch(&cfg, 2, 11);

        let (out_full, _) = full.forward(StageIn::Tokens(&inputs), 2, Some(&targets), &Solo, &Solo);
        let StageOut::Loss { sum: loss_full, .. } = out_full else {
            unreachable!()
        };

        let s0 = Stage::new(
            cfg.clone(),
            StageLayout {
                tp_size: 1,
                tp_rank: 0,
                sp_size: 1,
                sp_rank: 0,
                blocks: 0..4,
                is_first: true,
                is_last: false,
            },
            &rng,
        );
        let s1 = Stage::new(
            cfg.clone(),
            StageLayout {
                tp_size: 1,
                tp_rank: 0,
                sp_size: 1,
                sp_rank: 0,
                blocks: 4..8,
                is_first: false,
                is_last: true,
            },
            &rng,
        );
        let (out0, c0) = s0.forward(StageIn::Tokens(&inputs), 2, None, &Solo, &Solo);
        let StageOut::Hidden(h) = out0 else {
            unreachable!()
        };
        let (out1, c1) = s1.forward(StageIn::Hidden(h), 2, Some(&targets), &Solo, &Solo);
        let StageOut::Loss {
            sum: loss_split, ..
        } = out1
        else {
            unreachable!()
        };
        assert!(
            (loss_full - loss_split).abs() < 1e-9,
            "{loss_full} vs {loss_split}"
        );

        // Gradients flow back through both stages.
        let mut g1 = GradStore::zeros_like(&s1.params);
        let dh = s1.backward(&c1, None, &mut g1, &Solo, &Solo).unwrap();
        let mut g0 = GradStore::zeros_like(&s0.params);
        assert!(s0.backward(&c0, Some(dh), &mut g0, &Solo, &Solo).is_none());

        // Compare against the full-model gradients (same params).
        let (_, cf) = full.forward(StageIn::Tokens(&inputs), 2, Some(&targets), &Solo, &Solo);
        let mut gf = GradStore::zeros_like(&full.params);
        full.backward(&cf, None, &mut gf, &Solo, &Solo);
        for (name, buf) in g0.iter().chain(g1.iter()) {
            let full_buf = gf.get(name);
            for (a, b) in buf.iter().zip(full_buf) {
                assert!(
                    (a - b).abs() < 1e-6 * b.abs().max(1.0),
                    "grad mismatch for {name}"
                );
            }
        }
    }
}
