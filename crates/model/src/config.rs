//! Model architecture configuration and the paper's evaluation presets.

use serde::{Deserialize, Serialize};

/// Normalization layer flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NormKind {
    /// LayerNorm with learned scale and bias (GPT, BLOOM).
    LayerNorm,
    /// RMSNorm with learned scale only (LLaMA, Mixtral).
    RmsNorm,
}

/// Feed-forward activation flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MlpKind {
    /// `fc1 → GELU → fc2` (GPT, BLOOM).
    Gelu,
    /// Fused gate+up projection with SiLU gating (LLaMA, Mixtral).
    SwiGlu,
}

/// Position-encoding flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PositionKind {
    /// Learned absolute position embeddings (GPT).
    Learned,
    /// Rotary position embeddings applied to Q/K (LLaMA, Mixtral).
    Rotary,
    /// ALiBi-style additive attention bias (BLOOM).
    Alibi,
}

/// A decoder-only transformer configuration.
///
/// Covers the four architecture families of the paper's evaluation (GPT-3,
/// LLaMA, BLOOM, Mixtral-style MoE) through the flavor enums; §4.1 Table 4
/// lists the paper-scale instantiations, and the `*_tiny` constructors are
/// the scaled-down versions our simulator trains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Architecture family label (for checkpoint metadata and reports).
    pub family: String,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Maximum sequence length (context window).
    pub max_seq_len: usize,
    /// Hidden size.
    pub hidden_size: usize,
    /// Number of transformer layers.
    pub num_layers: usize,
    /// Number of attention (query) heads.
    pub num_heads: usize,
    /// Number of key/value heads (`== num_heads` disables GQA).
    pub num_kv_heads: usize,
    /// FFN intermediate size.
    pub ffn_size: usize,
    /// Experts per MoE layer (1 = dense model).
    pub num_experts: usize,
    /// Experts routed per token when `num_experts > 1`.
    pub top_k: usize,
    /// Normalization flavor.
    pub norm: NormKind,
    /// MLP flavor.
    pub mlp: MlpKind,
    /// Position-encoding flavor.
    pub position: PositionKind,
    /// Whether linear layers carry biases (GPT/BLOOM yes, LLaMA no).
    pub linear_bias: bool,
    /// Pad the vocabulary dimension of the embedding and LM head to a
    /// multiple of `vocab_pad_multiple × tp` (Megatron's hardware-alignment
    /// padding; `≤ 1` disables). The padding is a *runtime* artifact: atom
    /// checkpoints always store the unpadded tensors (`StripPadding`).
    pub vocab_pad_multiple: usize,
    /// Tie the LM head to the word embeddings (GPT-2/BLOOM style). Under
    /// pipeline parallelism the tied weight lives on *both* the first and
    /// last stages with gradients summed across them — the shared-embedding
    /// group of Megatron — and checkpoints carry one logical parameter.
    pub tie_embeddings: bool,
}

impl ModelConfig {
    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden_size / self.num_heads
    }

    /// Rows of the fused QKV projection: `q_size + k_size + v_size`
    /// (the GQA fused layout of the paper's Fig. 5).
    pub fn qkv_rows(&self) -> usize {
        self.hidden_size + 2 * self.num_kv_heads * self.head_dim()
    }

    /// True when the FFN is a routed mixture of experts.
    pub fn is_moe(&self) -> bool {
        self.num_experts > 1
    }

    /// Validate internal divisibility constraints, plus divisibility by a
    /// tensor-parallel degree when `tp > 1`.
    pub fn validate(&self, tp: usize) -> Result<(), String> {
        if !self.hidden_size.is_multiple_of(self.num_heads) {
            return Err(format!(
                "hidden_size {} not divisible by num_heads {}",
                self.hidden_size, self.num_heads
            ));
        }
        if !self.num_heads.is_multiple_of(self.num_kv_heads) {
            return Err(format!(
                "num_heads {} not divisible by num_kv_heads {}",
                self.num_heads, self.num_kv_heads
            ));
        }
        if self.is_moe() && self.top_k > self.num_experts {
            return Err(format!(
                "top_k {} exceeds num_experts {}",
                self.top_k, self.num_experts
            ));
        }
        if tp > 0 {
            for (what, v) in [
                ("num_heads", self.num_heads),
                ("num_kv_heads", self.num_kv_heads),
                ("ffn_size", self.ffn_size),
            ] {
                if v % tp != 0 {
                    return Err(format!("{what} {v} not divisible by TP degree {tp}"));
                }
            }
            // With vocab padding enabled any vocab size works; otherwise
            // the vocab must divide evenly across TP ranks.
            if self.vocab_pad_multiple <= 1 && !self.vocab_size.is_multiple_of(tp) {
                return Err(format!(
                    "vocab_size {} not divisible by TP degree {tp} (enable vocab padding)",
                    self.vocab_size
                ));
            }
        }
        Ok(())
    }

    /// Total parameter count of the unsharded model.
    pub fn num_parameters(&self) -> usize {
        crate::spec::param_specs(self)
            .iter()
            .map(|p| p.shape.num_elements())
            .sum()
    }

    /// Scaled-down GPT-3-medium analogue (the paper's correctness workload).
    pub fn gpt3_tiny() -> ModelConfig {
        ModelConfig {
            family: "gpt3".into(),
            vocab_size: 256,
            max_seq_len: 32,
            hidden_size: 32,
            num_layers: 8,
            num_heads: 4,
            num_kv_heads: 4,
            ffn_size: 128,
            num_experts: 1,
            top_k: 1,
            norm: NormKind::LayerNorm,
            mlp: MlpKind::Gelu,
            position: PositionKind::Learned,
            linear_bias: true,
            vocab_pad_multiple: 1,
            tie_embeddings: false,
        }
    }

    /// A GPT-2-style variant with the LM head tied to the word embeddings —
    /// under PP > 1 the tied weight is replicated on the first and last
    /// stages with summed gradients (Megatron's shared-embedding group).
    pub fn gpt3_tiny_tied() -> ModelConfig {
        let mut cfg = ModelConfig::gpt3_tiny();
        cfg.family = "gpt3-tied".into();
        cfg.tie_embeddings = true;
        cfg
    }

    /// A GPT variant with an "awkward" vocabulary (250) padded to hardware
    /// alignment at runtime — exercises the paper's vocab `StripPadding`
    /// flow, where the padded extent differs between TP degrees.
    pub fn gpt3_tiny_padded_vocab() -> ModelConfig {
        let mut cfg = ModelConfig::gpt3_tiny();
        cfg.family = "gpt3-padded-vocab".into();
        cfg.vocab_size = 250;
        cfg.vocab_pad_multiple = 16;
        cfg
    }

    /// Scaled-down LLaMA analogue (RMSNorm, SwiGLU, rotary, no biases).
    pub fn llama_tiny() -> ModelConfig {
        ModelConfig {
            family: "llama".into(),
            vocab_size: 256,
            max_seq_len: 32,
            hidden_size: 32,
            num_layers: 8,
            num_heads: 4,
            num_kv_heads: 2,
            ffn_size: 96,
            num_experts: 1,
            top_k: 1,
            norm: NormKind::RmsNorm,
            mlp: MlpKind::SwiGlu,
            position: PositionKind::Rotary,
            linear_bias: false,
            vocab_pad_multiple: 1,
            tie_embeddings: false,
        }
    }

    /// Scaled-down BLOOM analogue (ALiBi, LayerNorm, GELU). 24 layers so
    /// the Fig. 9 pipeline reconfiguration divides evenly.
    pub fn bloom_tiny() -> ModelConfig {
        ModelConfig {
            family: "bloom".into(),
            vocab_size: 256,
            max_seq_len: 32,
            hidden_size: 16,
            num_layers: 24,
            num_heads: 4,
            num_kv_heads: 4,
            ffn_size: 64,
            num_experts: 1,
            top_k: 1,
            norm: NormKind::LayerNorm,
            mlp: MlpKind::Gelu,
            position: PositionKind::Alibi,
            linear_bias: true,
            vocab_pad_multiple: 1,
            // BLOOM ties its LM head to the word embeddings.
            tie_embeddings: true,
        }
    }

    /// Scaled-down Mixtral-style MoE analogue (8 experts, top-2, GQA).
    pub fn moe_tiny() -> ModelConfig {
        ModelConfig {
            family: "mixtral-moe".into(),
            vocab_size: 256,
            max_seq_len: 32,
            hidden_size: 32,
            num_layers: 4,
            num_heads: 4,
            num_kv_heads: 2,
            ffn_size: 64,
            num_experts: 8,
            top_k: 2,
            norm: NormKind::RmsNorm,
            mlp: MlpKind::SwiGlu,
            position: PositionKind::Rotary,
            linear_bias: false,
            vocab_pad_multiple: 1,
            tie_embeddings: false,
        }
    }

    /// Parameter-volume presets for the efficiency experiments (Fig. 11/12):
    /// "small" / "medium" / "large" sweep checkpoint bytes, standing in for
    /// the paper's three model sizes.
    pub fn sized(size: SizePreset) -> ModelConfig {
        let mut cfg = ModelConfig::gpt3_tiny();
        match size {
            SizePreset::Small => {
                cfg.family = "gpt-small".into();
                cfg.hidden_size = 64;
                cfg.num_heads = 4;
                cfg.num_kv_heads = 4;
                cfg.ffn_size = 256;
                cfg.num_layers = 4;
            }
            SizePreset::Medium => {
                cfg.family = "gpt-medium".into();
                cfg.hidden_size = 128;
                cfg.num_heads = 8;
                cfg.num_kv_heads = 8;
                cfg.ffn_size = 512;
                cfg.num_layers = 8;
            }
            SizePreset::Large => {
                cfg.family = "gpt-large".into();
                cfg.hidden_size = 256;
                cfg.num_heads = 8;
                cfg.num_kv_heads = 8;
                cfg.ffn_size = 1024;
                cfg.num_layers = 12;
                cfg.vocab_size = 1024;
            }
        }
        cfg
    }
}

/// The three checkpoint-volume presets used by the Fig. 11/12 benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizePreset {
    /// Smallest volume.
    Small,
    /// Middle volume.
    Medium,
    /// Largest volume.
    Large,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_at_tp2() {
        for cfg in [
            ModelConfig::gpt3_tiny(),
            ModelConfig::llama_tiny(),
            ModelConfig::bloom_tiny(),
            ModelConfig::moe_tiny(),
        ] {
            cfg.validate(1).unwrap();
            cfg.validate(2).unwrap();
        }
    }

    #[test]
    fn gqa_qkv_rows() {
        let cfg = ModelConfig::llama_tiny();
        // H=32, head_dim=8, kv_heads=2 → qkv rows = 32 + 2*2*8 = 64.
        assert_eq!(cfg.qkv_rows(), 64);
        assert_eq!(cfg.head_dim(), 8);
    }

    #[test]
    fn invalid_tp_rejected() {
        let cfg = ModelConfig::gpt3_tiny();
        assert!(cfg.validate(3).is_err(), "4 heads don't divide by 3");
    }

    #[test]
    fn moe_flag() {
        assert!(!ModelConfig::gpt3_tiny().is_moe());
        assert!(ModelConfig::moe_tiny().is_moe());
    }

    #[test]
    fn size_presets_strictly_increase() {
        let s = ModelConfig::sized(SizePreset::Small).num_parameters();
        let m = ModelConfig::sized(SizePreset::Medium).num_parameters();
        let l = ModelConfig::sized(SizePreset::Large).num_parameters();
        assert!(s < m && m < l, "{s} < {m} < {l}");
    }
}
