//! Parameter specifications: the full, unsharded inventory of a model's
//! named parameters, with their tensor-parallel partition rules and
//! pipeline-stage assignment.
//!
//! This inventory is shared by three consumers: parameter initialization
//! (every rank materializes exactly its shard of each spec), the distributed
//! checkpoint writer (which records per-shard provenance), and the UCP
//! engine (whose pattern matching in `ucp-core` is driven by the partition
//! rule recorded here).

use serde::{Deserialize, Serialize};
use ucp_tensor::{DetRng, Shape, Tensor};

use crate::config::{MlpKind, ModelConfig, PositionKind};

/// How a parameter is split across a tensor-parallel group.
///
/// These are the source-side counterparts of the paper's parameter patterns
/// (Table 1) and sub-patterns (Fig. 5): `Replicated` ↔ `replicated_params`,
/// the others are `fragment_params` with different slicing rules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Partition {
    /// Every TP rank holds the full tensor.
    Replicated,
    /// Evenly split along `dim` (row/column parallelism; `dim > 0` covers
    /// the paper's 3-D MoE example `[experts, out, in]` sharded on `out`).
    Shard {
        /// The partitioned dimension.
        dim: usize,
    },
    /// Evenly split along `dim` after zero-padding the extent up to a
    /// multiple of `multiple × tp` — Megatron's hardware-alignment vocab
    /// padding. The padding exists only at runtime: consolidation strips it
    /// (the paper's `StripPadding`) and loading re-introduces it.
    PaddedShard {
        /// The partitioned dimension.
        dim: usize,
        /// Alignment quantum (the padded extent is a multiple of
        /// `multiple × tp`).
        multiple: usize,
    },
    /// Dimension `dim` is a concatenation of `sections` (e.g. fused QKV of
    /// GQA: `[q_size, k_size, v_size]` with different sizes, fused SwiGLU
    /// gate+up `[ffn, ffn]`, or MoE expert weights `[experts, 2·ffn, hidden]`
    /// sectioned along dim 1); each section is split evenly and rank `r`
    /// holds the concatenation of its per-section slices. This is the
    /// variable-size fragment sub-pattern of the paper's Fig. 5.
    Grouped {
        /// The partitioned dimension.
        dim: usize,
        /// Extents of the fused sections along `dim`.
        sections: Vec<usize>,
    },
}

/// One contiguous run of a rank's flattened shard, located in the
/// flattened *full* tensor — the unit a ranged atom read fetches.
///
/// Produced by [`Partition::shard_segments`]. `src_offset` is `None` for
/// alignment padding a [`Partition::PaddedShard`] re-introduces: those
/// shard elements exist only at runtime and have no bytes on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSegment {
    /// Start offset within the rank's flattened shard (elements).
    pub shard_offset: usize,
    /// Start offset within the flattened full tensor, or `None` for
    /// padding (materialized as zeros, never read).
    pub src_offset: Option<usize>,
    /// Run length (elements).
    pub len: usize,
}

impl Partition {
    /// The padded extent of dimension `extent` under `tp`-way padded
    /// sharding with quantum `multiple`.
    pub fn padded_extent(extent: usize, multiple: usize, tp: usize) -> usize {
        let quantum = multiple.max(1) * tp;
        extent.div_ceil(quantum) * quantum
    }

    /// Where rank `r`'s shard elements live in the flattened full tensor,
    /// as contiguous runs in ascending shard order (adjacent runs merged).
    ///
    /// This is the metadata that lets `Load` read a shard without
    /// materializing the full tensor: every `Some`-sourced segment is one
    /// contiguous byte range of the atom on disk, and concatenating the
    /// segments (padding as zeros) reproduces
    /// `self.shard(full, tp, r).flatten()` exactly.
    pub fn shard_segments(&self, full: &Shape, tp: usize, r: usize) -> Vec<ShardSegment> {
        let dims = full.dims();
        let mut out = Vec::new();
        let push = |out: &mut Vec<ShardSegment>, shard_offset, src_offset, len: usize| {
            if len == 0 {
                return;
            }
            // Merge with the previous run when both shard and source
            // continue contiguously (e.g. dim-0 shards collapse to one).
            if let Some(last) = out.last_mut() {
                let shard_joins = last.shard_offset + last.len == shard_offset;
                let src_joins = match (last.src_offset, src_offset) {
                    (Some(a), Some(b)) => a + last.len == b,
                    (None, None) => true,
                    _ => false,
                };
                if shard_joins && src_joins {
                    last.len += len;
                    return;
                }
            }
            out.push(ShardSegment {
                shard_offset,
                src_offset,
                len,
            });
        };
        match self {
            Partition::Replicated => {
                push(&mut out, 0, Some(0), full.num_elements());
            }
            Partition::Shard { dim } => {
                let extent = dims[*dim];
                let chunk = extent / tp;
                let outer: usize = dims[..*dim].iter().product();
                let inner: usize = dims[*dim + 1..].iter().product();
                for o in 0..outer {
                    push(
                        &mut out,
                        o * chunk * inner,
                        Some((o * extent + r * chunk) * inner),
                        chunk * inner,
                    );
                }
            }
            Partition::PaddedShard { dim, multiple } => {
                let extent = dims[*dim];
                let padded = Partition::padded_extent(extent, *multiple, tp);
                let chunk = padded / tp;
                let start = r * chunk;
                let outer: usize = dims[..*dim].iter().product();
                let inner: usize = dims[*dim + 1..].iter().product();
                // Rows past the real extent are runtime-only padding.
                let real = extent.saturating_sub(start).min(chunk);
                for o in 0..outer {
                    let base = o * chunk * inner;
                    push(
                        &mut out,
                        base,
                        Some((o * extent + start) * inner),
                        real * inner,
                    );
                    push(&mut out, base + real * inner, None, (chunk - real) * inner);
                }
            }
            Partition::Grouped { dim, sections } => {
                let extent = dims[*dim];
                let shard_extent: usize = sections.iter().map(|s| s / tp).sum();
                let outer: usize = dims[..*dim].iter().product();
                let inner: usize = dims[*dim + 1..].iter().product();
                for o in 0..outer {
                    let mut sec_off = 0;
                    let mut shard_row = 0;
                    for &sec in sections {
                        let chunk = sec / tp;
                        push(
                            &mut out,
                            (o * shard_extent + shard_row) * inner,
                            Some((o * extent + sec_off + r * chunk) * inner),
                            chunk * inner,
                        );
                        sec_off += sec;
                        shard_row += chunk;
                    }
                }
            }
        }
        out
    }

    /// Shape of rank `r`'s shard of a tensor with `full` shape under `tp`-way
    /// partitioning.
    pub fn shard_shape(&self, full: &Shape, tp: usize) -> Shape {
        match self {
            Partition::Replicated => full.clone(),
            Partition::Shard { dim } => full.with_dim(*dim, full.dims()[*dim] / tp),
            Partition::PaddedShard { dim, multiple } => full.with_dim(
                *dim,
                Partition::padded_extent(full.dims()[*dim], *multiple, tp) / tp,
            ),
            Partition::Grouped { dim, sections } => {
                let rows: usize = sections.iter().map(|s| s / tp).sum();
                full.with_dim(*dim, rows)
            }
        }
    }

    /// Extract rank `r`'s shard from the full tensor.
    pub fn shard(&self, full: &Tensor, tp: usize, r: usize) -> Tensor {
        match self {
            Partition::Replicated => full.clone(),
            Partition::Shard { dim } => {
                let chunk = full.shape().dims()[*dim] / tp;
                full.narrow(*dim, r * chunk, chunk)
                    .expect("validated shard range")
            }
            Partition::PaddedShard { dim, multiple } => {
                let padded = Partition::padded_extent(full.shape().dims()[*dim], *multiple, tp);
                let chunk = padded / tp;
                full.pad_dim(*dim, padded)
                    .expect("padding grows the dimension")
                    .narrow(*dim, r * chunk, chunk)
                    .expect("validated padded range")
            }
            Partition::Grouped { dim, sections } => {
                let mut pieces = Vec::with_capacity(sections.len());
                let mut offset = 0;
                for &sec in sections {
                    let chunk = sec / tp;
                    pieces.push(
                        full.narrow(*dim, offset + r * chunk, chunk)
                            .expect("validated section range"),
                    );
                    offset += sec;
                }
                let refs: Vec<&Tensor> = pieces.iter().collect();
                Tensor::concat(&refs, *dim).expect("uniform non-zero sections")
            }
        }
    }

    /// Reassemble the full tensor from all `tp` shards (rank order).
    /// Inverse of [`Partition::shard`]; the paper's pattern-specific Union.
    pub fn unshard(&self, shards: &[Tensor]) -> Tensor {
        let tp = shards.len();
        match self {
            Partition::Replicated => shards[0].clone(),
            Partition::Shard { dim } | Partition::PaddedShard { dim, .. } => {
                // For PaddedShard the concatenation still carries the
                // alignment padding; the caller strips it against the
                // logical shape (Algorithm 1's `hasPadding → StripPadding`).
                let refs: Vec<&Tensor> = shards.iter().collect();
                Tensor::concat(&refs, *dim).expect("uniform shard shapes")
            }
            Partition::Grouped { dim, sections } => {
                // Per-rank shards each contain one slice per section;
                // reassemble section-major.
                let mut section_slices: Vec<Vec<Tensor>> =
                    (0..sections.len()).map(|_| Vec::new()).collect();
                for shard in shards {
                    let mut offset = 0;
                    for (s, &sec) in sections.iter().enumerate() {
                        let chunk = sec / tp;
                        section_slices[s].push(
                            shard
                                .narrow(*dim, offset, chunk)
                                .expect("shard sections sized consistently"),
                        );
                        offset += chunk;
                    }
                }
                let mut sections_cat = Vec::with_capacity(sections.len());
                for slices in &section_slices {
                    let refs: Vec<&Tensor> = slices.iter().collect();
                    sections_cat.push(Tensor::concat(&refs, *dim).expect("uniform slices"));
                }
                let refs: Vec<&Tensor> = sections_cat.iter().collect();
                Tensor::concat(&refs, *dim).expect("uniform sections")
            }
        }
    }
}

/// Initialization rule for a parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Init {
    /// Zero-mean normal with the given standard deviation.
    Normal(f32),
    /// All zeros (biases).
    Zeros,
    /// All ones (norm scales).
    Ones,
}

/// Which pipeline unit owns a parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerRole {
    /// Input embeddings (first pipeline stage).
    Embedding,
    /// Transformer layer `i` (assigned to a stage by the PP split).
    Block(usize),
    /// Final norm + LM head (last pipeline stage).
    Head,
    /// Word embeddings tied to the LM head: lives on *both* the first and
    /// last pipeline stages (Megatron's shared-embedding group).
    SharedEmbedding,
}

/// The full specification of one named parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Canonical dotted name, Megatron-style.
    pub name: String,
    /// Full, unsharded shape.
    pub shape: Shape,
    /// Initialization rule.
    pub init: Init,
    /// Tensor-parallel partition rule.
    pub partition: Partition,
    /// Pipeline assignment.
    pub role: LayerRole,
}

impl ParamSpec {
    /// Materialize the *full* tensor for this parameter from the run seed.
    ///
    /// Every parameter draws from a stream derived from its name, so the
    /// value is identical no matter which rank (or how many ranks)
    /// materialize it.
    pub fn materialize_full(&self, seed_rng: &DetRng) -> Tensor {
        match self.init {
            Init::Normal(std) => Tensor::randn(
                self.shape.clone(),
                std,
                &seed_rng.derive(&format!("param:{}", self.name)),
            ),
            Init::Zeros => Tensor::zeros(self.shape.clone()),
            Init::Ones => Tensor::full(self.shape.clone(), 1.0),
        }
    }

    /// Materialize rank `r`'s TP shard.
    pub fn materialize_shard(&self, seed_rng: &DetRng, tp: usize, r: usize) -> Tensor {
        self.partition
            .shard(&self.materialize_full(seed_rng), tp, r)
    }
}

/// Build the complete parameter inventory for a model configuration.
///
/// Naming follows Megatron-LM (`embedding.word_embeddings.weight`,
/// `layers.{i}.attention.query_key_value.weight`, ...), which is the naming
/// family the paper's atom-checkpoint example uses.
pub fn param_specs(cfg: &ModelConfig) -> Vec<ParamSpec> {
    let h = cfg.hidden_size;
    let kv = cfg.num_kv_heads * cfg.head_dim();
    let init_std = 0.02f32;
    // Scaled init for residual-output projections, as in GPT-2/Megatron.
    let out_std = 0.02 / (2.0 * cfg.num_layers as f32).sqrt();
    let mut specs = Vec::new();

    let mut push =
        |name: String, shape: Shape, init: Init, partition: Partition, role: LayerRole| {
            specs.push(ParamSpec {
                name,
                shape,
                init,
                partition,
                role,
            });
        };

    // Embeddings. Word embeddings are vocab-parallel (fragment dim 0), the
    // paper's canonical atom example; with alignment padding enabled the
    // vocab dimension is padded per-TP-degree at runtime.
    let vocab_partition = if cfg.vocab_pad_multiple > 1 {
        Partition::PaddedShard {
            dim: 0,
            multiple: cfg.vocab_pad_multiple,
        }
    } else {
        Partition::Shard { dim: 0 }
    };
    push(
        "embedding.word_embeddings.weight".into(),
        Shape::new([cfg.vocab_size, h]),
        Init::Normal(init_std),
        vocab_partition.clone(),
        if cfg.tie_embeddings {
            LayerRole::SharedEmbedding
        } else {
            LayerRole::Embedding
        },
    );
    if cfg.position == PositionKind::Learned {
        push(
            "embedding.position_embeddings.weight".into(),
            Shape::new([cfg.max_seq_len, h]),
            Init::Normal(init_std),
            Partition::Replicated,
            LayerRole::Embedding,
        );
    }

    for i in 0..cfg.num_layers {
        let p = |suffix: &str| format!("layers.{i}.{suffix}");
        let role = LayerRole::Block(i);

        // Pre-attention norm.
        push(
            p("input_layernorm.weight"),
            Shape::new([h]),
            Init::Ones,
            Partition::Replicated,
            role,
        );
        if cfg.norm == crate::config::NormKind::LayerNorm {
            push(
                p("input_layernorm.bias"),
                Shape::new([h]),
                Init::Zeros,
                Partition::Replicated,
                role,
            );
        }

        // Fused QKV: `[q + k + v, hidden]`, the GQA layout of Fig. 5.
        let qkv_sections = vec![h, kv, kv];
        push(
            p("attention.query_key_value.weight"),
            Shape::new([cfg.qkv_rows(), h]),
            Init::Normal(init_std),
            Partition::Grouped {
                dim: 0,
                sections: qkv_sections.clone(),
            },
            role,
        );
        if cfg.linear_bias {
            push(
                p("attention.query_key_value.bias"),
                Shape::new([cfg.qkv_rows()]),
                Init::Zeros,
                Partition::Grouped {
                    dim: 0,
                    sections: qkv_sections,
                },
                role,
            );
        }

        // Attention output projection: row-parallel.
        push(
            p("attention.dense.weight"),
            Shape::new([h, h]),
            Init::Normal(out_std),
            Partition::Shard { dim: 1 },
            role,
        );
        if cfg.linear_bias {
            push(
                p("attention.dense.bias"),
                Shape::new([h]),
                Init::Zeros,
                Partition::Replicated,
                role,
            );
        }

        // Post-attention norm.
        push(
            p("post_attention_layernorm.weight"),
            Shape::new([h]),
            Init::Ones,
            Partition::Replicated,
            role,
        );
        if cfg.norm == crate::config::NormKind::LayerNorm {
            push(
                p("post_attention_layernorm.bias"),
                Shape::new([h]),
                Init::Zeros,
                Partition::Replicated,
                role,
            );
        }

        if cfg.is_moe() {
            // Router is replicated; expert weights are 3-D tensors sharded
            // along the FFN dimension — the MoE sub-pattern of Fig. 5.
            push(
                p("moe.router.weight"),
                Shape::new([cfg.num_experts, h]),
                Init::Normal(init_std),
                Partition::Replicated,
                role,
            );
            let (w1_rows, w1_partition) = match cfg.mlp {
                MlpKind::Gelu => (cfg.ffn_size, Partition::Shard { dim: 1 }),
                MlpKind::SwiGlu => (
                    2 * cfg.ffn_size,
                    // Gate and up sections each split across TP along the
                    // expert-FFN dimension (3-D Grouped sub-pattern).
                    Partition::Grouped {
                        dim: 1,
                        sections: vec![cfg.ffn_size, cfg.ffn_size],
                    },
                ),
            };
            push(
                p("moe.experts.dense_h_to_4h.weight"),
                Shape::new([cfg.num_experts, w1_rows, h]),
                Init::Normal(init_std),
                w1_partition,
                role,
            );
            push(
                p("moe.experts.dense_4h_to_h.weight"),
                Shape::new([cfg.num_experts, h, cfg.ffn_size]),
                Init::Normal(out_std),
                Partition::Shard { dim: 2 },
                role,
            );
        } else {
            match cfg.mlp {
                MlpKind::Gelu => {
                    push(
                        p("mlp.dense_h_to_4h.weight"),
                        Shape::new([cfg.ffn_size, h]),
                        Init::Normal(init_std),
                        Partition::Shard { dim: 0 },
                        role,
                    );
                    if cfg.linear_bias {
                        push(
                            p("mlp.dense_h_to_4h.bias"),
                            Shape::new([cfg.ffn_size]),
                            Init::Zeros,
                            Partition::Shard { dim: 0 },
                            role,
                        );
                    }
                }
                MlpKind::SwiGlu => {
                    // Fused gate+up: two equal sections, each split across TP.
                    push(
                        p("mlp.gate_up.weight"),
                        Shape::new([2 * cfg.ffn_size, h]),
                        Init::Normal(init_std),
                        Partition::Grouped {
                            dim: 0,
                            sections: vec![cfg.ffn_size, cfg.ffn_size],
                        },
                        role,
                    );
                }
            }
            push(
                p("mlp.dense_4h_to_h.weight"),
                Shape::new([h, cfg.ffn_size]),
                Init::Normal(out_std),
                Partition::Shard { dim: 1 },
                role,
            );
            if cfg.linear_bias {
                push(
                    p("mlp.dense_4h_to_h.bias"),
                    Shape::new([h]),
                    Init::Zeros,
                    Partition::Replicated,
                    role,
                );
            }
        }
    }

    // Final norm + untied LM head (vocab-parallel).
    push(
        "final_layernorm.weight".into(),
        Shape::new([h]),
        Init::Ones,
        Partition::Replicated,
        LayerRole::Head,
    );
    if cfg.norm == crate::config::NormKind::LayerNorm {
        push(
            "final_layernorm.bias".into(),
            Shape::new([h]),
            Init::Zeros,
            Partition::Replicated,
            LayerRole::Head,
        );
    }
    // With tied embeddings the head reuses the shared word-embedding
    // weight; there is no separate lm_head parameter.
    if !cfg.tie_embeddings {
        push(
            "lm_head.weight".into(),
            Shape::new([cfg.vocab_size, h]),
            Init::Normal(init_std),
            vocab_partition,
            LayerRole::Head,
        );
    }

    specs
}

/// Look up a spec by name.
pub fn find_spec<'a>(specs: &'a [ParamSpec], name: &str) -> Option<&'a ParamSpec> {
    specs.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt_inventory_has_expected_names() {
        let specs = param_specs(&ModelConfig::gpt3_tiny());
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"embedding.word_embeddings.weight"));
        assert!(names.contains(&"embedding.position_embeddings.weight"));
        assert!(names.contains(&"layers.0.attention.query_key_value.weight"));
        assert!(names.contains(&"layers.7.mlp.dense_4h_to_h.bias"));
        assert!(names.contains(&"lm_head.weight"));
    }

    #[test]
    fn llama_has_no_biases_or_positions() {
        let specs = param_specs(&ModelConfig::llama_tiny());
        assert!(specs.iter().all(|s| !s.name.ends_with(".bias")));
        assert!(!specs.iter().any(|s| s.name.contains("position_embeddings")));
        assert!(specs.iter().any(|s| s.name.contains("mlp.gate_up")));
    }

    #[test]
    fn moe_experts_are_3d_sharded_on_middle_dim() {
        let specs = param_specs(&ModelConfig::moe_tiny());
        let w1 = find_spec(&specs, "layers.0.moe.experts.dense_h_to_4h.weight").unwrap();
        assert_eq!(w1.shape.rank(), 3);
        assert_eq!(
            w1.partition,
            Partition::Grouped {
                dim: 1,
                sections: vec![64, 64]
            }
        );
        let w2 = find_spec(&specs, "layers.0.moe.experts.dense_4h_to_h.weight").unwrap();
        assert_eq!(w2.partition, Partition::Shard { dim: 2 });
    }

    #[test]
    fn shard_unshard_roundtrip_even() {
        let cfg = ModelConfig::gpt3_tiny();
        let rng = DetRng::new(1);
        for spec in param_specs(&cfg) {
            let full = spec.materialize_full(&rng);
            for tp in [1usize, 2, 4] {
                if cfg.validate(tp).is_err() {
                    continue;
                }
                let shards: Vec<Tensor> = (0..tp)
                    .map(|r| spec.partition.shard(&full, tp, r))
                    .collect();
                let back = spec.partition.unshard(&shards);
                assert!(back.bitwise_eq(&full), "roundtrip failed for {}", spec.name);
            }
        }
    }

    #[test]
    fn shard_segments_reconstruct_every_shard() {
        // Property: for every parameter in the inventory and every rank,
        // gathering the full tensor's elements at each segment's source
        // (zeros for padding) reproduces `shard(...).flatten()` exactly.
        // This is the contract the ranged load path builds on.
        let configs = [
            ModelConfig::gpt3_tiny_padded_vocab(),
            ModelConfig::llama_tiny(),
            ModelConfig::moe_tiny(),
        ];
        let rng = DetRng::new(11);
        for cfg in &configs {
            for spec in param_specs(cfg) {
                let full = spec.materialize_full(&rng);
                let flat_full = full.as_slice();
                for tp in [1usize, 2, 4] {
                    for r in 0..tp {
                        let segs = spec.partition.shard_segments(&spec.shape, tp, r);
                        let expect = spec.partition.shard(&full, tp, r).flatten();
                        let mut got = vec![0.0f32; expect.num_elements()];
                        let mut cursor = 0;
                        for seg in &segs {
                            // Segments are ascending, disjoint, and
                            // non-mergeable (otherwise push would have
                            // merged them).
                            assert_eq!(seg.shard_offset, cursor, "{} gap", spec.name);
                            cursor += seg.len;
                            if let Some(src) = seg.src_offset {
                                got[seg.shard_offset..seg.shard_offset + seg.len]
                                    .copy_from_slice(&flat_full[src..src + seg.len]);
                            }
                        }
                        assert_eq!(cursor, expect.num_elements(), "{} coverage", spec.name);
                        assert_eq!(
                            got,
                            expect.as_slice(),
                            "{} tp{tp} rank{r} segments mismatch",
                            spec.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shard_segments_merge_contiguous_runs() {
        // A dim-0 shard of a 2-D tensor is one contiguous run.
        let p = Partition::Shard { dim: 0 };
        let shape = Shape::new([8, 4]);
        let segs = p.shard_segments(&shape, 2, 1);
        assert_eq!(
            segs,
            vec![ShardSegment {
                shard_offset: 0,
                src_offset: Some(16),
                len: 16
            }]
        );
        // Replicated is one run covering everything.
        assert_eq!(Partition::Replicated.shard_segments(&shape, 4, 3).len(), 1);
        // A dim-1 shard needs one run per row.
        assert_eq!(
            Partition::Shard { dim: 1 }
                .shard_segments(&shape, 2, 0)
                .len(),
            8
        );
    }

    #[test]
    fn padded_shard_segments_mark_padding() {
        // 10 rows padded to 12 across tp=4: rank 3 holds real row 9 plus
        // two padding rows with no on-disk source.
        let p = Partition::PaddedShard {
            dim: 0,
            multiple: 1,
        };
        let shape = Shape::new([10, 3]);
        let segs = p.shard_segments(&shape, 4, 3);
        assert_eq!(
            segs,
            vec![
                ShardSegment {
                    shard_offset: 0,
                    src_offset: Some(27),
                    len: 3
                },
                ShardSegment {
                    shard_offset: 3,
                    src_offset: None,
                    len: 6
                },
            ]
        );
    }

    #[test]
    fn gqa_grouped_shard_sizes_differ_per_section() {
        let cfg = ModelConfig::llama_tiny();
        let specs = param_specs(&cfg);
        let qkv = find_spec(&specs, "layers.0.attention.query_key_value.weight").unwrap();
        // Full rows = 32 (q) + 16 (k) + 16 (v) = 64; each TP=2 shard holds
        // 16 q-rows + 8 k-rows + 8 v-rows = 32 rows.
        let shard = qkv.partition.shard_shape(&qkv.shape, 2);
        assert_eq!(shard.dims(), &[32, 32]);
    }

    #[test]
    fn shard_materialization_matches_full_slice() {
        let cfg = ModelConfig::llama_tiny();
        let rng = DetRng::new(77);
        let specs = param_specs(&cfg);
        let qkv = find_spec(&specs, "layers.1.attention.query_key_value.weight").unwrap();
        let full = qkv.materialize_full(&rng);
        let s0 = qkv.materialize_shard(&rng, 2, 0);
        let s1 = qkv.materialize_shard(&rng, 2, 1);
        let back = qkv.partition.unshard(&[s0, s1]);
        assert!(back.bitwise_eq(&full));
    }

    #[test]
    fn init_kinds_respected() {
        let specs = param_specs(&ModelConfig::gpt3_tiny());
        let rng = DetRng::new(5);
        let ln = find_spec(&specs, "layers.0.input_layernorm.weight").unwrap();
        assert!(ln
            .materialize_full(&rng)
            .as_slice()
            .iter()
            .all(|v| *v == 1.0));
        let bias = find_spec(&specs, "layers.0.input_layernorm.bias").unwrap();
        assert!(bias
            .materialize_full(&rng)
            .as_slice()
            .iter()
            .all(|v| *v == 0.0));
    }

    #[test]
    fn roles_partition_the_inventory() {
        let cfg = ModelConfig::gpt3_tiny();
        let specs = param_specs(&cfg);
        assert!(specs.iter().any(|s| s.role == LayerRole::Embedding));
        assert!(specs.iter().any(|s| s.role == LayerRole::Head));
        for i in 0..cfg.num_layers {
            assert!(specs.iter().any(|s| s.role == LayerRole::Block(i)));
        }
    }
}
