//! Multi-head causal self-attention with grouped-query attention,
//! tensor-parallel head sharding, and sequence-parallel execution.
//!
//! Layouts: activations are `[T, H]` with `T = batch · s_local` and tokens
//! ordered batch-major (`t = b · s_local + s`). Under sequence parallelism
//! each rank holds a contiguous sequence chunk of every batch row; keys and
//! values are all-gathered across the SP group (a simplified
//! Ulysses/ring-attention hybrid — see DESIGN.md substitutions), queries
//! stay local, and key/value gradients are reduced back to their owning
//! chunk.

use ucp_tensor::{ops, Shape, Tensor};

use crate::config::PositionKind;
use crate::group_ops::GroupOps;
use crate::layers::{linear_backward, linear_forward, LinearCache};

/// Static geometry of one attention invocation.
#[derive(Debug, Clone)]
pub struct AttnDims {
    /// Microbatch rows.
    pub batch: usize,
    /// Local sequence length (`seq_total / sp`).
    pub s_local: usize,
    /// Full sequence length.
    pub seq_total: usize,
    /// Query heads on this TP rank.
    pub n_q_local: usize,
    /// Key/value heads on this TP rank.
    pub n_kv_local: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// Global position of this rank's first sequence element
    /// (`sp_rank · s_local`).
    pub pos_start: usize,
    /// Global index of this rank's first query head (`tp_rank · n_q_local`),
    /// needed for ALiBi slopes.
    pub q_head_start: usize,
    /// Total query heads in the model (for ALiBi slopes).
    pub n_heads_total: usize,
    /// Position-encoding flavor.
    pub position: PositionKind,
}

impl AttnDims {
    fn t_local(&self) -> usize {
        self.batch * self.s_local
    }

    fn rows_local(&self) -> usize {
        (self.n_q_local + 2 * self.n_kv_local) * self.head_dim
    }
}

/// Parameter shards used by one attention invocation.
pub struct AttnParams<'a> {
    /// Fused QKV weight shard `[rows_local, H]`.
    pub qkv_w: &'a Tensor,
    /// Fused QKV bias shard `[rows_local]`.
    pub qkv_b: Option<&'a Tensor>,
    /// Output projection shard `[H, n_q_local · head_dim]` (row-parallel).
    pub dense_w: &'a Tensor,
    /// Output bias `[H]` (replicated; added after the TP all-reduce).
    pub dense_b: Option<&'a Tensor>,
}

/// Gradient buffers matching [`AttnParams`].
pub struct AttnGrads<'a> {
    /// Gradient of `qkv_w`.
    pub qkv_w: &'a mut [f64],
    /// Gradient of `qkv_b`.
    pub qkv_b: Option<&'a mut [f64]>,
    /// Gradient of `dense_w`.
    pub dense_w: &'a mut [f64],
    /// Gradient of `dense_b`.
    pub dense_b: Option<&'a mut [f64]>,
}

/// Saved state for the attention backward pass.
pub struct AttnCache {
    dims: AttnDims,
    qkv_cache: LinearCache,
    /// Rotated queries `[T, n_q_local · d]`.
    q: Tensor,
    /// Gathered, rotated keys `[seq_total, batch · n_kv_local · d]`.
    k_full: Tensor,
    /// Gathered values `[seq_total, batch · n_kv_local · d]`.
    v_full: Tensor,
    /// Softmax probabilities, one `[s_local, seq_total]` per (batch, q-head).
    probs: Vec<Tensor>,
    dense_cache: LinearCache,
}

/// ALiBi slope for global head `g` of `n` (BLOOM formula for power-of-two
/// head counts).
pub fn alibi_slope(g: usize, n: usize) -> f64 {
    2f64.powf(-8.0 * (g as f64 + 1.0) / n as f64)
}

/// Apply rotary embedding in place to one head vector at `pos`.
fn rope_rotate(vec: &mut [f32], pos: usize, inverse: bool) {
    let d = vec.len();
    for i in 0..d / 2 {
        let theta = pos as f64 / 10000f64.powf(2.0 * i as f64 / d as f64);
        let (sin, cos) = theta.sin_cos();
        let sin = if inverse { -sin } else { sin };
        let (x, y) = (f64::from(vec[2 * i]), f64::from(vec[2 * i + 1]));
        vec[2 * i] = (x * cos - y * sin) as f32;
        vec[2 * i + 1] = (x * sin + y * cos) as f32;
    }
}

/// Extract `[T, section]` views of the fused QKV activation and lay K/V out
/// sequence-major for the SP gather.
///
/// Returns `(q [T, nq·d], k_seq [s_local, B·nkv·d], v_seq [s_local, B·nkv·d])`.
fn split_qkv(qkv: &Tensor, dims: &AttnDims) -> (Tensor, Tensor, Tensor) {
    let d = dims.head_dim;
    let (nq, nkv) = (dims.n_q_local, dims.n_kv_local);
    let t_local = dims.t_local();
    let rows = dims.rows_local();
    let src = qkv.as_slice();

    let mut q = vec![0.0f32; t_local * nq * d];
    let mut k = vec![0.0f32; dims.s_local * dims.batch * nkv * d];
    let mut v = vec![0.0f32; dims.s_local * dims.batch * nkv * d];
    for b in 0..dims.batch {
        for s in 0..dims.s_local {
            let t = b * dims.s_local + s;
            let row = &src[t * rows..(t + 1) * rows];
            q[t * nq * d..(t + 1) * nq * d].copy_from_slice(&row[..nq * d]);
            let kv_base = (s * dims.batch + b) * nkv * d;
            k[kv_base..kv_base + nkv * d].copy_from_slice(&row[nq * d..(nq + nkv) * d]);
            v[kv_base..kv_base + nkv * d].copy_from_slice(&row[(nq + nkv) * d..(nq + 2 * nkv) * d]);
        }
    }
    (
        Tensor::from_vec(q, [t_local, nq * d]).expect("q dims"),
        Tensor::from_vec(k, [dims.s_local, dims.batch * nkv * d]).expect("k dims"),
        Tensor::from_vec(v, [dims.s_local, dims.batch * nkv * d]).expect("v dims"),
    )
}

/// Inverse of [`split_qkv`]: pack gradient pieces back into the fused
/// `[T, rows_local]` layout.
fn pack_dqkv(dq: &Tensor, dk_seq: &Tensor, dv_seq: &Tensor, dims: &AttnDims) -> Tensor {
    let d = dims.head_dim;
    let (nq, nkv) = (dims.n_q_local, dims.n_kv_local);
    let rows = dims.rows_local();
    let mut out = vec![0.0f32; dims.t_local() * rows];
    let (dqs, dks, dvs) = (dq.as_slice(), dk_seq.as_slice(), dv_seq.as_slice());
    for b in 0..dims.batch {
        for s in 0..dims.s_local {
            let t = b * dims.s_local + s;
            let row = &mut out[t * rows..(t + 1) * rows];
            row[..nq * d].copy_from_slice(&dqs[t * nq * d..(t + 1) * nq * d]);
            let kv_base = (s * dims.batch + b) * nkv * d;
            row[nq * d..(nq + nkv) * d].copy_from_slice(&dks[kv_base..kv_base + nkv * d]);
            row[(nq + nkv) * d..(nq + 2 * nkv) * d]
                .copy_from_slice(&dvs[kv_base..kv_base + nkv * d]);
        }
    }
    Tensor::from_vec(out, [dims.t_local(), rows]).expect("packed dims")
}

/// Forward pass. Returns the attention block output `[T, H]` (already
/// TP-reduced, bias added) and the backward cache.
pub fn attention_forward(
    h: &Tensor,
    params: &AttnParams<'_>,
    dims: &AttnDims,
    tp: &dyn GroupOps,
    sp: &dyn GroupOps,
) -> (Tensor, AttnCache) {
    let d = dims.head_dim;
    let (qkv, qkv_cache) = linear_forward(h, params.qkv_w, params.qkv_b);
    let (mut q, mut k_seq, v_seq) = split_qkv(&qkv, dims);

    // Rotary embedding on local queries and keys (global positions).
    if dims.position == PositionKind::Rotary {
        let nq = dims.n_q_local;
        for b in 0..dims.batch {
            for s in 0..dims.s_local {
                let pos = dims.pos_start + s;
                let t = b * dims.s_local + s;
                for head in 0..nq {
                    rope_rotate(
                        &mut q.as_mut_slice()[(t * nq + head) * d..(t * nq + head + 1) * d],
                        pos,
                        false,
                    );
                }
                for head in 0..dims.n_kv_local {
                    let base = ((s * dims.batch + b) * dims.n_kv_local + head) * d;
                    rope_rotate(&mut k_seq.as_mut_slice()[base..base + d], pos, false);
                }
            }
        }
    }

    // Sequence-parallel gather of keys and values across the SP group.
    let k_full = sp.all_gather_cat(&k_seq, 0);
    let v_full = sp.all_gather_cat(&v_seq, 0);

    // Per (batch, q-head) causal attention over the full sequence.
    let group_ratio = dims.n_q_local / dims.n_kv_local;
    let nkv = dims.n_kv_local;
    let scale = 1.0 / (d as f64).sqrt();
    let mut probs = Vec::with_capacity(dims.batch * dims.n_q_local);
    let mut ctx = vec![0.0f32; dims.t_local() * dims.n_q_local * d];
    let (qs, ks, vs) = (q.as_slice(), k_full.as_slice(), v_full.as_slice());
    for b in 0..dims.batch {
        for qh in 0..dims.n_q_local {
            let kvh = qh / group_ratio;
            let slope = if dims.position == PositionKind::Alibi {
                alibi_slope(dims.q_head_start + qh, dims.n_heads_total)
            } else {
                0.0
            };
            let mut p = vec![0.0f32; dims.s_local * dims.seq_total];
            for s in 0..dims.s_local {
                let qpos = dims.pos_start + s;
                let t = b * dims.s_local + s;
                let qvec = &qs[(t * dims.n_q_local + qh) * d..(t * dims.n_q_local + qh + 1) * d];
                // Scores with causal mask; softmax over the visible prefix.
                let mut max = f64::NEG_INFINITY;
                let mut scores = vec![0.0f64; qpos + 1];
                for (j, score) in scores.iter_mut().enumerate() {
                    let kbase = ((j * dims.batch + b) * nkv + kvh) * d;
                    let mut s_val = ops::dot64(qvec, &ks[kbase..kbase + d]) * scale;
                    if slope != 0.0 {
                        s_val -= slope * (qpos - j) as f64;
                    }
                    *score = s_val;
                    max = max.max(s_val);
                }
                let mut denom = 0.0f64;
                for score in scores.iter_mut() {
                    *score = (*score - max).exp();
                    denom += *score;
                }
                let prow = &mut p[s * dims.seq_total..(s + 1) * dims.seq_total];
                let cvec =
                    &mut ctx[(t * dims.n_q_local + qh) * d..(t * dims.n_q_local + qh + 1) * d];
                let mut acc = vec![0.0f64; d];
                for (j, score) in scores.iter().enumerate() {
                    let pj = score / denom;
                    prow[j] = pj as f32;
                    let vbase = ((j * dims.batch + b) * nkv + kvh) * d;
                    for (a, vv) in acc.iter_mut().zip(&vs[vbase..vbase + d]) {
                        *a += pj * f64::from(*vv);
                    }
                }
                for (c, a) in cvec.iter_mut().zip(acc) {
                    *c = a as f32;
                }
            }
            probs.push(Tensor::from_vec(p, [dims.s_local, dims.seq_total]).expect("prob dims"));
        }
    }
    let ctx = Tensor::from_vec(ctx, [dims.t_local(), dims.n_q_local * d]).expect("ctx dims");

    // Row-parallel output projection: partial matmul, TP reduce, then bias.
    let (partial, dense_cache) = linear_forward(&ctx, params.dense_w, None);
    let mut out = tp.all_reduce_sum(&partial);
    if let Some(bias) = params.dense_b {
        let hdim = bias.num_elements();
        for row in out.as_mut_slice().chunks_exact_mut(hdim) {
            for (v, bv) in row.iter_mut().zip(bias.as_slice()) {
                *v += bv;
            }
        }
    }

    (
        out,
        AttnCache {
            dims: dims.clone(),
            qkv_cache,
            q,
            k_full,
            v_full,
            probs,
            dense_cache,
        },
    )
}

/// Backward pass. `dy` is the gradient of the block output `[T, H]`
/// (replicated across TP). Returns the TP-reduced gradient w.r.t. the block
/// input (column-parallel input rule).
pub fn attention_backward(
    cache: &AttnCache,
    params: &AttnParams<'_>,
    grads: &mut AttnGrads<'_>,
    dy: &Tensor,
    tp: &dyn GroupOps,
    sp: &dyn GroupOps,
) -> Tensor {
    let dims = &cache.dims;
    let d = dims.head_dim;
    let nkv = dims.n_kv_local;
    let group_ratio = dims.n_q_local / dims.n_kv_local;
    let scale = 1.0 / (d as f64).sqrt();

    // Row-parallel dense: bias gradient is the plain column sum (dy is
    // replicated across TP; replicated-param gradients stay identical).
    if let (Some(db), Some(bias)) = (grads.dense_b.as_deref_mut(), params.dense_b) {
        let hdim = bias.num_elements();
        for row in dy.as_slice().chunks_exact(hdim) {
            for (acc, v) in db.iter_mut().zip(row) {
                *acc += f64::from(*v);
            }
        }
    }
    let dctx = linear_backward(&cache.dense_cache, params.dense_w, dy, grads.dense_w, None);

    // Attention core backward.
    let mut dq = vec![0.0f32; cache.q.num_elements()];
    let mut dk_full = vec![0.0f64; cache.k_full.num_elements()];
    let mut dv_full = vec![0.0f64; cache.v_full.num_elements()];
    let (qs, ks, vs) = (
        cache.q.as_slice(),
        cache.k_full.as_slice(),
        cache.v_full.as_slice(),
    );
    let dctxs = dctx.as_slice();
    for b in 0..dims.batch {
        for qh in 0..dims.n_q_local {
            let kvh = qh / group_ratio;
            let p = cache.probs[b * dims.n_q_local + qh].as_slice();
            for s in 0..dims.s_local {
                let qpos = dims.pos_start + s;
                let t = b * dims.s_local + s;
                let head_off = (t * dims.n_q_local + qh) * d;
                let dc = &dctxs[head_off..head_off + d];
                let prow = &p[s * dims.seq_total..(s + 1) * dims.seq_total];
                // dP[j] = dc · v_j ; dS = P ⊙ (dP − Σ dP⊙P).
                let mut dp = vec![0.0f64; qpos + 1];
                let mut inner = 0.0f64;
                for (j, dpj) in dp.iter_mut().enumerate() {
                    let vbase = ((j * dims.batch + b) * nkv + kvh) * d;
                    *dpj = ops::dot64(dc, &vs[vbase..vbase + d]);
                    inner += *dpj * f64::from(prow[j]);
                }
                let qvec = &qs[head_off..head_off + d];
                let dqvec = &mut dq[head_off..head_off + d];
                for (j, dpj) in dp.iter().enumerate() {
                    let pj = f64::from(prow[j]);
                    let ds = pj * (dpj - inner) * scale;
                    let kbase = ((j * dims.batch + b) * nkv + kvh) * d;
                    let vbase = kbase;
                    for i in 0..d {
                        dqvec[i] += (ds * f64::from(ks[kbase + i])) as f32;
                        dk_full[kbase + i] += ds * f64::from(qvec[i]);
                        dv_full[vbase + i] += pj * f64::from(dc[i]);
                    }
                }
            }
        }
    }

    // Reduce K/V gradients over the SP group and keep the local chunk.
    let dk_full_t = Tensor::from_vec(
        dk_full.into_iter().map(|v| v as f32).collect(),
        cache.k_full.shape().clone(),
    )
    .expect("dk dims");
    let dv_full_t = Tensor::from_vec(
        dv_full.into_iter().map(|v| v as f32).collect(),
        cache.v_full.shape().clone(),
    )
    .expect("dv dims");
    let (mut dk_seq, dv_seq) = if sp.size() > 1 {
        let dk_sum = sp.all_reduce_sum(&dk_full_t);
        let dv_sum = sp.all_reduce_sum(&dv_full_t);
        (
            dk_sum
                .narrow(0, dims.pos_start, dims.s_local)
                .expect("local k chunk"),
            dv_sum
                .narrow(0, dims.pos_start, dims.s_local)
                .expect("local v chunk"),
        )
    } else {
        (dk_full_t, dv_full_t)
    };

    // Inverse rotary on dq and local dk.
    let mut dq =
        Tensor::from_vec(dq, Shape::new([dims.t_local(), dims.n_q_local * d])).expect("dq dims");
    if dims.position == PositionKind::Rotary {
        let nq = dims.n_q_local;
        for b in 0..dims.batch {
            for s in 0..dims.s_local {
                let pos = dims.pos_start + s;
                let t = b * dims.s_local + s;
                for head in 0..nq {
                    rope_rotate(
                        &mut dq.as_mut_slice()[(t * nq + head) * d..(t * nq + head + 1) * d],
                        pos,
                        true,
                    );
                }
                for head in 0..nkv {
                    let base = ((s * dims.batch + b) * nkv + head) * d;
                    rope_rotate(&mut dk_seq.as_mut_slice()[base..base + d], pos, true);
                }
            }
        }
    }

    // Pack and run the fused QKV linear backward; the input gradient of a
    // column-parallel linear is a partial sum across TP ranks.
    let dqkv = pack_dqkv(&dq, &dk_seq, &dv_seq, dims);
    let dx = linear_backward(
        &cache.qkv_cache,
        params.qkv_w,
        &dqkv,
        grads.qkv_w,
        grads.qkv_b.as_deref_mut(),
    );
    tp.all_reduce_sum(&dx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group_ops::Solo;
    use ucp_tensor::DetRng;

    fn dims(batch: usize, seq: usize, nq: usize, nkv: usize, d: usize) -> AttnDims {
        AttnDims {
            batch,
            s_local: seq,
            seq_total: seq,
            n_q_local: nq,
            n_kv_local: nkv,
            head_dim: d,
            pos_start: 0,
            q_head_start: 0,
            n_heads_total: nq,
            position: PositionKind::Learned,
        }
    }

    fn make_params(
        rng: &DetRng,
        h: usize,
        rows: usize,
        bias: bool,
    ) -> (Tensor, Option<Tensor>, Tensor, Option<Tensor>) {
        (
            Tensor::randn([rows, h], 0.3, &rng.derive("qkvw")),
            bias.then(|| Tensor::randn([rows], 0.1, &rng.derive("qkvb"))),
            Tensor::randn([h, h], 0.3, &rng.derive("dw")),
            bias.then(|| Tensor::randn([h], 0.1, &rng.derive("db"))),
        )
    }

    #[test]
    fn causal_masking_blocks_future() {
        // With identical K for all positions, probabilities over the visible
        // prefix are uniform; future positions must be exactly zero.
        let rng = DetRng::new(10);
        let h = 8;
        let dims = dims(1, 4, 2, 2, 4);
        let (qkv_w, _, dense_w, _) = make_params(&rng, h, 3 * h, false);
        let x = Tensor::randn([4, h], 0.5, &rng.derive("x"));
        let params = AttnParams {
            qkv_w: &qkv_w,
            qkv_b: None,
            dense_w: &dense_w,
            dense_b: None,
        };
        let (_, cache) = attention_forward(&x, &params, &dims, &Solo, &Solo);
        for p in &cache.probs {
            let ps = p.as_slice();
            for s in 0..4 {
                for j in 0..4 {
                    let v = ps[s * 4 + j];
                    if j > s {
                        assert_eq!(v, 0.0, "future leak at s={s}, j={j}");
                    }
                }
                let row_sum: f32 = ps[s * 4..(s + 1) * 4].iter().sum();
                assert!((row_sum - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn rope_rotate_roundtrip() {
        let mut v = vec![1.0, 2.0, -0.5, 0.25];
        let orig = v.clone();
        rope_rotate(&mut v, 7, false);
        assert!(v.iter().zip(&orig).any(|(a, b)| (a - b).abs() > 1e-3));
        rope_rotate(&mut v, 7, true);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn alibi_slopes_decay() {
        let s: Vec<f64> = (0..4).map(|g| alibi_slope(g, 4)).collect();
        assert!((s[0] - 0.25).abs() < 1e-12);
        assert!(s.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn split_pack_roundtrip() {
        let rng = DetRng::new(11);
        let dims = dims(2, 3, 2, 1, 4);
        let qkv = Tensor::randn([6, dims.rows_local()], 1.0, &rng.derive("qkv"));
        let (q, k, v) = split_qkv(&qkv, &dims);
        let back = pack_dqkv(&q, &k, &v, &dims);
        assert!(back.bitwise_eq(&qkv));
    }

    #[test]
    fn backward_finite_difference_full_block() {
        let rng = DetRng::new(12);
        let h = 8;
        let batch = 2;
        let seq = 4;
        let mut dm = dims(batch, seq, 2, 1, 4);
        dm.position = PositionKind::Rotary;
        let rows = dm.rows_local();
        let (qkv_w, qkv_b, dense_w, dense_b) = make_params(&rng, h, rows, true);
        let x = Tensor::randn([batch * seq, h], 0.5, &rng.derive("x"));
        let dy = Tensor::randn([batch * seq, h], 1.0, &rng.derive("dy"));

        let run = |x: &Tensor, qkv_w: &Tensor, dense_w: &Tensor| -> f64 {
            let params = AttnParams {
                qkv_w,
                qkv_b: qkv_b.as_ref(),
                dense_w,
                dense_b: dense_b.as_ref(),
            };
            let (y, _) = attention_forward(x, &params, &dm, &Solo, &Solo);
            ops::dot64(y.as_slice(), dy.as_slice())
        };

        let params = AttnParams {
            qkv_w: &qkv_w,
            qkv_b: qkv_b.as_ref(),
            dense_w: &dense_w,
            dense_b: dense_b.as_ref(),
        };
        let (_, cache) = attention_forward(&x, &params, &dm, &Solo, &Solo);
        let mut g_qkv_w = vec![0.0f64; qkv_w.num_elements()];
        let mut g_qkv_b = vec![0.0f64; rows];
        let mut g_dense_w = vec![0.0f64; dense_w.num_elements()];
        let mut g_dense_b = vec![0.0f64; h];
        let mut grads = AttnGrads {
            qkv_w: &mut g_qkv_w,
            qkv_b: Some(&mut g_qkv_b),
            dense_w: &mut g_dense_w,
            dense_b: Some(&mut g_dense_b),
        };
        let dx = attention_backward(&cache, &params, &mut grads, &dy, &Solo, &Solo);

        let eps = 1e-3f32;
        let base = run(&x, &qkv_w, &dense_w);
        // dx spot checks.
        for idx in [0usize, 17, 40] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let numeric = (run(&xp, &qkv_w, &dense_w) - base) / f64::from(eps);
            let analytic = f64::from(dx.as_slice()[idx]);
            assert!(
                (analytic - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                "dx[{idx}]: {analytic} vs {numeric}"
            );
        }
        // Weight spot checks.
        for idx in [3usize, 50] {
            let mut wp = qkv_w.clone();
            wp.as_mut_slice()[idx] += eps;
            let numeric = (run(&x, &wp, &dense_w) - base) / f64::from(eps);
            assert!(
                (g_qkv_w[idx] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                "dqkv_w[{idx}]: {} vs {numeric}",
                g_qkv_w[idx]
            );
        }
        for idx in [5usize, 33] {
            let mut wp = dense_w.clone();
            wp.as_mut_slice()[idx] += eps;
            let numeric = (run(&x, &qkv_w, &wp) - base) / f64::from(eps);
            assert!(
                (g_dense_w[idx] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                "ddense_w[{idx}]: {} vs {numeric}",
                g_dense_w[idx]
            );
        }
    }

    use ucp_tensor::ops;
}
