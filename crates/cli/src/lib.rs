//! `ucp` command-line tool internals: flag parsing and command
//! implementations, exposed as a library so integration tests can drive
//! them directly.

pub mod args;
pub mod commands;
pub mod status;

use std::path::Path;

/// Resolve the step to operate on: explicit flag, else the `latest` marker.
pub fn resolve_step(dir: &Path, step: Option<u64>) -> Result<u64, String> {
    step.or_else(|| ucp_storage::layout::read_latest(dir))
        .ok_or_else(|| format!("no --step given and no latest marker in {}", dir.display()))
}
