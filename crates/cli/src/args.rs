//! Minimal flag parsing (no external CLI dependency).

use std::path::PathBuf;

/// Usage text.
pub const USAGE: &str = "\
ucp — universal checkpoint tools

USAGE:
  ucp convert --dir <ckpt-base> [--step N] [--workers W] [--spill] [--no-verify]
      Convert a native distributed checkpoint into a universal checkpoint.
  ucp load --dir <ckpt-base> --step N --tp T --pp P --dp D [--sp S] [--rank R]
      [--workers W] [--mibps M] [--no-ranged-load]
      Execute the universal load for one rank (or all ranks when --rank is
      omitted), optionally through a simulated fixed-bandwidth device. By
      default only the block-aligned byte ranges each rank's shard needs
      are read, with a session atom cache shared across ranks;
      --no-ranged-load reads whole atom files instead (the pre-v2
      behavior). Prints bytes read vs. bytes needed and cache hit rates.
  ucp train --dir <ckpt-base> --model <preset> --tp T --pp P --dp D [--sp S]
      [--iters I] [--save-every K] [--seed S] [--overlapped]
      [--no-universal-save] [--hot-replicas K]
      Run the training simulator with periodic native checkpointing.
      --save-every takes K >= 1 (K=1 checkpoints every iteration; 0 is
      rejected rather than clamped).
      --hot-replicas K enables the peer-replicated in-memory hot
      checkpoint tier: each save, every rank pushes its shard to K
      successor ranks, and a supervised recovery serves the resume state
      from surviving RAM copies before falling back to disk. Takes
      K >= 1 and K < world size (0 is rejected rather than clamped).
      --overlapped snapshots each checkpoint in memory and persists it on
      background writer threads; the writers also run the born-universal
      save pipeline, so latest_universal is published at save time and a
      reconfigured resume needs no convert pass. --no-universal-save
      keeps the overlapped native writers but skips the pipeline
      (resume under a new strategy then requires `ucp convert`).
  ucp inspect --dir <ckpt-base> [--step N]
      Summarize a checkpoint: strategy, flat layout, atoms and patterns.
  ucp plan --dir <ckpt-base> --step N --tp T --pp P --dp D [--sp S] [--zero Z] --rank R
      Print the GenUcpMetadata load plan for one target rank.
  ucp verify --dir <ckpt-base> [--step N]
      Read every checkpoint file and verify all checksums.
  ucp prune --dir <ckpt-base> --keep-last K [--keep-every N]
      Remove old checkpoint steps per the retention policy.
  ucp fsck --dir <ckpt-base> [--no-repair] [--json]
      Verify every checkpoint step (checksums + completeness), quarantine
      bad step trees to *.corrupt, sweep stale .tmp files, and repair
      dangling latest markers. --no-repair only reports; --json prints a
      machine-readable report. Exits non-zero when problems are found.
  ucp spec --model <gpt3-tiny|llama-tiny|bloom-tiny|moe-tiny> --tp T
      Print the derived UCP pattern spec (JSON) for a model preset.
  ucp diff --dir <universal-dir-A> --other <universal-dir-B> [--tolerance T]
      Compare two universal checkpoints atom by atom.
  ucp trace --dir <ckpt-base> [--trace-out <path>] [--summary] [--json]
      Record a traced 2x2 (TPxPP) workload — train with overlapped saves,
      convert, universal load — and write Chrome Trace Format JSON (one
      pid per rank; load it in Perfetto or chrome://tracing). --summary
      prints per-rank busy/wait, per-collective wait breakdowns, and the
      straggler ranking; --json emits that analysis as JSON.
  ucp trace --trace-in <trace.json> [--summary] [--json]
      Analyze a previously recorded trace instead of running a workload.
  ucp chaos --dir <work-dir> --model <preset> --tp T --pp P --dp D [--sp S]
      [--iters I] [--save-every K] [--seed S] [--kill-steps 2,3,4]
      [--kinds panic,hang] [--targets 1x1x2;1x1x1] [--deadline-ms MS]
      [--hot-replicas K] [--faults-per-cell N] [--report-out <path>]
      Sweep a rank-kill schedule: for every kill step x fault kind, train
      under the source topology, kill a rank at that step, and let the
      supervisor resume from the latest committed checkpoint under the
      next degraded topology (--targets, `TPxPPxDP` triples separated by
      ';'). Each cell checks the resumed loss trajectory is bitwise-equal
      to a fault-free run from the same checkpoint and that `fsck` stays
      clean. --hot-replicas K arms the in-memory hot tier and records
      per-cell which tier (peer vs disk) served the recovery;
      --faults-per-cell N kills the top N ranks simultaneously at the
      kill step (N > K is expected to fall back to disk). --report-out
      writes a ucp-chaos-v1 JSON report; exits non-zero if any cell
      fails to recover, diverges, or recovers from the wrong tier.
  ucp status --dir <ckpt-base> [--metrics <report.json>] [--json]
      [--max-stale-steps N] [--max-recovery-ms MS] [--max-save-stall-ms MS]
      [--max-read-amp X]
      Report the health of a checkpoint tree by joining its run journal
      (journal.jsonl), the latest/latest_universal markers, and an
      optional ucp-metrics-v1 report (--metrics, e.g. one written by
      --metrics-out). Prints a markdown health table: checkpoint
      freshness (steps since latest_universal), recovery counts and
      worst recovery_ms, save-stall p99, read amplification, and the
      last fsck verdict. Each --max-* flag arms a declarative SLO
      threshold; violations are named in the output and the exit code is
      non-zero when any is breached. --json emits the machine-readable
      ucp-status-v1 report instead.
  ucp bench [--fast] [--out <BENCH_ops.json>]
      Run the hot-path microbenchmark (CRC kernels, section-range read,
      fig13 ranged load) and write a ucp-metrics-v1 report (default
      BENCH_ops.json). --fast shrinks payloads and skips the fig13 probe
      for quick local iteration; CI gates on full runs.
  ucp bench --cadence [--fast] [--out <BENCH_cadence.json>]
      Sweep --save-every in {1, 2, 4, 8} over dense and MoE overlapped
      training runs, measuring per-save blocking stall and dirty-filtered
      exchange bytes, and write a ucp-metrics-v1 report (default
      BENCH_cadence.json). --fast keeps only the cadence endpoints
      (1 and 8). CI gates the report with check_save_stall.py --cadence.
  ucp bench --check [--baseline <path>] [--current <path>] [--tolerance T]
      Compare a current microbench report (default BENCH_ops.json)
      against the committed baseline (default results/BENCH_baseline.json)
      and exit non-zero when any gated metric regresses beyond the noise
      tolerance (default 0.25). Prints a baseline-vs-current markdown
      table; CI appends it to the job summary.
  ucp help
      Show this message.

  Any of convert / load / train / fsck / chaos accept --metrics-out
  <path>: enable telemetry and write a ucp-metrics-v1 JSON report of the
  run's phase timings, counters, and histograms to <path>. convert /
  load / train / fsck also accept --trace-out <path>: record a
  distributed trace of the run and write it as Chrome Trace Format JSON.
  Both flags create missing parent directories and publish the file
  atomically.";

/// Parsed flags (a flat bag; each command reads what it needs).
#[derive(Debug, Default)]
pub struct Parsed {
    /// `--dir`.
    pub dir: Option<PathBuf>,
    /// `--step`.
    pub step: Option<u64>,
    /// `--workers`.
    pub workers: Option<usize>,
    /// `--spill`.
    pub spill: bool,
    /// `--no-verify`.
    pub no_verify: bool,
    /// `--tp`, `--pp`, `--dp`, `--sp`.
    pub tp: Option<usize>,
    /// Pipeline degree.
    pub pp: Option<usize>,
    /// Data-parallel degree.
    pub dp: Option<usize>,
    /// Sequence-parallel degree.
    pub sp: Option<usize>,
    /// `--zero` stage.
    pub zero: Option<u8>,
    /// `--rank`.
    pub rank: Option<usize>,
    /// `--keep-last` (prune).
    pub keep_last: Option<usize>,
    /// `--keep-every` (prune).
    pub keep_every: Option<u64>,
    /// `--model` (spec): preset name.
    pub model: Option<String>,
    /// `--other` (diff): second universal checkpoint directory.
    pub other: Option<std::path::PathBuf>,
    /// `--tolerance` (diff): max elementwise |Δ| treated as equal.
    pub tolerance: Option<f64>,
    /// `--metrics-out`: enable telemetry and write the JSON report here.
    pub metrics_out: Option<PathBuf>,
    /// `--trace-out`: enable tracing and write Chrome-trace JSON here.
    pub trace_out: Option<PathBuf>,
    /// `--trace-in` (trace): analyze a saved trace instead of running.
    pub trace_in: Option<PathBuf>,
    /// `--summary` (trace): print the busy/wait/straggler analysis.
    pub summary: bool,
    /// `--iters` (train): iterations to run.
    pub iters: Option<u64>,
    /// `--save-every` (train): checkpoint every K iterations.
    pub save_every: Option<u64>,
    /// `--seed` (train).
    pub seed: Option<u64>,
    /// `--overlapped` (train): background snapshot-persist writers.
    pub overlapped: bool,
    /// `--no-universal-save` (train --overlapped): skip the born-universal
    /// save pipeline, native checkpoints only.
    pub no_universal_save: bool,
    /// `--mibps` (load): simulated device bandwidth in MiB/s.
    pub mibps: Option<u64>,
    /// `--no-ranged-load` (load): read whole atom files instead of
    /// section-range reads.
    pub no_ranged_load: bool,
    /// `--no-repair` (fsck): report only, change nothing on disk.
    pub no_repair: bool,
    /// `--json` (fsck): print the machine-readable report.
    pub json: bool,
    /// `--kill-steps` (chaos): comma-separated step boundaries to kill at.
    pub kill_steps: Option<String>,
    /// `--kinds` (chaos): comma-separated fault kinds (`panic`, `hang`,
    /// `slow:<ms>`).
    pub kinds: Option<String>,
    /// `--targets` (chaos): `;`-separated degraded `TPxPPxDP[xSP]`
    /// topologies.
    pub targets: Option<String>,
    /// `--deadline-ms` (chaos): collective watchdog deadline.
    pub deadline_ms: Option<u64>,
    /// `--report-out` (chaos): write the machine-readable chaos report
    /// here.
    pub report_out: Option<PathBuf>,
    /// `--fast` (bench): shrink payloads and skip the fig13 probe.
    pub fast: bool,
    /// `--out` (bench): where to write the microbench report.
    pub out: Option<PathBuf>,
    /// `--check` (bench): compare current vs. baseline instead of running.
    pub check: bool,
    /// `--cadence` (bench): run the checkpoint-cadence sweep instead of
    /// the microbench.
    pub cadence: bool,
    /// `--baseline` (bench --check): committed baseline report path.
    pub baseline: Option<PathBuf>,
    /// `--current` (bench --check): current report path.
    pub current: Option<PathBuf>,
    /// `--metrics` (status): ucp-metrics-v1 report to join into the
    /// health report.
    pub metrics: Option<PathBuf>,
    /// `--max-stale-steps` (status): SLO — max steps the universal
    /// checkpoint may lag the newest native save.
    pub max_stale_steps: Option<u64>,
    /// `--max-recovery-ms` (status): SLO — max journal-recorded recovery
    /// wall time.
    pub max_recovery_ms: Option<u64>,
    /// `--max-save-stall-ms` (status): SLO — max p99 of the per-rank
    /// save-stall histogram.
    pub max_save_stall_ms: Option<u64>,
    /// `--max-read-amp` (status): SLO — max bytes_read / bytes_needed on
    /// the load path.
    pub max_read_amp: Option<f64>,
    /// `--hot-replicas` (train, chaos): peer-replication factor of the
    /// in-memory hot checkpoint tier.
    pub hot_replicas: Option<usize>,
    /// `--faults-per-cell` (chaos): ranks killed simultaneously per cell.
    pub faults_per_cell: Option<usize>,
}

/// Parse a flag list.
pub fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut p = Parsed::default();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("flag {} needs a value", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => p.dir = Some(PathBuf::from(value(&mut i)?)),
            "--step" => p.step = Some(parse_num(&value(&mut i)?)?),
            "--workers" => p.workers = Some(parse_num(&value(&mut i)?)? as usize),
            "--spill" => p.spill = true,
            "--no-verify" => p.no_verify = true,
            "--tp" => p.tp = Some(parse_num(&value(&mut i)?)? as usize),
            "--pp" => p.pp = Some(parse_num(&value(&mut i)?)? as usize),
            "--dp" => p.dp = Some(parse_num(&value(&mut i)?)? as usize),
            "--sp" => p.sp = Some(parse_num(&value(&mut i)?)? as usize),
            "--zero" => p.zero = Some(parse_num(&value(&mut i)?)? as u8),
            "--rank" => p.rank = Some(parse_num(&value(&mut i)?)? as usize),
            "--keep-last" => p.keep_last = Some(parse_num(&value(&mut i)?)? as usize),
            "--keep-every" => p.keep_every = Some(parse_num(&value(&mut i)?)?),
            "--model" => p.model = Some(value(&mut i)?),
            "--other" => p.other = Some(PathBuf::from(value(&mut i)?)),
            "--tolerance" => {
                let v = value(&mut i)?;
                p.tolerance = Some(v.parse().map_err(|_| format!("'{v}' is not a number"))?);
            }
            "--metrics-out" => p.metrics_out = Some(PathBuf::from(value(&mut i)?)),
            "--trace-out" => p.trace_out = Some(PathBuf::from(value(&mut i)?)),
            "--trace-in" => p.trace_in = Some(PathBuf::from(value(&mut i)?)),
            "--summary" => p.summary = true,
            "--iters" => p.iters = Some(parse_num(&value(&mut i)?)?),
            "--save-every" => p.save_every = Some(parse_num(&value(&mut i)?)?),
            "--seed" => p.seed = Some(parse_num(&value(&mut i)?)?),
            "--overlapped" => p.overlapped = true,
            "--no-universal-save" => p.no_universal_save = true,
            "--mibps" => p.mibps = Some(parse_num(&value(&mut i)?)?),
            "--no-ranged-load" => p.no_ranged_load = true,
            "--no-repair" => p.no_repair = true,
            "--json" => p.json = true,
            "--kill-steps" => p.kill_steps = Some(value(&mut i)?),
            "--kinds" => p.kinds = Some(value(&mut i)?),
            "--targets" => p.targets = Some(value(&mut i)?),
            "--deadline-ms" => p.deadline_ms = Some(parse_num(&value(&mut i)?)?),
            "--report-out" => p.report_out = Some(PathBuf::from(value(&mut i)?)),
            "--fast" => p.fast = true,
            "--out" => p.out = Some(PathBuf::from(value(&mut i)?)),
            "--check" => p.check = true,
            "--cadence" => p.cadence = true,
            "--baseline" => p.baseline = Some(PathBuf::from(value(&mut i)?)),
            "--current" => p.current = Some(PathBuf::from(value(&mut i)?)),
            "--metrics" => p.metrics = Some(PathBuf::from(value(&mut i)?)),
            "--max-stale-steps" => p.max_stale_steps = Some(parse_num(&value(&mut i)?)?),
            "--max-recovery-ms" => p.max_recovery_ms = Some(parse_num(&value(&mut i)?)?),
            "--max-save-stall-ms" => p.max_save_stall_ms = Some(parse_num(&value(&mut i)?)?),
            "--hot-replicas" => p.hot_replicas = Some(parse_num(&value(&mut i)?)? as usize),
            "--faults-per-cell" => p.faults_per_cell = Some(parse_num(&value(&mut i)?)? as usize),
            "--max-read-amp" => {
                let v = value(&mut i)?;
                p.max_read_amp = Some(v.parse().map_err(|_| format!("'{v}' is not a number"))?);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(p)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("'{s}' is not a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_convert_flags() {
        let p = parse(&sv(&[
            "--dir",
            "/ckpt",
            "--step",
            "100",
            "--workers",
            "8",
            "--spill",
        ]))
        .unwrap();
        assert_eq!(p.dir.unwrap(), PathBuf::from("/ckpt"));
        assert_eq!(p.step, Some(100));
        assert_eq!(p.workers, Some(8));
        assert!(p.spill);
        assert!(!p.no_verify);
    }

    #[test]
    fn parses_plan_flags() {
        let p = parse(&sv(&[
            "--dir", "/c", "--step", "5", "--tp", "2", "--pp", "2", "--dp", "1", "--zero", "3",
            "--rank", "3",
        ]))
        .unwrap();
        assert_eq!((p.tp, p.pp, p.dp, p.sp), (Some(2), Some(2), Some(1), None));
        assert_eq!(p.zero, Some(3));
        assert_eq!(p.rank, Some(3));
    }

    #[test]
    fn parses_telemetry_and_train_flags() {
        let p = parse(&sv(&[
            "--metrics-out",
            "/tmp/m.json",
            "--iters",
            "4",
            "--save-every",
            "2",
            "--seed",
            "7",
            "--mibps",
            "800",
        ]))
        .unwrap();
        assert_eq!(p.metrics_out.unwrap(), PathBuf::from("/tmp/m.json"));
        assert_eq!(p.iters, Some(4));
        assert_eq!(p.save_every, Some(2));
        assert_eq!(p.seed, Some(7));
        assert_eq!(p.mibps, Some(800));
        assert!(!p.overlapped && !p.no_universal_save);
    }

    #[test]
    fn parses_overlapped_save_flags() {
        let p = parse(&sv(&["--dir", "/c", "--overlapped"])).unwrap();
        assert!(p.overlapped);
        assert!(!p.no_universal_save);
        let p = parse(&sv(&["--dir", "/c", "--overlapped", "--no-universal-save"])).unwrap();
        assert!(p.overlapped && p.no_universal_save);
    }

    #[test]
    fn parses_load_strategy_flag() {
        assert!(!parse(&sv(&["--dir", "/c"])).unwrap().no_ranged_load);
        assert!(
            parse(&sv(&["--dir", "/c", "--no-ranged-load"]))
                .unwrap()
                .no_ranged_load
        );
    }

    #[test]
    fn parses_fsck_flags() {
        let p = parse(&sv(&["--dir", "/c", "--no-repair", "--json"])).unwrap();
        assert!(p.no_repair);
        assert!(p.json);
        let p = parse(&sv(&["--dir", "/c"])).unwrap();
        assert!(!p.no_repair);
        assert!(!p.json);
    }

    #[test]
    fn parses_trace_flags() {
        let p = parse(&sv(&[
            "--trace-out",
            "/tmp/t.json",
            "--trace-in",
            "/tmp/in.json",
            "--summary",
        ]))
        .unwrap();
        assert_eq!(p.trace_out.unwrap(), PathBuf::from("/tmp/t.json"));
        assert_eq!(p.trace_in.unwrap(), PathBuf::from("/tmp/in.json"));
        assert!(p.summary);
        assert!(!parse(&sv(&[])).unwrap().summary);
    }

    #[test]
    fn parses_chaos_flags() {
        let p = parse(&sv(&[
            "--dir",
            "/c",
            "--kill-steps",
            "2,3,4",
            "--kinds",
            "panic,hang",
            "--targets",
            "1x1x2;1x1x1",
            "--deadline-ms",
            "1500",
            "--report-out",
            "/tmp/chaos.json",
        ]))
        .unwrap();
        assert_eq!(p.kill_steps.as_deref(), Some("2,3,4"));
        assert_eq!(p.kinds.as_deref(), Some("panic,hang"));
        assert_eq!(p.targets.as_deref(), Some("1x1x2;1x1x1"));
        assert_eq!(p.deadline_ms, Some(1500));
        assert_eq!(p.report_out.unwrap(), PathBuf::from("/tmp/chaos.json"));
    }

    #[test]
    fn parses_hot_tier_flags() {
        let p = parse(&sv(&[
            "--dir",
            "/c",
            "--hot-replicas",
            "2",
            "--faults-per-cell",
            "3",
        ]))
        .unwrap();
        assert_eq!(p.hot_replicas, Some(2));
        assert_eq!(p.faults_per_cell, Some(3));
        let p = parse(&sv(&["--dir", "/c"])).unwrap();
        assert!(p.hot_replicas.is_none() && p.faults_per_cell.is_none());
        assert!(parse(&sv(&["--hot-replicas", "two"])).is_err());
    }

    #[test]
    fn parses_bench_flags() {
        let p = parse(&sv(&[
            "--check",
            "--baseline",
            "results/BENCH_baseline.json",
            "--current",
            "BENCH_ops.json",
            "--tolerance",
            "0.3",
        ]))
        .unwrap();
        assert!(p.check);
        assert_eq!(
            p.baseline.unwrap(),
            PathBuf::from("results/BENCH_baseline.json")
        );
        assert_eq!(p.current.unwrap(), PathBuf::from("BENCH_ops.json"));
        assert_eq!(p.tolerance, Some(0.3));
        let p = parse(&sv(&["--fast", "--out", "/tmp/b.json"])).unwrap();
        assert!(p.fast && !p.check);
        assert_eq!(p.out.unwrap(), PathBuf::from("/tmp/b.json"));
    }

    #[test]
    fn parses_status_flags() {
        let p = parse(&sv(&[
            "--dir",
            "/c",
            "--metrics",
            "/tmp/m.json",
            "--max-stale-steps",
            "2",
            "--max-recovery-ms",
            "1500",
            "--max-save-stall-ms",
            "250",
            "--max-read-amp",
            "1.5",
            "--json",
        ]))
        .unwrap();
        assert_eq!(p.metrics.unwrap(), PathBuf::from("/tmp/m.json"));
        assert_eq!(p.max_stale_steps, Some(2));
        assert_eq!(p.max_recovery_ms, Some(1500));
        assert_eq!(p.max_save_stall_ms, Some(250));
        assert_eq!(p.max_read_amp, Some(1.5));
        assert!(p.json);
        let p = parse(&sv(&["--dir", "/c"])).unwrap();
        assert!(p.max_stale_steps.is_none() && p.max_read_amp.is_none());
        assert!(parse(&sv(&["--max-read-amp", "wat"])).is_err());
    }

    #[test]
    fn rejects_unknown_and_missing() {
        assert!(parse(&sv(&["--bogus"])).is_err());
        assert!(parse(&sv(&["--step"])).is_err());
        assert!(parse(&sv(&["--step", "abc"])).is_err());
    }
}
