//! Command implementations.

use ucp_core::checkpoint::{load_model_states, load_optim_states};
use ucp_core::convert::{convert_to_universal, ConvertOptions};
use ucp_core::language::UcpSpec;
use ucp_core::load::{
    gen_ucp_metadata, load_with_plan_device, LoadOptions, LoadSession, DEFAULT_ALIGNMENT,
};
use ucp_core::manifest::UcpManifest;
use ucp_model::ModelConfig;
use ucp_parallel::{ParallelConfig, ZeroStage};
use ucp_storage::{layout, retention, Container, Device};
use ucp_trainer::{train_run, train_run_overlapped, ResumeMode, TrainConfig, TrainPlan};

use crate::args::Parsed;
use crate::resolve_step;

fn require_dir(p: &Parsed) -> Result<std::path::PathBuf, String> {
    p.dir.clone().ok_or_else(|| "--dir is required".into())
}

/// When `--metrics-out` is set, wipe and enable the global recorder so the
/// command's hot paths are measured from a clean slate.
fn metrics_begin(p: &Parsed) {
    if p.metrics_out.is_some() {
        let rec = ucp_telemetry::global();
        rec.reset();
        rec.set_enabled(true);
    }
}

/// When `--metrics-out` is set, snapshot the recorder into a
/// `ucp-metrics-v1` JSON report at the requested path and disable it
/// again. The file is published through the staged-commit protocol
/// (parent directories created, write + rename atomic) so a crash or a
/// concurrent reader never observes torn JSON.
fn metrics_end(p: &Parsed, label: &str) -> Result<(), String> {
    let Some(path) = &p.metrics_out else {
        return Ok(());
    };
    let rec = ucp_telemetry::global();
    let report = rec.report(label);
    rec.set_enabled(false);
    ucp_storage::commit::atomic_write(path, report.to_json().as_bytes())
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("metrics report written to {}", path.display());
    Ok(())
}

/// When `--trace-out` is set, wipe the global tracer, enable it, and bind
/// the calling thread as the driver timeline, so the command records from
/// a clean slate.
fn trace_begin(p: &Parsed) {
    if p.trace_out.is_some() {
        ucp_telemetry::trace::global().start();
        ucp_telemetry::trace::register_thread(ucp_telemetry::trace::DRIVER_PID, "driver");
    }
}

/// When `--trace-out` is set, merge the per-thread buffers and publish
/// the Chrome Trace Format JSON atomically at the requested path.
/// Returns the merged session so callers can also analyze it.
fn trace_end(p: &Parsed) -> Result<Option<ucp_telemetry::TraceSession>, String> {
    let Some(path) = &p.trace_out else {
        return Ok(None);
    };
    let tracer = ucp_telemetry::trace::global();
    tracer.set_enabled(false);
    let session = tracer.take_session();
    ucp_storage::commit::atomic_write(path, session.to_chrome_json().as_bytes())
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!(
        "trace written to {} ({} events, {} rank(s))",
        path.display(),
        session.event_count(),
        session.ranks().len()
    );
    Ok(Some(session))
}

fn target_parallel(p: &Parsed) -> Result<ParallelConfig, String> {
    Ok(ParallelConfig::new(
        p.tp.ok_or("--tp is required")?,
        p.pp.ok_or("--pp is required")?,
        p.dp.ok_or("--dp is required")?,
        p.sp.unwrap_or(1),
        ZeroStage::from_u8(p.zero.unwrap_or(1)).ok_or("--zero must be 0..=3")?,
    ))
}

fn model_preset(name: Option<&str>) -> Result<ModelConfig, String> {
    match name {
        Some("gpt3-tiny") => Ok(ModelConfig::gpt3_tiny()),
        Some("gpt3-tiny-padded") => Ok(ModelConfig::gpt3_tiny_padded_vocab()),
        Some("llama-tiny") => Ok(ModelConfig::llama_tiny()),
        Some("bloom-tiny") => Ok(ModelConfig::bloom_tiny()),
        Some("moe-tiny") => Ok(ModelConfig::moe_tiny()),
        Some(other) => Err(format!("unknown model preset '{other}'")),
        None => Err("--model is required".into()),
    }
}

/// `ucp convert`: native distributed checkpoint → universal checkpoint.
pub fn convert(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let step = resolve_step(&dir, p.step)?;
    let opts = ConvertOptions {
        workers: p.workers.unwrap_or(4),
        spill_fragments: p.spill,
        verify_replicas: !p.no_verify,
        spec_override: None,
    };
    println!(
        "converting {} step {step} (workers={}, spill={}, verify={})",
        dir.display(),
        opts.workers,
        opts.spill_fragments,
        opts.verify_replicas
    );
    metrics_begin(p);
    trace_begin(p);
    let (manifest, stats) = convert_to_universal(&dir, step, &opts).map_err(|e| e.to_string())?;
    println!(
        "done: {} atoms, {} bytes written, extract {:.3}s, union {:.3}s",
        stats.atoms_written, stats.bytes_written, stats.extract_secs, stats.union_secs
    );
    println!(
        "universal checkpoint at {} (source was {})",
        layout::universal_dir(&dir, step).display(),
        manifest.source_label
    );
    trace_end(p)?;
    metrics_end(p, "convert")
}

/// `ucp load`: execute the universal load for one rank (or every rank of
/// the target strategy) against the on-disk atoms, optionally through a
/// simulated fixed-bandwidth device (`--mibps`). Ranks load through one
/// shared session, so the default ranged path fetches each atom byte
/// range from disk once and serves repeats from the session atom cache;
/// `--no-ranged-load` falls back to whole-file reads.
pub fn load(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let step = resolve_step(&dir, p.step)?;
    let target = target_parallel(p)?;
    let device = match p.mibps {
        Some(m) => Device::with_mibps(m),
        None => Device::unlimited(),
    };
    let opts = LoadOptions {
        workers: p.workers.unwrap_or(4),
        device,
        ranged: !p.no_ranged_load,
    };
    let ranged = opts.ranged;
    let ranks: Vec<usize> = match p.rank {
        Some(r) if r >= target.world_size() => {
            return Err(format!(
                "rank {r} out of range for world size {}",
                target.world_size()
            ));
        }
        Some(r) => vec![r],
        None => (0..target.world_size()).collect(),
    };
    metrics_begin(p);
    trace_begin(p);
    // The read-amplification summary comes from telemetry counters, so
    // measure even when no --metrics-out report was requested.
    let rec = ucp_telemetry::global();
    let private_metrics = p.metrics_out.is_none();
    if private_metrics {
        rec.reset();
        rec.set_enabled(true);
    }
    let session = LoadSession::open(&dir, step, opts).map_err(|e| e.to_string())?;
    let mut total_elems = 0usize;
    for &rank in &ranks {
        let state = session
            .load_rank(&target, rank, DEFAULT_ALIGNMENT)
            .map_err(|e| e.to_string())?;
        total_elems += state.fp32.len();
        println!(
            "rank {rank}: {} optimizer elements, {} model params",
            state.fp32.len(),
            state.model_params.len()
        );
    }
    println!(
        "loaded {} rank(s) of {} — {total_elems} flat elements total ({} reads)",
        ranks.len(),
        target.label(),
        if ranged { "ranged" } else { "full-file" }
    );
    let report = rec.report("load");
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    let read = counter("load/bytes_read");
    let needed = counter("load/bytes_needed");
    if needed > 0 {
        println!(
            "bytes read {read} / needed {needed} ({:.3}x amplification); atom cache: {} hit(s), {} miss(es), {} bytes served from cache",
            read as f64 / needed as f64,
            counter("load/cache_hits"),
            counter("load/cache_misses"),
            counter("load/cache_hit_bytes"),
        );
    }
    if private_metrics {
        rec.set_enabled(false);
    }
    trace_end(p)?;
    metrics_end(p, "load")
}

/// `ucp train`: run the training simulator with periodic native
/// checkpointing — the quickest way to produce a native tree for
/// `convert` / `load` to chew on.
pub fn train(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let target = target_parallel(p)?;
    let model = model_preset(p.model.as_deref())?;
    model.validate(target.tp)?;
    let config = TrainConfig::quick(model, target, p.seed.unwrap_or(42));
    let iters = p.iters.unwrap_or(4);
    let plan = TrainPlan {
        config,
        until_iteration: iters,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(p.save_every.unwrap_or(iters).max(1)),
        checkpoint_dir: Some(dir.clone()),
    };
    metrics_begin(p);
    trace_begin(p);
    let result = train_run(&plan).map_err(|e| format!("{e:?}"))?;
    for (iter, loss) in &result.losses {
        println!("iter {iter}: loss {loss:.6}");
    }
    println!(
        "trained {iters} iteration(s); checkpoint save {:.3}s; tree at {}",
        result.save_secs,
        dir.display()
    );
    trace_end(p)?;
    metrics_end(p, "train")
}

/// `ucp inspect`: summarize a checkpoint tree.
pub fn inspect(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let step = resolve_step(&dir, p.step)?;
    let step_dir = layout::step_dir(&dir, step);
    if step_dir.is_dir() {
        let (common, params) = load_model_states(&step_dir, 0, 0).map_err(|e| e.to_string())?;
        println!("native checkpoint {}", step_dir.display());
        println!("  iteration       {}", common.iteration);
        println!("  strategy        {}", common.parallel.label());
        println!(
            "  model           {} ({} layers, hidden {}, vocab {})",
            common.model.family,
            common.model.num_layers,
            common.model.hidden_size,
            common.model.vocab_size
        );
        println!("  total bytes     {}", layout::dir_size_bytes(&step_dir));
        println!("  (tp=0, pp=0) model shards: {}", params.len());
        if let Ok((_, shard)) = load_optim_states(&step_dir, 0, 0, 0) {
            let straddlers = shard
                .layout
                .slots
                .iter()
                .filter(|s| shard.layout.fragments_of(s).len() > 1)
                .count();
            println!(
                "  flat layout     {} slots, {} elements/chunk, alignment {}, {} straddling params",
                shard.layout.slots.len(),
                shard.layout.chunk,
                shard.layout.alignment,
                straddlers
            );
        }
    } else {
        println!("no native checkpoint at {}", step_dir.display());
    }

    let universal = layout::universal_dir(&dir, step);
    if universal.is_dir() {
        let manifest = UcpManifest::load(&universal).map_err(|e| e.to_string())?;
        println!("universal checkpoint {}", universal.display());
        println!("  source          {}", manifest.source_label);
        println!("  atoms           {}", manifest.params.len());
        println!("  total bytes     {}", layout::dir_size_bytes(&universal));
        let mut by_pattern: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for a in &manifest.params {
            *by_pattern.entry(a.pattern.paper_name()).or_default() += 1;
        }
        for (pattern, count) in by_pattern {
            println!("    {pattern:<20} {count}");
        }
    } else {
        println!(
            "no universal checkpoint at {} (run `ucp convert`)",
            universal.display()
        );
    }
    Ok(())
}

/// `ucp plan`: print the GenUcpMetadata plan for one target rank.
pub fn plan(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let step = resolve_step(&dir, p.step)?;
    let target = ParallelConfig::new(
        p.tp.ok_or("--tp is required")?,
        p.pp.ok_or("--pp is required")?,
        p.dp.ok_or("--dp is required")?,
        p.sp.unwrap_or(1),
        ZeroStage::from_u8(p.zero.unwrap_or(1)).ok_or("--zero must be 0..=3")?,
    );
    let rank = p.rank.ok_or("--rank is required")?;
    if rank >= target.world_size() {
        return Err(format!(
            "rank {rank} out of range for world size {}",
            target.world_size()
        ));
    }
    let universal = layout::universal_dir(&dir, step);
    let manifest = UcpManifest::load(&universal).map_err(|e| e.to_string())?;
    let plan =
        gen_ucp_metadata(&manifest, &target, rank, DEFAULT_ALIGNMENT).map_err(|e| e.to_string())?;
    let coord = plan.coord;
    println!(
        "load plan for rank {rank} of {} (dp={}, pp={}, sp={}, tp={})",
        target.label(),
        coord.dp,
        coord.pp,
        coord.sp,
        coord.tp
    );
    println!(
        "  flat chunk: {} elements at [{}, {})",
        plan.layout.chunk,
        plan.layout
            .rank_range(coord.dp * target.sp + coord.sp)
            .start,
        plan.layout.rank_range(coord.dp * target.sp + coord.sp).end,
    );
    let with_frags = plan
        .entries
        .iter()
        .filter(|e| !e.fragments.is_empty())
        .count();
    println!(
        "  {} parameters on this (tp, pp) slice; {} intersect this rank's chunk",
        plan.entries.len(),
        with_frags
    );
    for entry in plan.entries.iter().take(10) {
        let frag: usize = entry.fragments.iter().map(|f| f.len).sum();
        println!(
            "    {:<50} {} — {} elements into chunk",
            entry.name, entry.full_shape, frag
        );
    }
    if plan.entries.len() > 10 {
        println!("    ... ({} more)", plan.entries.len() - 10);
    }
    Ok(())
}

/// `ucp verify`: read every file of a checkpoint step (native and
/// universal trees) and verify all container checksums.
pub fn verify(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let step = resolve_step(&dir, p.step)?;
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for root in [
        layout::step_dir(&dir, step),
        layout::universal_dir(&dir, step),
    ] {
        if !root.is_dir() {
            continue;
        }
        let mut stack = vec![root];
        while let Some(d) = stack.pop() {
            let entries = std::fs::read_dir(&d).map_err(|e| e.to_string())?;
            for e in entries.flatten() {
                let path = e.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|x| x == "ucpt") {
                    checked += 1;
                    if let Err(err) = Container::read_file(&path) {
                        failures.push(format!("{}: {err}", path.display()));
                    }
                }
            }
        }
    }
    if checked == 0 {
        return Err(format!("no checkpoint files found for step {step}"));
    }
    if failures.is_empty() {
        println!("ok: {checked} files verified at step {step}");
        Ok(())
    } else {
        for f in &failures {
            eprintln!("CORRUPT {f}");
        }
        Err(format!(
            "{} of {checked} files failed verification",
            failures.len()
        ))
    }
}

/// `ucp fsck`: verify and repair a checkpoint tree. Exits non-zero when
/// any problem is found, even if it was repaired — the caller should know
/// the tree was not clean.
pub fn fsck(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let opts = ucp_core::FsckOptions {
        repair: !p.no_repair,
    };
    metrics_begin(p);
    let report = ucp_core::fsck(&dir, &opts).map_err(|e| e.to_string())?;
    if p.json {
        println!("{}", report.to_json());
    } else {
        println!(
            "checked {} native step(s), {} universal step(s); {} files verified",
            report.steps_checked.len(),
            report.universal_checked.len(),
            report.files_verified
        );
        if report.tmp_removed > 0 {
            println!("swept {} stale .tmp file(s)", report.tmp_removed);
        }
        for q in &report.quarantined {
            println!("quarantined {q}");
        }
        for m in &report.markers_repaired {
            println!("marker repaired: {m}");
        }
        for problem in &report.problems {
            eprintln!("PROBLEM {}: {}", problem.path, problem.detail);
        }
    }
    metrics_end(p, "fsck")?;
    if report.clean() {
        if !p.json {
            println!("clean");
        }
        Ok(())
    } else {
        Err(format!(
            "{} problem(s) found{}",
            report.problems.len(),
            if opts.repair {
                " (bad trees quarantined)"
            } else {
                " (run without --no-repair to quarantine)"
            }
        ))
    }
}

/// `ucp trace`: record a traced workload (or ingest a saved trace with
/// `--trace-in`) and analyze it.
///
/// Run mode executes the full hot path under one recording session — a
/// TP=2 × PP=2 train with overlapped background saves, the universal
/// conversion of the final step, and the universal load for every rank —
/// then publishes Chrome Trace Format JSON (one pid per rank; open it in
/// Perfetto or `chrome://tracing`).
pub fn trace(p: &Parsed) -> Result<(), String> {
    // Ingest mode: analyze a previously recorded trace.
    if let Some(path) = &p.trace_in {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let session = ucp_telemetry::TraceSession::from_chrome_json(&text)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if !p.json {
            println!(
                "trace {}: {} events, {} rank(s)",
                path.display(),
                session.event_count(),
                session.ranks().len()
            );
        }
        return print_trace_summary(&session, p.json);
    }

    // Run mode: record the built-in 2×2 workload.
    let dir = require_dir(p)?;
    let model = model_preset(p.model.as_deref().or(Some("gpt3-tiny")))?;
    let parallel = ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1);
    model.validate(parallel.tp)?;
    let iters = p.iters.unwrap_or(4);
    let plan = TrainPlan {
        config: TrainConfig::quick(model, parallel, p.seed.unwrap_or(42)),
        until_iteration: iters,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(p.save_every.unwrap_or(2).max(1)),
        checkpoint_dir: Some(dir.clone()),
    };
    let out = p
        .trace_out
        .clone()
        .unwrap_or_else(|| dir.join("trace.json"));
    let workers = p.workers.unwrap_or(2);

    let tracer = ucp_telemetry::trace::global();
    tracer.start();
    ucp_telemetry::trace::register_thread(ucp_telemetry::trace::DRIVER_PID, "driver");

    // 1. Train with overlapped background checkpointing.
    train_run_overlapped(&plan).map_err(|e| format!("{e:?}"))?;
    // 2. Convert the final native step to a universal checkpoint.
    let step = resolve_step(&dir, None)?;
    let opts = ConvertOptions {
        workers,
        spill_fragments: false,
        verify_replicas: false,
        spec_override: None,
    };
    convert_to_universal(&dir, step, &opts).map_err(|e| e.to_string())?;
    // 3. Universal load for every rank of the same strategy.
    let universal = layout::universal_dir(&dir, step);
    let manifest = UcpManifest::load(&universal).map_err(|e| e.to_string())?;
    for rank in 0..parallel.world_size() {
        let rank_plan = gen_ucp_metadata(&manifest, &parallel, rank, DEFAULT_ALIGNMENT)
            .map_err(|e| e.to_string())?;
        load_with_plan_device(&universal, &rank_plan, workers, &Device::unlimited())
            .map_err(|e| e.to_string())?;
    }

    tracer.set_enabled(false);
    let session = tracer.take_session();
    ucp_storage::commit::atomic_write(&out, session.to_chrome_json().as_bytes())
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "trace written to {} ({} events, {} rank(s))",
        out.display(),
        session.event_count(),
        session.ranks().len()
    );
    if p.summary || p.json {
        print_trace_summary(&session, p.json)?;
    }
    Ok(())
}

/// Print the busy/wait/straggler analysis of a trace session, as the
/// `ucp-trace-summary-v1` JSON (`json = true`) or a human-readable table.
fn print_trace_summary(session: &ucp_telemetry::TraceSession, json: bool) -> Result<(), String> {
    let summary = session.summary();
    if json {
        println!("{}", summary.to_json());
        return Ok(());
    }
    let ms = |ns: u64| ns as f64 / 1e6;
    let who = |pid: u64| {
        if pid >= ucp_telemetry::trace::DRIVER_PID {
            "driver".to_string()
        } else {
            format!("rank {pid}")
        }
    };
    println!("per-rank busy/wait:");
    for r in &summary.ranks {
        println!(
            "  {}: busy {:5.1}%  wait {:5.1}%  (wall {:.3} ms, {} collective(s), {} event(s))",
            who(r.pid),
            r.busy_pct(),
            r.wait_pct(),
            ms(r.wall_ns),
            r.collectives,
            r.events
        );
    }
    println!("per-collective wait vs transfer:");
    for op in &summary.ops {
        println!(
            "  {:<16} x{:<4} {:>10} B  wait {:.3} ms  transfer {:.3} ms",
            op.op,
            op.count,
            op.bytes,
            ms(op.total_wait_ns),
            ms(op.total_comm_ns)
        );
    }
    println!("straggler ranking (least collective wait first — the rank the others wait on):");
    for (i, (pid, wait_ns)) in summary.stragglers.iter().enumerate() {
        println!("  {}. rank {pid}: {:.3} ms total wait", i + 1, ms(*wait_ns));
    }
    println!("critical path (slowest top-level span per phase):");
    for seg in &summary.critical_path {
        println!(
            "  +{:9.3} ms  {:<12} [{}] on {} — {:.3} ms",
            ms(seg.start_ns),
            seg.name,
            seg.cat.as_str(),
            who(seg.pid),
            ms(seg.dur_ns)
        );
    }
    Ok(())
}

/// `ucp prune`: apply a retention policy.
pub fn prune(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let policy = retention::RetentionPolicy {
        keep_last: p.keep_last.ok_or("--keep-last is required")?.max(1),
        keep_every: p.keep_every,
    };
    let report = retention::prune(&dir, &policy).map_err(|e| e.to_string())?;
    println!(
        "pruned {} steps ({} bytes reclaimed); kept {:?}",
        report.removed.len(),
        report.bytes_reclaimed,
        report.kept
    );
    Ok(())
}

/// `ucp spec`: print the derived pattern spec for a model preset — the
/// JSON form of the UCP language, ready to be edited and extended.
pub fn spec(p: &Parsed) -> Result<(), String> {
    let model = match p.model.as_deref() {
        Some("gpt3-tiny") => ModelConfig::gpt3_tiny(),
        Some("gpt3-tiny-padded") => ModelConfig::gpt3_tiny_padded_vocab(),
        Some("llama-tiny") => ModelConfig::llama_tiny(),
        Some("bloom-tiny") => ModelConfig::bloom_tiny(),
        Some("moe-tiny") => ModelConfig::moe_tiny(),
        Some(other) => return Err(format!("unknown model preset '{other}'")),
        None => return Err("--model is required".into()),
    };
    let tp = p.tp.unwrap_or(2);
    model.validate(tp)?;
    let spec = UcpSpec::from_model(&model, tp, &[]);
    println!("{}", spec.to_json().map_err(|e| e.to_string())?);
    Ok(())
}

/// `ucp diff`: compare two universal checkpoint directories atom by atom.
/// `--dir` and `--other` point directly at `global_step*_universal`
/// directories. Exit is an error when any atom differs beyond the
/// tolerance (default: bitwise).
pub fn diff(p: &Parsed) -> Result<(), String> {
    let a_dir = require_dir(p)?;
    let b_dir = p.other.clone().ok_or("--other is required")?;
    let tol = p.tolerance.unwrap_or(0.0);
    let a = UcpManifest::load(&a_dir).map_err(|e| format!("{}: {e}", a_dir.display()))?;
    let b = UcpManifest::load(&b_dir).map_err(|e| format!("{}: {e}", b_dir.display()))?;

    let mut differing = 0usize;
    let mut compared = 0usize;
    for atom in &a.params {
        let Some(other) = b.atom(&atom.name) else {
            println!("only in A: {}", atom.name);
            differing += 1;
            continue;
        };
        if atom.shape != other.shape {
            println!(
                "shape mismatch {}: {} vs {}",
                atom.name, atom.shape, other.shape
            );
            differing += 1;
            continue;
        }
        for file in layout::AtomFile::ALL {
            let ta = Container::read_file(&layout::atom_path(&a_dir, &atom.name, file))
                .map_err(|e| e.to_string())?;
            let tb = Container::read_file(&layout::atom_path(&b_dir, &atom.name, file))
                .map_err(|e| e.to_string())?;
            let (ta, tb) = (
                ta.get(file.state_key()).ok_or("missing section")?,
                tb.get(file.state_key()).ok_or("missing section")?,
            );
            compared += 1;
            let delta = ta.max_abs_diff(tb).unwrap_or(f32::INFINITY);
            if f64::from(delta) > tol {
                println!(
                    "differs {} [{}]: max |Δ| = {delta:e}",
                    atom.name,
                    file.state_key()
                );
                differing += 1;
            }
        }
    }
    for atom in &b.params {
        if a.atom(&atom.name).is_none() {
            println!("only in B: {}", atom.name);
            differing += 1;
        }
    }
    if differing == 0 {
        println!(
            "identical: {compared} state tensors across {} atoms (tolerance {tol:e})",
            a.params.len()
        );
        Ok(())
    } else {
        Err(format!("{differing} differences found"))
    }
}
