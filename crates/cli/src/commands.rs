//! Command implementations.

use ucp_core::checkpoint::{load_model_states, load_optim_states};
use ucp_core::convert::{convert_to_universal, ConvertOptions};
use ucp_core::language::UcpSpec;
use ucp_core::load::{
    gen_ucp_metadata, load_with_plan_device, LoadOptions, LoadSession, DEFAULT_ALIGNMENT,
};
use ucp_core::manifest::UcpManifest;
use ucp_model::ModelConfig;
use ucp_parallel::{ParallelConfig, ZeroStage};
use ucp_storage::{layout, retention, Container, Device};
use ucp_trainer::{
    supervise, train_run, train_run_overlapped, train_run_overlapped_with, OverlappedOptions,
    ResumeMode, SupervisorOptions, TrainConfig, TrainPlan,
};

use serde_json::Value;

use crate::args::Parsed;
use crate::resolve_step;

fn require_dir(p: &Parsed) -> Result<std::path::PathBuf, String> {
    p.dir.clone().ok_or_else(|| "--dir is required".into())
}

/// When `--metrics-out` is set, wipe and enable the global recorder so the
/// command's hot paths are measured from a clean slate.
fn metrics_begin(p: &Parsed) {
    if p.metrics_out.is_some() {
        let rec = ucp_telemetry::global();
        rec.reset();
        rec.set_enabled(true);
    }
}

/// When `--metrics-out` is set, snapshot the recorder into a
/// `ucp-metrics-v1` JSON report at the requested path and disable it
/// again. The file is published through the staged-commit protocol
/// (parent directories created, write + rename atomic) so a crash or a
/// concurrent reader never observes torn JSON.
fn metrics_end(p: &Parsed, label: &str) -> Result<(), String> {
    let Some(path) = &p.metrics_out else {
        return Ok(());
    };
    let rec = ucp_telemetry::global();
    let report = rec.report(label);
    rec.set_enabled(false);
    ucp_storage::commit::atomic_write(path, report.to_json().as_bytes())
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("metrics report written to {}", path.display());
    Ok(())
}

/// When `--trace-out` is set, wipe the global tracer, enable it, and bind
/// the calling thread as the driver timeline, so the command records from
/// a clean slate.
fn trace_begin(p: &Parsed) {
    if p.trace_out.is_some() {
        ucp_telemetry::trace::global().start();
        ucp_telemetry::trace::register_thread(ucp_telemetry::trace::DRIVER_PID, "driver");
    }
}

/// When `--trace-out` is set, merge the per-thread buffers and publish
/// the Chrome Trace Format JSON atomically at the requested path.
/// Returns the merged session so callers can also analyze it.
fn trace_end(p: &Parsed) -> Result<Option<ucp_telemetry::TraceSession>, String> {
    let Some(path) = &p.trace_out else {
        return Ok(None);
    };
    let tracer = ucp_telemetry::trace::global();
    tracer.set_enabled(false);
    let session = tracer.take_session();
    ucp_storage::commit::atomic_write(path, session.to_chrome_json().as_bytes())
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!(
        "trace written to {} ({} events, {} rank(s))",
        path.display(),
        session.event_count(),
        session.ranks().len()
    );
    Ok(Some(session))
}

fn target_parallel(p: &Parsed) -> Result<ParallelConfig, String> {
    Ok(ParallelConfig::new(
        p.tp.ok_or("--tp is required")?,
        p.pp.ok_or("--pp is required")?,
        p.dp.ok_or("--dp is required")?,
        p.sp.unwrap_or(1),
        ZeroStage::from_u8(p.zero.unwrap_or(1)).ok_or("--zero must be 0..=3")?,
    ))
}

fn model_preset(name: Option<&str>) -> Result<ModelConfig, String> {
    match name {
        Some("gpt3-tiny") => Ok(ModelConfig::gpt3_tiny()),
        Some("gpt3-tiny-padded") => Ok(ModelConfig::gpt3_tiny_padded_vocab()),
        Some("llama-tiny") => Ok(ModelConfig::llama_tiny()),
        Some("bloom-tiny") => Ok(ModelConfig::bloom_tiny()),
        Some("moe-tiny") => Ok(ModelConfig::moe_tiny()),
        Some(other) => Err(format!("unknown model preset '{other}'")),
        None => Err("--model is required".into()),
    }
}

/// `ucp convert`: native distributed checkpoint → universal checkpoint.
pub fn convert(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let step = resolve_step(&dir, p.step)?;
    let opts = ConvertOptions {
        workers: p.workers.unwrap_or(4),
        spill_fragments: p.spill,
        verify_replicas: !p.no_verify,
        spec_override: None,
    };
    println!(
        "converting {} step {step} (workers={}, spill={}, verify={})",
        dir.display(),
        opts.workers,
        opts.spill_fragments,
        opts.verify_replicas
    );
    metrics_begin(p);
    trace_begin(p);
    let (manifest, stats) = convert_to_universal(&dir, step, &opts).map_err(|e| e.to_string())?;
    println!(
        "done: {} atoms, {} bytes written, extract {:.3}s, union {:.3}s",
        stats.atoms_written, stats.bytes_written, stats.extract_secs, stats.union_secs
    );
    println!(
        "universal checkpoint at {} (source was {})",
        layout::universal_dir(&dir, step).display(),
        manifest.source_label
    );
    trace_end(p)?;
    metrics_end(p, "convert")
}

/// `ucp load`: execute the universal load for one rank (or every rank of
/// the target strategy) against the on-disk atoms, optionally through a
/// simulated fixed-bandwidth device (`--mibps`). Ranks load through one
/// shared session, so the default ranged path fetches each atom byte
/// range from disk once and serves repeats from the session atom cache;
/// `--no-ranged-load` falls back to whole-file reads.
pub fn load(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let step = resolve_step(&dir, p.step)?;
    let target = target_parallel(p)?;
    let device = match p.mibps {
        Some(m) => Device::with_mibps(m),
        None => Device::unlimited(),
    };
    let opts = LoadOptions {
        workers: p.workers.unwrap_or(4),
        device,
        ranged: !p.no_ranged_load,
    };
    let ranged = opts.ranged;
    let ranks: Vec<usize> = match p.rank {
        Some(r) if r >= target.world_size() => {
            return Err(format!(
                "rank {r} out of range for world size {}",
                target.world_size()
            ));
        }
        Some(r) => vec![r],
        None => (0..target.world_size()).collect(),
    };
    metrics_begin(p);
    trace_begin(p);
    // The read-amplification summary comes from telemetry counters, so
    // measure even when no --metrics-out report was requested.
    let rec = ucp_telemetry::global();
    let private_metrics = p.metrics_out.is_none();
    if private_metrics {
        rec.reset();
        rec.set_enabled(true);
    }
    let session = LoadSession::open(&dir, step, opts).map_err(|e| e.to_string())?;
    let mut total_elems = 0usize;
    for &rank in &ranks {
        let state = session
            .load_rank(&target, rank, DEFAULT_ALIGNMENT)
            .map_err(|e| e.to_string())?;
        total_elems += state.fp32.len();
        println!(
            "rank {rank}: {} optimizer elements, {} model params",
            state.fp32.len(),
            state.model_params.len()
        );
    }
    println!(
        "loaded {} rank(s) of {} — {total_elems} flat elements total ({} reads)",
        ranks.len(),
        target.label(),
        if ranged { "ranged" } else { "full-file" }
    );
    let report = rec.report("load");
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    let read = counter("load/bytes_read");
    let needed = counter("load/bytes_needed");
    if needed > 0 {
        println!(
            "bytes read {read} / needed {needed} ({:.3}x amplification); atom cache: {} hit(s), {} miss(es), {} bytes served from cache",
            read as f64 / needed as f64,
            counter("load/cache_hits"),
            counter("load/cache_misses"),
            counter("load/cache_hit_bytes"),
        );
    }
    if private_metrics {
        rec.set_enabled(false);
    }
    trace_end(p)?;
    metrics_end(p, "load")
}

/// `ucp train`: run the training simulator with periodic native
/// checkpointing — the quickest way to produce a native tree for
/// `convert` / `load` to chew on.
pub fn train(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let target = target_parallel(p)?;
    let model = model_preset(p.model.as_deref())?;
    model.validate(target.tp)?;
    let config = TrainConfig::quick(model, target, p.seed.unwrap_or(42));
    let iters = p.iters.unwrap_or(4);
    // Reject rather than silently clamp: a user writing `--save-every 0`
    // either wants no checkpoints (omit the flag semantics differ) or made
    // a typo for per-iteration cadence — guessing either way is worse than
    // asking.
    if p.save_every == Some(0) {
        return Err(
            "--save-every must be >= 1 (use 1 for per-iteration checkpoints; to train without \
             checkpointing, drop --save-every and set --iters as needed)"
                .to_string(),
        );
    }
    // Same convention as --save-every: 0 is a contradiction (a hot tier
    // with no replicas), and a factor that reaches the world size would
    // wrap the placement ring back onto the source rank — reject both
    // rather than clamp.
    if p.hot_replicas == Some(0) {
        return Err(
            "--hot-replicas must be >= 1 (each rank pushes its shard to that many peers; to \
             train without the hot tier, drop --hot-replicas)"
                .to_string(),
        );
    }
    if let Some(k) = p.hot_replicas {
        if k >= target.world_size() {
            return Err(format!(
                "--hot-replicas ({k}) must be < the world size ({}): the placement ring needs \
                 that many distinct successor ranks per shard",
                target.world_size()
            ));
        }
        if p.overlapped {
            return Err(
                "--hot-replicas runs under the restart supervisor and cannot be combined with \
                 --overlapped yet; drop one of the two flags"
                    .to_string(),
            );
        }
    }
    let plan = TrainPlan {
        config,
        until_iteration: iters,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(p.save_every.unwrap_or(iters).max(1)),
        checkpoint_dir: Some(dir.clone()),
    };
    metrics_begin(p);
    trace_begin(p);
    let result = if let Some(k) = p.hot_replicas {
        // The hot tier is a supervisor feature: replication rides the save
        // boundary and recovery consults the replica banks, so the run goes
        // through `supervise` (faults only fire if UCP_RANK_FAULTS arms
        // them).
        let opts = SupervisorOptions {
            hot_replicas: Some(k),
            ..SupervisorOptions::default()
        };
        supervise(&plan, &opts)
            .map(|mut rep| rep.segments.pop().expect("supervise returns >=1 segment"))
    } else if p.overlapped {
        let opts = OverlappedOptions {
            universal_save: !p.no_universal_save,
        };
        train_run_overlapped_with(&plan, &opts)
    } else {
        train_run(&plan)
    }
    .map_err(|e| format!("{e:?}"))?;
    for (iter, loss) in &result.losses {
        println!("iter {iter}: loss {loss:.6}");
    }
    println!(
        "trained {iters} iteration(s); checkpoint save {:.3}s; tree at {}",
        result.save_secs,
        dir.display()
    );
    if p.overlapped && !p.no_universal_save {
        match layout::read_latest_universal(&dir) {
            Some(step) => println!(
                "universal checkpoint published at save time: step {step} (resume under any \
                 strategy without `ucp convert`)"
            ),
            None => println!("no universal checkpoint published (no save boundary reached)"),
        }
    }
    trace_end(p)?;
    metrics_end(p, "train")
}

/// `ucp inspect`: summarize a checkpoint tree.
pub fn inspect(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let step = resolve_step(&dir, p.step)?;
    let step_dir = layout::step_dir(&dir, step);
    if step_dir.is_dir() {
        let (common, params) = load_model_states(&step_dir, 0, 0).map_err(|e| e.to_string())?;
        println!("native checkpoint {}", step_dir.display());
        println!("  iteration       {}", common.iteration);
        println!("  strategy        {}", common.parallel.label());
        println!(
            "  model           {} ({} layers, hidden {}, vocab {})",
            common.model.family,
            common.model.num_layers,
            common.model.hidden_size,
            common.model.vocab_size
        );
        println!("  total bytes     {}", layout::dir_size_bytes(&step_dir));
        println!("  (tp=0, pp=0) model shards: {}", params.len());
        if let Ok((_, shard)) = load_optim_states(&step_dir, 0, 0, 0) {
            let straddlers = shard
                .layout
                .slots
                .iter()
                .filter(|s| shard.layout.fragments_of(s).len() > 1)
                .count();
            println!(
                "  flat layout     {} slots, {} elements/chunk, alignment {}, {} straddling params",
                shard.layout.slots.len(),
                shard.layout.chunk,
                shard.layout.alignment,
                straddlers
            );
        }
    } else {
        println!("no native checkpoint at {}", step_dir.display());
    }

    let universal = layout::universal_dir(&dir, step);
    if universal.is_dir() {
        let manifest = UcpManifest::load(&universal).map_err(|e| e.to_string())?;
        println!("universal checkpoint {}", universal.display());
        println!("  source          {}", manifest.source_label);
        println!("  atoms           {}", manifest.params.len());
        println!("  total bytes     {}", layout::dir_size_bytes(&universal));
        let mut by_pattern: std::collections::BTreeMap<&'static str, usize> = Default::default();
        for a in &manifest.params {
            *by_pattern.entry(a.pattern.paper_name()).or_default() += 1;
        }
        for (pattern, count) in by_pattern {
            println!("    {pattern:<20} {count}");
        }
    } else {
        println!(
            "no universal checkpoint at {} (run `ucp convert`)",
            universal.display()
        );
    }
    Ok(())
}

/// `ucp plan`: print the GenUcpMetadata plan for one target rank.
pub fn plan(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let step = resolve_step(&dir, p.step)?;
    let target = ParallelConfig::new(
        p.tp.ok_or("--tp is required")?,
        p.pp.ok_or("--pp is required")?,
        p.dp.ok_or("--dp is required")?,
        p.sp.unwrap_or(1),
        ZeroStage::from_u8(p.zero.unwrap_or(1)).ok_or("--zero must be 0..=3")?,
    );
    let rank = p.rank.ok_or("--rank is required")?;
    if rank >= target.world_size() {
        return Err(format!(
            "rank {rank} out of range for world size {}",
            target.world_size()
        ));
    }
    let universal = layout::universal_dir(&dir, step);
    let manifest = UcpManifest::load(&universal).map_err(|e| e.to_string())?;
    let plan =
        gen_ucp_metadata(&manifest, &target, rank, DEFAULT_ALIGNMENT).map_err(|e| e.to_string())?;
    let coord = plan.coord;
    println!(
        "load plan for rank {rank} of {} (dp={}, pp={}, sp={}, tp={})",
        target.label(),
        coord.dp,
        coord.pp,
        coord.sp,
        coord.tp
    );
    println!(
        "  flat chunk: {} elements at [{}, {})",
        plan.layout.chunk,
        plan.layout
            .rank_range(coord.dp * target.sp + coord.sp)
            .start,
        plan.layout.rank_range(coord.dp * target.sp + coord.sp).end,
    );
    let with_frags = plan
        .entries
        .iter()
        .filter(|e| !e.fragments.is_empty())
        .count();
    println!(
        "  {} parameters on this (tp, pp) slice; {} intersect this rank's chunk",
        plan.entries.len(),
        with_frags
    );
    for entry in plan.entries.iter().take(10) {
        let frag: usize = entry.fragments.iter().map(|f| f.len).sum();
        println!(
            "    {:<50} {} — {} elements into chunk",
            entry.name, entry.full_shape, frag
        );
    }
    if plan.entries.len() > 10 {
        println!("    ... ({} more)", plan.entries.len() - 10);
    }
    Ok(())
}

/// `ucp verify`: read every file of a checkpoint step (native and
/// universal trees) and verify all container checksums.
pub fn verify(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let step = resolve_step(&dir, p.step)?;
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for root in [
        layout::step_dir(&dir, step),
        layout::universal_dir(&dir, step),
    ] {
        if !root.is_dir() {
            continue;
        }
        let mut stack = vec![root];
        while let Some(d) = stack.pop() {
            let entries = std::fs::read_dir(&d).map_err(|e| e.to_string())?;
            for e in entries.flatten() {
                let path = e.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|x| x == "ucpt") {
                    checked += 1;
                    if let Err(err) = Container::read_file(&path) {
                        failures.push(format!("{}: {err}", path.display()));
                    }
                }
            }
        }
    }
    if checked == 0 {
        return Err(format!("no checkpoint files found for step {step}"));
    }
    if failures.is_empty() {
        println!("ok: {checked} files verified at step {step}");
        Ok(())
    } else {
        for f in &failures {
            eprintln!("CORRUPT {f}");
        }
        Err(format!(
            "{} of {checked} files failed verification",
            failures.len()
        ))
    }
}

/// `ucp fsck`: verify and repair a checkpoint tree. Exits non-zero when
/// any problem is found, even if it was repaired — the caller should know
/// the tree was not clean.
pub fn fsck(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let opts = ucp_core::FsckOptions {
        repair: !p.no_repair,
    };
    metrics_begin(p);
    trace_begin(p);
    let report = {
        let _sp = ucp_telemetry::trace::span(ucp_telemetry::TraceCat::Checkpoint, "fsck");
        ucp_core::fsck(&dir, &opts).map_err(|e| e.to_string())?
    };
    if p.json {
        println!("{}", report.to_json());
    } else {
        println!(
            "checked {} native step(s), {} universal step(s); {} files verified",
            report.steps_checked.len(),
            report.universal_checked.len(),
            report.files_verified
        );
        if report.tmp_removed > 0 {
            println!("swept {} stale .tmp file(s)", report.tmp_removed);
        }
        for q in &report.quarantined {
            println!("quarantined {q}");
        }
        for m in &report.markers_repaired {
            println!("marker repaired: {m}");
        }
        for problem in &report.problems {
            eprintln!("PROBLEM {}: {}", problem.path, problem.detail);
        }
    }
    metrics_end(p, "fsck")?;
    trace_end(p)?;
    if report.clean() {
        if !p.json {
            println!("clean");
        }
        Ok(())
    } else {
        Err(format!(
            "{} problem(s) found{}",
            report.problems.len(),
            if opts.repair {
                " (bad trees quarantined)"
            } else {
                " (run without --no-repair to quarantine)"
            }
        ))
    }
}

/// `ucp trace`: record a traced workload (or ingest a saved trace with
/// `--trace-in`) and analyze it.
///
/// Run mode executes the full hot path under one recording session — a
/// TP=2 × PP=2 train with overlapped background saves, the universal
/// conversion of the final step, and the universal load for every rank —
/// then publishes Chrome Trace Format JSON (one pid per rank; open it in
/// Perfetto or `chrome://tracing`).
pub fn trace(p: &Parsed) -> Result<(), String> {
    // Ingest mode: analyze a previously recorded trace.
    if let Some(path) = &p.trace_in {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let session = ucp_telemetry::TraceSession::from_chrome_json(&text)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if !p.json {
            println!(
                "trace {}: {} events, {} rank(s)",
                path.display(),
                session.event_count(),
                session.ranks().len()
            );
        }
        return print_trace_summary(&session, p.json);
    }

    // Run mode: record the built-in 2×2 workload.
    let dir = require_dir(p)?;
    let model = model_preset(p.model.as_deref().or(Some("gpt3-tiny")))?;
    let parallel = ParallelConfig::new(2, 2, 1, 1, ZeroStage::Zero1);
    model.validate(parallel.tp)?;
    let iters = p.iters.unwrap_or(4);
    let plan = TrainPlan {
        config: TrainConfig::quick(model, parallel, p.seed.unwrap_or(42)),
        until_iteration: iters,
        resume: ResumeMode::Fresh,
        checkpoint_every: Some(p.save_every.unwrap_or(2).max(1)),
        checkpoint_dir: Some(dir.clone()),
    };
    let out = p
        .trace_out
        .clone()
        .unwrap_or_else(|| dir.join("trace.json"));
    let workers = p.workers.unwrap_or(2);

    let tracer = ucp_telemetry::trace::global();
    tracer.start();
    ucp_telemetry::trace::register_thread(ucp_telemetry::trace::DRIVER_PID, "driver");

    // 1. Train with overlapped background checkpointing.
    train_run_overlapped(&plan).map_err(|e| format!("{e:?}"))?;
    // 2. Convert the final native step to a universal checkpoint.
    let step = resolve_step(&dir, None)?;
    let opts = ConvertOptions {
        workers,
        spill_fragments: false,
        verify_replicas: false,
        spec_override: None,
    };
    convert_to_universal(&dir, step, &opts).map_err(|e| e.to_string())?;
    // 3. Universal load for every rank of the same strategy.
    let universal = layout::universal_dir(&dir, step);
    let manifest = UcpManifest::load(&universal).map_err(|e| e.to_string())?;
    for rank in 0..parallel.world_size() {
        let rank_plan = gen_ucp_metadata(&manifest, &parallel, rank, DEFAULT_ALIGNMENT)
            .map_err(|e| e.to_string())?;
        load_with_plan_device(&universal, &rank_plan, workers, &Device::unlimited())
            .map_err(|e| e.to_string())?;
    }

    tracer.set_enabled(false);
    let session = tracer.take_session();
    ucp_storage::commit::atomic_write(&out, session.to_chrome_json().as_bytes())
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "trace written to {} ({} events, {} rank(s))",
        out.display(),
        session.event_count(),
        session.ranks().len()
    );
    if p.summary || p.json {
        print_trace_summary(&session, p.json)?;
    }
    Ok(())
}

/// Print the busy/wait/straggler analysis of a trace session, as the
/// `ucp-trace-summary-v1` JSON (`json = true`) or a human-readable table.
fn print_trace_summary(session: &ucp_telemetry::TraceSession, json: bool) -> Result<(), String> {
    let summary = session.summary();
    if json {
        println!("{}", summary.to_json());
        return Ok(());
    }
    let ms = |ns: u64| ns as f64 / 1e6;
    let who = |pid: u64| {
        if pid >= ucp_telemetry::trace::DRIVER_PID {
            "driver".to_string()
        } else {
            format!("rank {pid}")
        }
    };
    println!("per-rank busy/wait:");
    for r in &summary.ranks {
        println!(
            "  {}: busy {:5.1}%  wait {:5.1}%  (wall {:.3} ms, {} collective(s), {} event(s))",
            who(r.pid),
            r.busy_pct(),
            r.wait_pct(),
            ms(r.wall_ns),
            r.collectives,
            r.events
        );
    }
    println!("per-collective wait vs transfer:");
    for op in &summary.ops {
        println!(
            "  {:<16} x{:<4} {:>10} B  wait {:.3} ms  transfer {:.3} ms",
            op.op,
            op.count,
            op.bytes,
            ms(op.total_wait_ns),
            ms(op.total_comm_ns)
        );
    }
    println!("straggler ranking (least collective wait first — the rank the others wait on):");
    for (i, (pid, wait_ns)) in summary.stragglers.iter().enumerate() {
        println!("  {}. rank {pid}: {:.3} ms total wait", i + 1, ms(*wait_ns));
    }
    println!("critical path (slowest top-level span per phase):");
    for seg in &summary.critical_path {
        println!(
            "  +{:9.3} ms  {:<12} [{}] on {} — {:.3} ms",
            ms(seg.start_ns),
            seg.name,
            seg.cat.as_str(),
            who(seg.pid),
            ms(seg.dur_ns)
        );
    }
    Ok(())
}

/// `ucp prune`: apply a retention policy.
pub fn prune(p: &Parsed) -> Result<(), String> {
    let dir = require_dir(p)?;
    let policy = retention::RetentionPolicy {
        keep_last: p.keep_last.ok_or("--keep-last is required")?.max(1),
        keep_every: p.keep_every,
    };
    let report = retention::prune(&dir, &policy).map_err(|e| e.to_string())?;
    println!(
        "pruned {} steps ({} bytes reclaimed); kept {:?}",
        report.removed.len(),
        report.bytes_reclaimed,
        report.kept
    );
    Ok(())
}

/// `ucp spec`: print the derived pattern spec for a model preset — the
/// JSON form of the UCP language, ready to be edited and extended.
pub fn spec(p: &Parsed) -> Result<(), String> {
    let model = match p.model.as_deref() {
        Some("gpt3-tiny") => ModelConfig::gpt3_tiny(),
        Some("gpt3-tiny-padded") => ModelConfig::gpt3_tiny_padded_vocab(),
        Some("llama-tiny") => ModelConfig::llama_tiny(),
        Some("bloom-tiny") => ModelConfig::bloom_tiny(),
        Some("moe-tiny") => ModelConfig::moe_tiny(),
        Some(other) => return Err(format!("unknown model preset '{other}'")),
        None => return Err("--model is required".into()),
    };
    let tp = p.tp.unwrap_or(2);
    model.validate(tp)?;
    let spec = UcpSpec::from_model(&model, tp, &[]);
    println!("{}", spec.to_json().map_err(|e| e.to_string())?);
    Ok(())
}

/// `ucp diff`: compare two universal checkpoint directories atom by atom.
/// `--dir` and `--other` point directly at `global_step*_universal`
/// directories. Exit is an error when any atom differs beyond the
/// tolerance (default: bitwise).
pub fn diff(p: &Parsed) -> Result<(), String> {
    let a_dir = require_dir(p)?;
    let b_dir = p.other.clone().ok_or("--other is required")?;
    let tol = p.tolerance.unwrap_or(0.0);
    let a = UcpManifest::load(&a_dir).map_err(|e| format!("{}: {e}", a_dir.display()))?;
    let b = UcpManifest::load(&b_dir).map_err(|e| format!("{}: {e}", b_dir.display()))?;

    let mut differing = 0usize;
    let mut compared = 0usize;
    for atom in &a.params {
        let Some(other) = b.atom(&atom.name) else {
            println!("only in A: {}", atom.name);
            differing += 1;
            continue;
        };
        if atom.shape != other.shape {
            println!(
                "shape mismatch {}: {} vs {}",
                atom.name, atom.shape, other.shape
            );
            differing += 1;
            continue;
        }
        for file in layout::AtomFile::ALL {
            let ta = Container::read_file(&layout::atom_path(&a_dir, &atom.name, file))
                .map_err(|e| e.to_string())?;
            let tb = Container::read_file(&layout::atom_path(&b_dir, &atom.name, file))
                .map_err(|e| e.to_string())?;
            let (ta, tb) = (
                ta.get(file.state_key()).ok_or("missing section")?,
                tb.get(file.state_key()).ok_or("missing section")?,
            );
            compared += 1;
            let delta = ta.max_abs_diff(tb).unwrap_or(f32::INFINITY);
            if f64::from(delta) > tol {
                println!(
                    "differs {} [{}]: max |Δ| = {delta:e}",
                    atom.name,
                    file.state_key()
                );
                differing += 1;
            }
        }
    }
    for atom in &b.params {
        if a.atom(&atom.name).is_none() {
            println!("only in B: {}", atom.name);
            differing += 1;
        }
    }
    if differing == 0 {
        println!(
            "identical: {compared} state tensors across {} atoms (tolerance {tol:e})",
            a.params.len()
        );
        Ok(())
    } else {
        Err(format!("{differing} differences found"))
    }
}

/// `ucp bench`: run the hot-path microbenchmark, with `--cadence` the
/// checkpoint-cadence sweep, or with `--check` compare a current report
/// against the committed baseline.
///
/// The run modes write `ucp-metrics-v1` reports (default `BENCH_ops.json`
/// / `BENCH_cadence.json`); the check mode derives the gated metrics (CRC
/// GB/s, section-range read GB/s, fig13 load wall time) from both
/// reports, prints a baseline-vs-current markdown table, and fails when
/// any metric regresses beyond the noise tolerance (default 25%).
pub fn bench(p: &Parsed) -> Result<(), String> {
    if p.cadence {
        let result = ucp_bench::cadence::run(p.fast);
        print!("{}", result.render());
        let out = p.out.clone().unwrap_or_else(|| "BENCH_cadence.json".into());
        ucp_storage::commit::atomic_write(&out, result.to_report().to_json().as_bytes())
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
        println!("cadence report written to {}", out.display());
        return Ok(());
    }
    if p.check {
        let baseline_path = p
            .baseline
            .clone()
            .unwrap_or_else(|| "results/BENCH_baseline.json".into());
        let current_path = p.current.clone().unwrap_or_else(|| "BENCH_ops.json".into());
        let read = |path: &std::path::Path| -> Result<ucp_telemetry::Report, String> {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            ucp_telemetry::Report::from_json(&text)
                .map_err(|e| format!("parsing {}: {e}", path.display()))
        };
        let baseline = read(&baseline_path)?;
        let current = read(&current_path)?;
        let tolerance = p.tolerance.unwrap_or(ucp_bench::DEFAULT_TOLERANCE);
        let (rows, ok) = ucp_bench::check(&baseline, &current, tolerance);
        print!("{}", ucp_bench::render_markdown(&rows));
        if ok {
            println!("perf gate: PASS (tolerance {}%)", tolerance * 100.0);
            Ok(())
        } else {
            Err(format!(
                "perf gate: FAIL — metric regressed beyond {}% tolerance \
                 (baseline {})",
                tolerance * 100.0,
                baseline_path.display()
            ))
        }
    } else {
        let report = ucp_bench::micro::run(p.fast);
        let out = p.out.clone().unwrap_or_else(|| "BENCH_ops.json".into());
        ucp_storage::commit::atomic_write(&out, report.to_json().as_bytes())
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
        println!("microbench report written to {}", out.display());
        Ok(())
    }
}

/// `ucp chaos`: sweep a rank-kill schedule and verify elastic recovery.
///
/// Every cell of the (kill step × fault kind × degraded target) matrix
/// trains fresh under the source topology, kills the highest rank at the
/// scheduled step, and lets the supervisor resume from the latest
/// committed checkpoint under the cell's degraded topology. The cell
/// passes when the run completes, the resumed loss trajectory is
/// bitwise-equal to a fault-free run from the same checkpoint, and
/// `fsck` finds the tree clean.
pub fn chaos(p: &Parsed) -> Result<(), String> {
    use std::time::{Duration, Instant};
    use ucp_trainer::supervisor::{FaultKind, RankFault, SupervisorOptions};

    let dir = require_dir(p)?;
    let source = target_parallel(p)?;
    let model = model_preset(p.model.as_deref())?;
    model.validate(source.tp)?;
    if source.world_size() < 2 {
        return Err("chaos needs a source topology with at least 2 ranks".into());
    }
    let seed = p.seed.unwrap_or(42);
    let iters = p.iters.unwrap_or(6);
    let save_every = p.save_every.unwrap_or(2).max(1);
    let deadline = Duration::from_millis(p.deadline_ms.unwrap_or(2000));

    let kill_steps: Vec<u64> = match p.kill_steps.as_deref() {
        None => vec![3],
        Some(spec) => spec
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().map_err(|_| format!("bad kill step '{s}'")))
            .collect::<Result<_, _>>()?,
    };
    let kinds: Vec<(String, FaultKind)> = p
        .kinds
        .as_deref()
        .unwrap_or("panic,hang")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| match s {
            "panic" => Ok((s.to_string(), FaultKind::Panic)),
            "hang" => Ok((s.to_string(), FaultKind::Hang)),
            _ => match s.strip_prefix("slow:") {
                Some(ms) => ms
                    .parse()
                    .map(|ms| (s.to_string(), FaultKind::SlowMs(ms)))
                    .map_err(|_| format!("bad slow ms in '{s}'")),
                None => Err(format!("unknown fault kind '{s}'")),
            },
        })
        .collect::<Result<_, _>>()?;
    let targets: Vec<ParallelConfig> = match p.targets.as_deref() {
        None => vec![source],
        Some(spec) => spec
            .split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(parse_topology)
            .collect::<Result<_, _>>()?,
    };
    for t in &targets {
        model.validate(t.tp)?;
    }
    if p.hot_replicas == Some(0) {
        return Err(
            "--hot-replicas must be >= 1 (drop the flag for disk-only recovery cells)".to_string(),
        );
    }
    if let Some(k) = p.hot_replicas {
        let min_world = std::iter::once(&source)
            .chain(targets.iter())
            .map(|t| t.world_size())
            .min()
            .unwrap_or(1);
        if k >= min_world {
            return Err(format!(
                "--hot-replicas ({k}) must be < the smallest topology in the sweep ({min_world})"
            ));
        }
    }
    let faults_per_cell = match p.faults_per_cell {
        Some(0) => {
            return Err(
                "--faults-per-cell must be >= 1 (a cell with no faults proves nothing)".to_string(),
            )
        }
        Some(n) if n >= source.world_size() => {
            return Err(format!(
                "--faults-per-cell ({n}) must leave at least one survivor of the {} source \
                 ranks",
                source.world_size()
            ))
        }
        Some(n) => n,
        None => 1,
    };

    metrics_begin(p);
    trace_begin(p);
    println!(
        "chaos sweep: source {}, {} kill step(s) x {} kind(s) x {} target(s), deadline {:?}{}",
        source.label(),
        kill_steps.len(),
        kinds.len(),
        targets.len(),
        deadline,
        match p.hot_replicas {
            Some(k) => format!(", hot tier K={k}, {faults_per_cell} fault(s)/cell"),
            None => String::new(),
        }
    );

    let mut cells = Vec::new();
    let mut failed = 0usize;
    for &step in &kill_steps {
        for (kind_label, kind) in &kinds {
            for (ti, &target) in targets.iter().enumerate() {
                let cell_dir = dir.join(format!("cell_s{step}_{kind_label}_t{ti}"));
                let _ = std::fs::remove_dir_all(&cell_dir);
                // Kill the top `faults_per_cell` ranks simultaneously; the
                // supervisor models them as one lost set, so a multi-fault
                // cell still costs exactly one recovery cycle.
                let kill_rank = source.world_size() - 1;
                let faults: Vec<RankFault> = (0..faults_per_cell)
                    .map(|i| RankFault {
                        rank: kill_rank - i,
                        step,
                        kind: *kind,
                    })
                    .collect();
                // The tier the recovery is REQUIRED to use: RAM survives a
                // lost set of up to K consecutive ranks (and needs a save
                // boundary before the kill); anything beyond that must fall
                // back to disk.
                let expect_source = p.hot_replicas.map(|k| {
                    if faults_per_cell <= k && step >= save_every {
                        "peer"
                    } else {
                        "disk"
                    }
                });
                let plan = ucp_trainer::TrainPlan {
                    config: TrainConfig::quick(model.clone(), source, seed),
                    until_iteration: iters,
                    resume: ResumeMode::Fresh,
                    checkpoint_every: Some(save_every),
                    checkpoint_dir: Some(cell_dir.clone()),
                };
                let opts = SupervisorOptions {
                    deadline,
                    max_restarts: 2,
                    ladder: vec![target],
                    faults,
                    hot_replicas: p.hot_replicas,
                };
                let t0 = Instant::now();
                let cell = match ucp_trainer::supervise(&plan, &opts) {
                    Err(e) => {
                        failed += 1;
                        ChaosCell {
                            kill_step: step,
                            kind: kind_label.clone(),
                            target: target.label(),
                            survived: false,
                            error: Some(e.to_string()),
                            faults: faults_per_cell,
                            ..ChaosCell::default()
                        }
                    }
                    Ok(report) => {
                        let restarts = report.restarts.len();
                        let resume_step = report.restarts.first().and_then(|r| r.resume_step);
                        let recovery_source = report.restarts.first().map(|r| r.source.clone());
                        // A slow rank under the deadline must NOT restart;
                        // a kill must recover in exactly one cycle.
                        let expect_restarts = usize::from(!matches!(kind, FaultKind::SlowMs(_)));
                        // Fault-free reference from the same checkpoint
                        // under the topology the final segment ran with. A
                        // peer-memory recovery never touched the disk copy,
                        // so the universal tree may not exist yet — convert
                        // it now; the comparison below then directly proves
                        // the RAM-assembled checkpoint matches the disk one
                        // bit for bit.
                        if let Some(s) = resume_step {
                            let universal = layout::universal_dir(&cell_dir, s);
                            if !layout::manifest_path(&universal).exists() {
                                ucp_trainer::convert_checkpoint(
                                    &cell_dir,
                                    s,
                                    &ConvertOptions::default(),
                                )
                                .map_err(|e| format!("reference convert: {e}"))?;
                            }
                        }
                        let final_parallel = if restarts > 0 { target } else { source };
                        let reference = ucp_trainer::train_run(&ucp_trainer::TrainPlan {
                            config: TrainConfig::quick(model.clone(), final_parallel, seed),
                            until_iteration: iters,
                            resume: match resume_step {
                                Some(s) => ResumeMode::Universal {
                                    dir: cell_dir.clone(),
                                    step: s,
                                },
                                None => ResumeMode::Fresh,
                            },
                            checkpoint_every: None,
                            checkpoint_dir: None,
                        })
                        .map_err(|e| format!("reference run: {e}"))?;
                        let resumed = &report.final_segment().losses;
                        let bitwise_equal =
                            resumed.len() == reference.losses.len()
                                && resumed.iter().zip(&reference.losses).all(
                                    |((ia, la), (ib, lb))| ia == ib && la.to_bits() == lb.to_bits(),
                                );
                        let fsck_clean = ucp_core::fsck::fsck(
                            &cell_dir,
                            &ucp_core::fsck::FsckOptions { repair: false },
                        )
                        .map(|r| r.clean())
                        .unwrap_or(false);
                        // With the hot tier armed, recovering from the wrong
                        // tier (disk when RAM should have survived, or the
                        // other way round) fails the cell even if the math
                        // checks out.
                        let source_ok = match (expect_source, &recovery_source) {
                            (Some(want), Some(got)) if restarts > 0 => want == got,
                            _ => true,
                        };
                        let ok =
                            restarts == expect_restarts && bitwise_equal && fsck_clean && source_ok;
                        if !ok {
                            failed += 1;
                        }
                        ChaosCell {
                            kill_step: step,
                            kind: kind_label.clone(),
                            target: target.label(),
                            survived: true,
                            error: None,
                            restarts,
                            resume_step,
                            lost_steps: report.restarts.first().map(|r| r.lost_steps),
                            recovery_ms: report.restarts.first().map(|r| r.recovery_ms),
                            recovery_source,
                            faults: faults_per_cell,
                            bitwise_equal,
                            fsck_clean,
                            ok,
                        }
                    }
                };
                println!(
                    "cell step={step} kind={kind_label} target={}: {}",
                    target.label(),
                    if cell.ok {
                        format!(
                            "ok (resumed from {:?}, {:.1}s)",
                            cell.resume_step,
                            t0.elapsed().as_secs_f64()
                        )
                    } else {
                        format!("FAILED: {}", to_json_or_debug(&cell.to_value()))
                    }
                );
                cells.push(cell);
            }
        }
    }

    let report = Value::Object(vec![
        ("schema".into(), Value::String("ucp-chaos-v1".into())),
        (
            "model".into(),
            match &p.model {
                Some(m) => Value::String(m.clone()),
                None => Value::Null,
            },
        ),
        ("source".into(), Value::String(source.label())),
        ("iters".into(), Value::UInt(iters)),
        ("save_every".into(), Value::UInt(save_every)),
        (
            "deadline_ms".into(),
            Value::UInt(deadline.as_millis() as u64),
        ),
        (
            "hot_replicas".into(),
            match p.hot_replicas {
                Some(k) => Value::UInt(k as u64),
                None => Value::Null,
            },
        ),
        (
            "faults_per_cell".into(),
            Value::UInt(faults_per_cell as u64),
        ),
        (
            "cells".into(),
            Value::Array(cells.iter().map(ChaosCell::to_value).collect()),
        ),
        ("total".into(), Value::UInt(cells.len() as u64)),
        ("failed".into(), Value::UInt(failed as u64)),
    ]);
    if let Some(path) = &p.report_out {
        let text = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        ucp_storage::commit::atomic_write(path, text.as_bytes())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("chaos report written to {}", path.display());
    }
    trace_end(p)?;
    metrics_end(p, "chaos")?;
    if failed > 0 {
        return Err(format!("{failed}/{} chaos cell(s) failed", cells.len()));
    }
    println!(
        "all {} chaos cell(s) recovered and match bitwise",
        cells.len()
    );
    Ok(())
}

/// One cell of the chaos matrix, reported as `ucp-chaos-v1` JSON.
#[derive(Debug, Default)]
struct ChaosCell {
    kill_step: u64,
    kind: String,
    target: String,
    survived: bool,
    error: Option<String>,
    restarts: usize,
    resume_step: Option<u64>,
    lost_steps: Option<u64>,
    recovery_ms: Option<u64>,
    recovery_source: Option<String>,
    faults: usize,
    bitwise_equal: bool,
    fsck_clean: bool,
    ok: bool,
}

impl ChaosCell {
    fn to_value(&self) -> Value {
        let opt_u64 = |v: Option<u64>| match v {
            Some(n) => Value::UInt(n),
            None => Value::Null,
        };
        Value::Object(vec![
            ("kill_step".into(), Value::UInt(self.kill_step)),
            ("kind".into(), Value::String(self.kind.clone())),
            ("target".into(), Value::String(self.target.clone())),
            ("survived".into(), Value::Bool(self.survived)),
            (
                "error".into(),
                match &self.error {
                    Some(e) => Value::String(e.clone()),
                    None => Value::Null,
                },
            ),
            ("restarts".into(), Value::UInt(self.restarts as u64)),
            ("resume_step".into(), opt_u64(self.resume_step)),
            ("lost_steps".into(), opt_u64(self.lost_steps)),
            ("recovery_ms".into(), opt_u64(self.recovery_ms)),
            (
                "recovery_source".into(),
                match &self.recovery_source {
                    Some(s) => Value::String(s.clone()),
                    None => Value::Null,
                },
            ),
            ("faults".into(), Value::UInt(self.faults as u64)),
            ("bitwise_equal".into(), Value::Bool(self.bitwise_equal)),
            ("fsck_clean".into(), Value::Bool(self.fsck_clean)),
            ("ok".into(), Value::Bool(self.ok)),
        ])
    }
}

fn to_json_or_debug(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|e| format!("<unprintable: {e}>"))
}

/// Parse a `TPxPPxDP[xSP]` topology triple like `1x1x2`.
fn parse_topology(spec: &str) -> Result<ParallelConfig, String> {
    let parts: Vec<usize> = spec
        .split('x')
        .map(|n| {
            n.trim()
                .parse()
                .map_err(|_| format!("bad topology '{spec}'"))
        })
        .collect::<Result<_, _>>()?;
    match parts.as_slice() {
        [tp, pp, dp] => Ok(ParallelConfig::new(*tp, *pp, *dp, 1, ZeroStage::Zero1)),
        [tp, pp, dp, sp] => Ok(ParallelConfig::new(*tp, *pp, *dp, *sp, ZeroStage::Zero1)),
        _ => Err(format!("topology '{spec}' must be TPxPPxDP or TPxPPxDPxSP")),
    }
}
