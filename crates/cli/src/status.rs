//! `ucp status`: join the run journal, the checkpoint markers, and an
//! optional `ucp-metrics-v1` report into one health report, evaluated
//! against declarative SLO thresholds.
//!
//! The health indicators are the ones an operator pages on:
//!
//! - **checkpoint freshness** — how many steps the published universal
//!   checkpoint lags the newest native save (a reconfigured resume can
//!   only start from `latest_universal`, so lag here is work at risk);
//! - **recovery** — how many failures the journal records and the worst
//!   wall-clock cost of one recovery cycle;
//! - **save stall p99** — the tail of the per-rank training stall per
//!   checkpoint, from the fleet-merged `rank/save_block_us` histogram;
//! - **read amplification** — bytes read vs. bytes needed on the
//!   universal load path;
//! - **journal & fsck hygiene** — malformed journal records and the last
//!   recorded fsck verdict.
//!
//! Each `--max-*` flag arms one threshold; unarmed thresholds are
//! reported but never fail the command. A threshold whose input data is
//! absent (e.g. `--max-read-amp` without `--metrics`) is reported as
//! `no data` rather than guessed at.

use std::path::Path;

use ucp_storage::{journal, layout};
use ucp_telemetry::{Json, Report};

use crate::args::Parsed;

/// One armed-and-breached SLO threshold.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The flag that armed the threshold (e.g. `max-stale-steps`).
    pub threshold: String,
    /// Human-readable `observed vs. limit` detail.
    pub detail: String,
}

/// The joined health report.
#[derive(Debug, Clone, Default)]
pub struct StatusReport {
    /// Newest native step per the `latest` marker (journal fallback).
    pub latest_native: Option<u64>,
    /// Newest universal step per `latest_universal` (journal fallback).
    pub latest_universal: Option<u64>,
    /// Steps the universal checkpoint lags the newest native save.
    pub stale_steps: u64,
    /// Complete records in the run journal.
    pub journal_records: usize,
    /// Journal ends mid-line (crash debris; healed on next append).
    pub journal_torn_tail: bool,
    /// Complete journal lines that do not parse (corruption).
    pub journal_malformed: usize,
    /// Recovery cycles the journal records.
    pub recoveries: u64,
    /// Watchdog fires the journal records.
    pub watchdog_fires: u64,
    /// Retention prunes the journal records.
    pub prunes: u64,
    /// Worst journal-recorded recovery wall time.
    pub max_recovery_ms: Option<u64>,
    /// Recoveries the hot tier served from surviving RAM replicas.
    pub peer_recoveries: u64,
    /// Hot-tier recoveries that had to fall back to disk (incomplete or
    /// stale RAM copy).
    pub disk_fallbacks: u64,
    /// Replication waves the journal records (one per checkpoint save
    /// with the hot tier armed).
    pub hot_replications: u64,
    /// Tier that served the most recent recovery (`peer` or `disk`).
    pub last_recovery_source: Option<String>,
    /// Problem count of the most recent journaled fsck pass.
    pub last_fsck_problems: Option<u64>,
    /// p99 of the fleet-merged per-rank save-stall histogram, in ms.
    pub save_stall_p99_ms: Option<f64>,
    /// load/bytes_read ÷ load/bytes_needed from the metrics report.
    pub read_amplification: Option<f64>,
    /// save/atoms_written — atoms rewritten by the incremental pipeline.
    pub atoms_written: Option<u64>,
    /// save/atoms_skipped — clean atoms republished as hard links.
    pub atoms_skipped: Option<u64>,
    /// save/mesh_reuse — save-exchange leases served by the persistent
    /// mesh without rewiring it.
    pub mesh_reuse: Option<u64>,
    /// p99 of save/snapshot_pool_wait_us — µs a checkpoint boundary spent
    /// waiting for a reusable snapshot buffer.
    pub snapshot_pool_wait_p99_us: Option<f64>,
    /// Breached thresholds (empty ⇒ healthy under the armed SLOs).
    pub violations: Vec<Violation>,
}

/// Gather the health indicators for the tree at `dir`, joining the
/// optional metrics report, and evaluate the thresholds armed in `p`.
pub fn gather(dir: &Path, metrics: Option<&Report>, p: &Parsed) -> Result<StatusReport, String> {
    let journal = journal::read(dir).map_err(|e| format!("reading journal: {e}"))?;
    let mut r = StatusReport {
        latest_native: layout::read_latest(dir).or_else(|| journal.last_step("native_persisted")),
        latest_universal: layout::read_latest_universal(dir)
            .or_else(|| journal.last_step("universal_published")),
        journal_records: journal.records.len(),
        journal_torn_tail: journal.torn_tail,
        journal_malformed: journal.malformed,
        recoveries: journal.of_kind("recovery_begin").count() as u64,
        watchdog_fires: journal.of_kind("watchdog").count() as u64,
        prunes: journal.of_kind("retention_prune").count() as u64,
        ..StatusReport::default()
    };
    r.stale_steps = r
        .latest_native
        .unwrap_or(0)
        .saturating_sub(r.latest_universal.unwrap_or(0));
    r.max_recovery_ms = journal
        .of_kind("recovery_end")
        .filter_map(|rec| match &rec.event {
            journal::JournalEvent::RecoveryEnd { recovery_ms, .. } => Some(*recovery_ms),
            _ => None,
        })
        .max();
    r.hot_replications = journal.of_kind("hot_replicated").count() as u64;
    r.disk_fallbacks = journal
        .of_kind("hot_recovery_end")
        .filter(|rec| {
            matches!(
                &rec.event,
                journal::JournalEvent::HotRecoveryEnd { fallback: true, .. }
            )
        })
        .count() as u64;
    let sources: Vec<&String> = journal
        .of_kind("recovery_end")
        .filter_map(|rec| match &rec.event {
            journal::JournalEvent::RecoveryEnd { source, .. } => Some(source),
            _ => None,
        })
        .collect();
    r.peer_recoveries = sources.iter().filter(|s| s.as_str() == "peer").count() as u64;
    r.last_recovery_source = sources.last().map(|s| s.to_string());
    r.last_fsck_problems = journal
        .of_kind("fsck")
        .filter_map(|rec| match &rec.event {
            journal::JournalEvent::Fsck { problems, .. } => Some(*problems),
            _ => None,
        })
        .last();
    if let Some(m) = metrics {
        r.save_stall_p99_ms = m
            .hist("fleet/rank/save_block_us")
            .or_else(|| m.hist("rank/save_block_us"))
            .filter(|h| h.count > 0)
            .map(|h| h.quantile(0.99) as f64 / 1000.0);
        if let (Some(read), Some(needed)) =
            (m.counter("load/bytes_read"), m.counter("load/bytes_needed"))
        {
            if needed > 0 {
                r.read_amplification = Some(read as f64 / needed as f64);
            }
        }
        r.atoms_written = m.counter("save/atoms_written");
        r.atoms_skipped = m.counter("save/atoms_skipped");
        r.mesh_reuse = m.counter("save/mesh_reuse");
        r.snapshot_pool_wait_p99_us = m
            .hist("save/snapshot_pool_wait_us")
            .filter(|h| h.count > 0)
            .map(|h| h.quantile(0.99) as f64);
    }

    if r.journal_malformed > 0 {
        r.violations.push(Violation {
            threshold: "journal-integrity".into(),
            detail: format!(
                "{} malformed journal record(s); run `ucp fsck`",
                r.journal_malformed
            ),
        });
    }
    if let Some(limit) = p.max_stale_steps {
        if r.stale_steps > limit {
            r.violations.push(Violation {
                threshold: "max-stale-steps".into(),
                detail: format!(
                    "universal checkpoint lags newest native save by {} step(s) (limit {limit})",
                    r.stale_steps
                ),
            });
        }
    }
    if let (Some(limit), Some(worst)) = (p.max_recovery_ms, r.max_recovery_ms) {
        if worst > limit {
            r.violations.push(Violation {
                threshold: "max-recovery-ms".into(),
                detail: format!("worst recovery took {worst} ms (limit {limit} ms)"),
            });
        }
    }
    if let (Some(limit), Some(p99)) = (p.max_save_stall_ms, r.save_stall_p99_ms) {
        if p99 > limit as f64 {
            r.violations.push(Violation {
                threshold: "max-save-stall-ms".into(),
                detail: format!("save-stall p99 is {p99:.3} ms (limit {limit} ms)"),
            });
        }
    }
    if let (Some(limit), Some(amp)) = (p.max_read_amp, r.read_amplification) {
        if amp > limit {
            r.violations.push(Violation {
                threshold: "max-read-amp".into(),
                detail: format!("load read amplification is {amp:.3}x (limit {limit}x)"),
            });
        }
    }
    Ok(r)
}

fn fmt_opt<T: std::fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "n/a".into(),
    }
}

impl StatusReport {
    /// Render the markdown health table plus the SLO verdict table.
    pub fn to_markdown(&self, dir: &Path, p: &Parsed) -> String {
        fn row(out: &mut String, k: &str, v: String) {
            out.push_str(&format!("| {k} | {v} |\n"));
        }
        let mut out = String::new();
        out.push_str(&format!("# ucp status: {}\n\n", dir.display()));
        out.push_str("| indicator | value |\n|---|---|\n");
        row(&mut out, "latest native step", fmt_opt(&self.latest_native));
        row(
            &mut out,
            "latest universal step",
            fmt_opt(&self.latest_universal),
        );
        row(
            &mut out,
            "checkpoint staleness (steps)",
            self.stale_steps.to_string(),
        );
        row(
            &mut out,
            "journal records",
            self.journal_records.to_string(),
        );
        row(
            &mut out,
            "journal integrity",
            match (self.journal_malformed, self.journal_torn_tail) {
                (0, false) => "clean".into(),
                (0, true) => "torn tail (crash debris; self-heals)".into(),
                (n, _) => format!("{n} malformed record(s)"),
            },
        );
        row(&mut out, "recoveries", self.recoveries.to_string());
        row(&mut out, "watchdog fires", self.watchdog_fires.to_string());
        row(&mut out, "retention prunes", self.prunes.to_string());
        row(
            &mut out,
            "worst recovery_ms",
            fmt_opt(&self.max_recovery_ms),
        );
        row(
            &mut out,
            "hot tier (peer / disk-fallback recoveries)",
            if self.hot_replications > 0 || self.peer_recoveries > 0 || self.disk_fallbacks > 0 {
                format!(
                    "{} / {} ({} replication wave(s))",
                    self.peer_recoveries, self.disk_fallbacks, self.hot_replications
                )
            } else {
                "n/a".into()
            },
        );
        row(
            &mut out,
            "last recovery source",
            fmt_opt(&self.last_recovery_source),
        );
        row(
            &mut out,
            "last fsck problems",
            fmt_opt(&self.last_fsck_problems.map(|n| {
                if n == 0 {
                    "0 (clean)".to_string()
                } else {
                    n.to_string()
                }
            })),
        );
        row(
            &mut out,
            "save-stall p99 (ms)",
            fmt_opt(&self.save_stall_p99_ms.map(|v| format!("{v:.3}"))),
        );
        row(
            &mut out,
            "read amplification",
            fmt_opt(&self.read_amplification.map(|v| format!("{v:.3}x"))),
        );
        row(
            &mut out,
            "atoms written / skipped",
            match (self.atoms_written, self.atoms_skipped) {
                (None, None) => "n/a".into(),
                (w, s) => {
                    let (w, s) = (w.unwrap_or(0), s.unwrap_or(0));
                    let total = w + s;
                    if total > 0 {
                        format!(
                            "{w} / {s} ({:.1}% skipped)",
                            100.0 * s as f64 / total as f64
                        )
                    } else {
                        format!("{w} / {s}")
                    }
                }
            },
        );
        row(&mut out, "mesh reuse", fmt_opt(&self.mesh_reuse));
        row(
            &mut out,
            "snapshot-pool wait p99 (us)",
            fmt_opt(&self.snapshot_pool_wait_p99_us.map(|v| format!("{v:.0}"))),
        );
        out.push('\n');

        let armed: Vec<(&str, Option<String>, bool)> = vec![
            (
                "max-stale-steps",
                p.max_stale_steps.map(|v| v.to_string()),
                true,
            ),
            (
                "max-recovery-ms",
                p.max_recovery_ms.map(|v| v.to_string()),
                self.max_recovery_ms.is_some() || self.recoveries == 0,
            ),
            (
                "max-save-stall-ms",
                p.max_save_stall_ms.map(|v| v.to_string()),
                self.save_stall_p99_ms.is_some(),
            ),
            (
                "max-read-amp",
                p.max_read_amp.map(|v| v.to_string()),
                self.read_amplification.is_some(),
            ),
        ];
        if armed.iter().any(|(_, limit, _)| limit.is_some()) {
            out.push_str("| threshold | limit | verdict |\n|---|---|---|\n");
            for (name, limit, has_data) in armed {
                let Some(limit) = limit else { continue };
                let verdict = match self.violations.iter().find(|v| v.threshold == name) {
                    Some(v) => format!("VIOLATED — {}", v.detail),
                    None if has_data => "ok".into(),
                    None => "no data".into(),
                };
                out.push_str(&format!("| {name} | {limit} | {verdict} |\n"));
            }
        }
        out
    }

    /// Machine-readable `ucp-status-v1` JSON.
    pub fn to_json(&self, dir: &Path) -> Json {
        fn opt_num(v: Option<u64>) -> Json {
            v.map(|n| Json::Num(n as f64)).unwrap_or(Json::Null)
        }
        Json::obj(vec![
            ("schema", Json::Str("ucp-status-v1".into())),
            ("dir", Json::Str(dir.display().to_string())),
            ("latest_native", opt_num(self.latest_native)),
            ("latest_universal", opt_num(self.latest_universal)),
            ("stale_steps", Json::Num(self.stale_steps as f64)),
            (
                "journal",
                Json::obj(vec![
                    ("records", Json::Num(self.journal_records as f64)),
                    ("torn_tail", Json::Bool(self.journal_torn_tail)),
                    ("malformed", Json::Num(self.journal_malformed as f64)),
                ]),
            ),
            ("recoveries", Json::Num(self.recoveries as f64)),
            ("watchdog_fires", Json::Num(self.watchdog_fires as f64)),
            ("retention_prunes", Json::Num(self.prunes as f64)),
            ("max_recovery_ms", opt_num(self.max_recovery_ms)),
            ("peer_recoveries", Json::Num(self.peer_recoveries as f64)),
            ("disk_fallbacks", Json::Num(self.disk_fallbacks as f64)),
            ("hot_replications", Json::Num(self.hot_replications as f64)),
            (
                "last_recovery_source",
                self.last_recovery_source
                    .clone()
                    .map(Json::Str)
                    .unwrap_or(Json::Null),
            ),
            ("last_fsck_problems", opt_num(self.last_fsck_problems)),
            (
                "save_stall_p99_ms",
                self.save_stall_p99_ms.map(Json::Num).unwrap_or(Json::Null),
            ),
            (
                "read_amplification",
                self.read_amplification.map(Json::Num).unwrap_or(Json::Null),
            ),
            ("atoms_written", opt_num(self.atoms_written)),
            ("atoms_skipped", opt_num(self.atoms_skipped)),
            ("mesh_reuse", opt_num(self.mesh_reuse)),
            (
                "snapshot_pool_wait_p99_us",
                self.snapshot_pool_wait_p99_us
                    .map(Json::Num)
                    .unwrap_or(Json::Null),
            ),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| {
                            Json::obj(vec![
                                ("threshold", Json::Str(v.threshold.clone())),
                                ("detail", Json::Str(v.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("healthy", Json::Bool(self.violations.is_empty())),
        ])
    }
}

/// `ucp status`: print the health report; exit non-zero (via `Err`)
/// naming every breached threshold.
pub fn status(p: &Parsed) -> Result<(), String> {
    let dir = p.dir.clone().ok_or("--dir is required")?;
    let metrics = match &p.metrics {
        None => None,
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            Some(Report::from_json(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?)
        }
    };
    let report = gather(&dir, metrics.as_ref(), p)?;
    if p.json {
        println!("{}", report.to_json(&dir).pretty());
    } else {
        print!("{}", report.to_markdown(&dir, p));
    }
    if report.violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "SLO violation: {}",
            report
                .violations
                .iter()
                .map(|v| format!("{} ({})", v.threshold, v.detail))
                .collect::<Vec<_>>()
                .join("; ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_storage::journal::JournalEvent;

    fn temp_base(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ucp_status_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stale_universal_marker_violates_the_freshness_slo() {
        let base = temp_base("stale");
        layout::write_latest(&base, 10).unwrap();
        layout::write_latest_universal(&base, 4).unwrap();
        let p = Parsed {
            dir: Some(base.clone()),
            max_stale_steps: Some(2),
            ..Parsed::default()
        };
        let r = gather(&base, None, &p).unwrap();
        assert_eq!(r.stale_steps, 6);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].threshold, "max-stale-steps");
        // The CLI entry point surfaces the violation as a non-zero exit,
        // naming the threshold.
        let err = status(&p).unwrap_err();
        assert!(err.contains("max-stale-steps"), "{err}");
        // Within budget → healthy, exit zero.
        let ok = Parsed {
            dir: Some(base.clone()),
            max_stale_steps: Some(6),
            ..Parsed::default()
        };
        assert!(status(&ok).is_ok());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn slow_recovery_in_the_journal_violates_the_recovery_slo() {
        let base = temp_base("recovery");
        journal::append(
            &base,
            &JournalEvent::RecoveryBegin {
                rank: 1,
                step: 5,
                cause: "injected".into(),
            },
        )
        .unwrap();
        journal::append(
            &base,
            &JournalEvent::RecoveryEnd {
                resume_step: Some(4),
                lost_steps: 1,
                recovery_ms: 9000,
                parallel: "tp1_pp1_dp1".into(),
                source: "disk".into(),
            },
        )
        .unwrap();
        let p = Parsed {
            dir: Some(base.clone()),
            max_recovery_ms: Some(2000),
            ..Parsed::default()
        };
        let r = gather(&base, None, &p).unwrap();
        assert_eq!(r.recoveries, 1);
        assert_eq!(r.max_recovery_ms, Some(9000));
        assert_eq!(r.last_recovery_source.as_deref(), Some("disk"));
        assert_eq!(r.violations[0].threshold, "max-recovery-ms");
        let err = status(&p).unwrap_err();
        assert!(err.contains("max-recovery-ms"), "{err}");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn hot_tier_journal_events_surface_in_the_report() {
        let base = temp_base("hot");
        journal::append(
            &base,
            &JournalEvent::HotReplicated {
                step: 2,
                ranks: 4,
                bytes: 1024,
            },
        )
        .unwrap();
        journal::append(&base, &JournalEvent::HotRecoveryBegin { step: 3 }).unwrap();
        journal::append(
            &base,
            &JournalEvent::HotRecoveryEnd {
                served_ranks: vec![0, 1, 2],
                fallback: false,
            },
        )
        .unwrap();
        journal::append(
            &base,
            &JournalEvent::RecoveryEnd {
                resume_step: Some(2),
                lost_steps: 1,
                recovery_ms: 40,
                parallel: "tp1_pp1_dp2".into(),
                source: "peer".into(),
            },
        )
        .unwrap();
        journal::append(&base, &JournalEvent::HotRecoveryBegin { step: 5 }).unwrap();
        journal::append(
            &base,
            &JournalEvent::HotRecoveryEnd {
                served_ranks: Vec::new(),
                fallback: true,
            },
        )
        .unwrap();
        journal::append(
            &base,
            &JournalEvent::RecoveryEnd {
                resume_step: Some(4),
                lost_steps: 1,
                recovery_ms: 120,
                parallel: "tp1_pp1_dp1".into(),
                source: "disk".into(),
            },
        )
        .unwrap();
        let p = Parsed {
            dir: Some(base.clone()),
            ..Parsed::default()
        };
        let r = gather(&base, None, &p).unwrap();
        assert_eq!(r.hot_replications, 1);
        assert_eq!(r.peer_recoveries, 1);
        assert_eq!(r.disk_fallbacks, 1);
        assert_eq!(r.last_recovery_source.as_deref(), Some("disk"));
        assert!(r.violations.is_empty());
        let md = r.to_markdown(&base, &p);
        assert!(md.contains("1 / 1 (1 replication wave(s))"), "{md}");
        let doc = r.to_json(&base);
        assert_eq!(doc.get("peer_recoveries").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("disk_fallbacks").unwrap().as_u64(), Some(1));
        assert_eq!(
            doc.get("last_recovery_source").unwrap().as_str(),
            Some("disk")
        );
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn metrics_join_feeds_stall_and_read_amp_slos() {
        let base = temp_base("metrics");
        let rec = ucp_telemetry::Recorder::new();
        rec.set_enabled(true);
        for us in [1000, 1200, 90_000] {
            rec.observe("fleet/rank/save_block_us", us);
        }
        rec.count("load/bytes_read", 300);
        rec.count("load/bytes_needed", 100);
        rec.count("save/atoms_written", 5);
        rec.count("save/atoms_skipped", 15);
        rec.count("save/mesh_reuse", 7);
        rec.observe("save/snapshot_pool_wait_us", 250);
        let metrics = rec.report("t");
        // Roundtrip through the ucp-metrics-v1 JSON the CLI would read.
        let metrics = Report::from_json(&metrics.to_json()).unwrap();
        let p = Parsed {
            dir: Some(base.clone()),
            max_save_stall_ms: Some(10),
            max_read_amp: Some(2.0),
            ..Parsed::default()
        };
        let r = gather(&base, Some(&metrics), &p).unwrap();
        assert!(r.save_stall_p99_ms.unwrap() > 10.0);
        assert!((r.read_amplification.unwrap() - 3.0).abs() < 1e-9);
        // The incremental-save counters ride the same report.
        assert_eq!(r.atoms_written, Some(5));
        assert_eq!(r.atoms_skipped, Some(15));
        assert_eq!(r.mesh_reuse, Some(7));
        assert!(r.snapshot_pool_wait_p99_us.unwrap() >= 250.0);
        let md = r.to_markdown(&base, &p);
        assert!(md.contains("5 / 15 (75.0% skipped)"), "{md}");
        let names: Vec<_> = r.violations.iter().map(|v| v.threshold.as_str()).collect();
        assert_eq!(names, vec!["max-save-stall-ms", "max-read-amp"]);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn unarmed_thresholds_and_missing_data_stay_healthy() {
        let base = temp_base("healthy");
        layout::write_latest(&base, 6).unwrap();
        journal::append(&base, &JournalEvent::NativePersisted { step: 6 }).unwrap();
        journal::append(&base, &JournalEvent::UniversalPublished { step: 6 }).unwrap();
        // No thresholds armed: stale-by-zero, no violations, and the
        // journal fallback supplies latest_universal (no marker file).
        let p = Parsed {
            dir: Some(base.clone()),
            ..Parsed::default()
        };
        let r = gather(&base, None, &p).unwrap();
        assert_eq!(r.latest_universal, Some(6));
        assert_eq!(r.stale_steps, 0);
        assert!(r.violations.is_empty());
        // Armed save-stall SLO without metrics data: reported, not failed.
        let p = Parsed {
            dir: Some(base.clone()),
            max_save_stall_ms: Some(1),
            ..Parsed::default()
        };
        let r = gather(&base, None, &p).unwrap();
        assert!(r.violations.is_empty());
        assert!(r.to_markdown(&base, &p).contains("no data"));
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn malformed_journal_is_always_a_violation() {
        let base = temp_base("malformed");
        std::fs::write(journal::journal_path(&base), "garbage line\n").unwrap();
        let p = Parsed {
            dir: Some(base.clone()),
            ..Parsed::default()
        };
        let r = gather(&base, None, &p).unwrap();
        assert_eq!(r.violations[0].threshold, "journal-integrity");
        assert!(status(&p).is_err());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn json_report_carries_the_verdict() {
        let base = temp_base("json");
        layout::write_latest(&base, 8).unwrap();
        let p = Parsed {
            dir: Some(base.clone()),
            max_stale_steps: Some(3),
            ..Parsed::default()
        };
        let r = gather(&base, None, &p).unwrap();
        let doc = r.to_json(&base);
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("ucp-status-v1"));
        assert_eq!(doc.get("stale_steps").unwrap().as_u64(), Some(8));
        assert_eq!(doc.get("healthy"), Some(&Json::Bool(false)));
        let violations = doc.get("violations").unwrap().as_arr().unwrap();
        assert_eq!(
            violations[0].get("threshold").unwrap().as_str(),
            Some("max-stale-steps")
        );
        // The pretty form reparses to the same document.
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
        let _ = std::fs::remove_dir_all(&base);
    }
}
