//! `ucp` — command-line tools for universal checkpoints.
//!
//! The Rust counterpart of DeepSpeed's `ds_to_universal.py`:
//!
//! ```text
//! ucp convert --dir <ckpt-base> [--step N] [--workers W] [--spill] [--no-verify]
//! ucp load    --dir <ckpt-base> --step N --tp T --pp P --dp D [--rank R] [--mibps M]
//! ucp train   --dir <ckpt-base> --model <preset> --tp T --pp P --dp D [--iters I]
//! ucp inspect --dir <ckpt-base> [--step N]
//! ucp plan    --dir <ckpt-base> --step N --tp T --pp P --dp D [--sp S] [--zero Z] --rank R
//! ucp chaos   --dir <work-dir> --model <preset> --tp T --pp P --dp D
//!             [--kill-steps 2,3,4] [--kinds panic,hang] [--targets 1x1x2;1x1x1]
//! ucp status  --dir <ckpt-base> [--metrics <report.json>] [--json]
//!             [--max-stale-steps N] [--max-recovery-ms MS]
//! ```
//!
//! `convert`, `load`, `train`, `fsck`, and `chaos` accept
//! `--metrics-out <path>` to dump a `ucp-metrics-v1` telemetry report of
//! the run; `status` joins such a report with the checkpoint tree's run
//! journal into an SLO-checked health report.

use std::process::ExitCode;

use ucp_cli::{args, commands};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", args::USAGE);
        return ExitCode::from(2);
    };
    let parsed = match args::parse(rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "convert" => commands::convert(&parsed),
        "load" => commands::load(&parsed),
        "train" => commands::train(&parsed),
        "inspect" => commands::inspect(&parsed),
        "plan" => commands::plan(&parsed),
        "verify" => commands::verify(&parsed),
        "fsck" => commands::fsck(&parsed),
        "prune" => commands::prune(&parsed),
        "spec" => commands::spec(&parsed),
        "diff" => commands::diff(&parsed),
        "trace" => commands::trace(&parsed),
        "chaos" => commands::chaos(&parsed),
        "bench" => commands::bench(&parsed),
        "status" => ucp_cli::status::status(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", args::USAGE);
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
