//! Bridges the cluster's communicators to the model crate's [`GroupOps`].

use ucp_collectives::{Comm, Group};
use ucp_model::GroupOps;
use ucp_tensor::Tensor;

/// A process group bound to a communicator, usable by layer math.
pub struct CommGroup<'a> {
    comm: &'a Comm,
    group: Group,
    rank_in_group: usize,
}

impl<'a> CommGroup<'a> {
    /// Bind `comm` to a member list (must contain the caller's rank).
    pub fn new(comm: &'a Comm, members: Vec<usize>) -> CommGroup<'a> {
        let group = Group::new(members).expect("valid group");
        let rank_in_group = group
            .index_of(comm.rank())
            .expect("caller must be a member");
        CommGroup {
            comm,
            group,
            rank_in_group,
        }
    }

    /// The underlying group.
    pub fn group(&self) -> &Group {
        &self.group
    }
}

impl GroupOps for CommGroup<'_> {
    fn size(&self) -> usize {
        self.group.size()
    }

    fn rank(&self) -> usize {
        self.rank_in_group
    }

    fn all_reduce_sum(&self, t: &Tensor) -> Tensor {
        if self.group.size() == 1 {
            return t.clone();
        }
        self.comm
            .all_reduce_sum(&self.group, t)
            .expect("all_reduce in layer math")
    }

    fn all_gather_cat(&self, t: &Tensor, dim: usize) -> Tensor {
        if self.group.size() == 1 {
            return t.clone();
        }
        let all = self
            .comm
            .all_gather_tensors(&self.group, t)
            .expect("all_gather in layer math");
        let refs: Vec<&Tensor> = all.iter().collect();
        Tensor::concat(&refs, dim).expect("uniform gather shapes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_collectives::Cluster;

    #[test]
    fn comm_group_collectives() {
        let out = Cluster::run(2, |comm| {
            let g = CommGroup::new(comm, vec![0, 1]);
            assert_eq!(g.size(), 2);
            assert_eq!(g.rank(), comm.rank());
            let t = Tensor::full([2], comm.rank() as f32 + 1.0);
            let sum = g.all_reduce_sum(&t);
            let cat = g.all_gather_cat(&t, 0);
            (sum, cat)
        });
        assert_eq!(out[0].0.as_slice(), &[3.0, 3.0]);
        assert_eq!(out[0].1.as_slice(), &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(out[1].1.as_slice(), &[1.0, 1.0, 2.0, 2.0]);
    }
}
