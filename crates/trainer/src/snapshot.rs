//! Overlapped checkpointing: snapshot-then-persist in the background.
//!
//! The related work the paper builds on (CheckFreq, Gemini) hides
//! checkpoint I/O behind training compute: the blocking cost drops to an
//! in-memory snapshot, and persistence runs on a background thread. UCP is
//! orthogonal to this optimization — the background writer emits the exact
//! same native distributed checkpoint — so the two compose: this module
//! provides the snapshot/writer machinery behind
//! [`crate::driver::train_run_overlapped`].

use std::path::{Path, PathBuf};
use std::thread::JoinHandle;

use ucp_core::checkpoint::{
    save_model_states, save_model_states_durable, save_optim_states, save_optim_states_durable,
    CommonState, OptimShard,
};
use ucp_model::ParamStore;
use ucp_storage::layout as disk;

use crate::TrainError;

/// An owned, immutable copy of everything one rank persists at a step.
#[derive(Debug, Clone)]
pub struct CheckpointSnapshot {
    /// Common training state.
    pub common: CommonState,
    /// (tp, pp) coordinate of the slice.
    pub tp: usize,
    /// Pipeline coordinate.
    pub pp: usize,
    /// Model shards to write (only the zi=0 replica carries them).
    pub model: Option<ParamStore>,
    /// This rank's optimizer chunk.
    pub shard: OptimShard,
    /// `fsync` the files before reporting the save complete — telemetry
    /// then splits serialization (`storage/write`) from durability
    /// (`storage/fsync`).
    pub durable: bool,
}

impl CheckpointSnapshot {
    /// The cluster rank that owns this snapshot (its writer thread is
    /// traced under this rank's pid).
    pub fn owner_rank(&self) -> usize {
        let p = &self.common.parallel;
        let zi = self.shard.dp;
        p.rank_of(ucp_parallel::RankCoord {
            dp: zi / p.sp,
            sp: zi % p.sp,
            tp: self.tp,
            pp: self.pp,
        })
    }

    /// Persist the snapshot under `base/global_step<iteration>`.
    pub fn persist(&self, base: &Path) -> Result<(), TrainError> {
        let _sp = ucp_telemetry::trace::span(ucp_telemetry::TraceCat::Checkpoint, "persist");
        let t = ucp_telemetry::enabled().then(std::time::Instant::now);
        let step_dir = disk::step_dir(base, self.common.iteration);
        if let Some(model) = &self.model {
            if self.durable {
                save_model_states_durable(&step_dir, &self.common, self.tp, self.pp, model)
            } else {
                save_model_states(&step_dir, &self.common, self.tp, self.pp, model)
            }
            .map_err(TrainError::Ucp)?;
        }
        if self.durable {
            save_optim_states_durable(&step_dir, &self.common, self.tp, self.pp, &self.shard)
        } else {
            save_optim_states(&step_dir, &self.common, self.tp, self.pp, &self.shard)
        }
        .map_err(TrainError::Ucp)?;
        if let Some(t) = t {
            ucp_telemetry::global().record_span("save/persist", t.elapsed());
            ucp_telemetry::count("save/snapshots", 1);
        }
        Ok(())
    }
}

/// Handle to an in-flight background persist.
pub struct PendingSave {
    /// The step being persisted.
    pub step: u64,
    handle: JoinHandle<Result<(), TrainError>>,
    /// Signalled by the writer the moment the native persist finishes —
    /// before any born-universal pipeline work — so the training thread
    /// can publish `latest` without waiting for atom assembly.
    persisted: std::sync::mpsc::Receiver<Result<(), String>>,
}

impl PendingSave {
    /// Spawn the background writer for a snapshot. The step is pinned
    /// against retention pruning before the thread starts and stays
    /// pinned until the writer finishes, so `prune` can never delete a
    /// directory that is still materializing.
    pub fn spawn(snapshot: CheckpointSnapshot, base: PathBuf) -> PendingSave {
        PendingSave::spawn_with(snapshot, base, None)
    }

    /// Like [`PendingSave::spawn`], but after the native persist succeeds
    /// the writer also runs its part of the born-universal save pipeline
    /// ([`crate::pipeline`]) — still on the same background thread, so
    /// atom assembly stays off the training critical path and its trace
    /// spans land on the owning rank's "saver" track.
    pub fn spawn_with(
        snapshot: CheckpointSnapshot,
        base: PathBuf,
        pipeline: Option<crate::pipeline::WriterTask>,
    ) -> PendingSave {
        let step = snapshot.common.iteration;
        let guard = ucp_storage::retention::begin_save(&base, step);
        let owner = snapshot.owner_rank();
        let (persisted_tx, persisted) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            // The writer appears as a second thread on the owning rank's
            // trace timeline, making the overlap visible (no-op when
            // tracing is disabled).
            ucp_telemetry::trace::register_rank(owner, "saver");
            // The retention pin must not outlive the writer even when it
            // panics: catch the unwind, release the pin deterministically,
            // and surface the panic as an error. (If the writer dies with
            // a pipeline task in hand, dropping the task's endpoint is
            // what tells peer assemblers to abort instead of hanging; a
            // panic before the persist signal drops `persisted_tx`, which
            // unblocks `wait_persisted` the same way.)
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                test_panic_injection();
                let persist_result = snapshot.persist(&base);
                let _ = persisted_tx.send(
                    persist_result
                        .as_ref()
                        .map(|_| ())
                        .map_err(|e| e.to_string()),
                );
                persist_result?;
                match pipeline {
                    Some(task) => crate::pipeline::run_writer(task, &snapshot, &base),
                    None => Ok(()),
                }
            }));
            drop(guard);
            match result {
                Ok(r) => r,
                Err(payload) => Err(TrainError::Config(format!(
                    "background checkpoint writer panicked: {}",
                    panic_message(payload.as_ref())
                ))),
            }
        });
        PendingSave {
            step,
            handle,
            persisted,
        }
    }

    /// Block until the writer's *native persist* is done (success or
    /// failure), leaving the writer running its pipeline work in the
    /// background. The caller may then publish the native `latest` marker
    /// — but must still [`PendingSave::wait`] later to collect the
    /// writer's final result.
    pub fn wait_persisted(&self) -> Result<(), TrainError> {
        match self.persisted.recv() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(msg)) => Err(TrainError::Config(msg)),
            // Sender dropped without a signal: the writer panicked before
            // finishing the persist. The detailed payload surfaces at
            // wait(); this call just reports the persist never completed.
            Err(_) => Err(TrainError::Config(
                "background checkpoint writer died before persisting".into(),
            )),
        }
    }

    /// Block until the writer finishes, surfacing its result.
    pub fn wait(self) -> Result<(), TrainError> {
        self.handle
            .join()
            .map_err(|_| TrainError::Config("background checkpoint writer panicked".into()))?
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Test-only kill switch: makes the next spawned writer panic before it
/// touches disk, so the panic-safety of the retention pin is testable.
#[cfg(test)]
static PANIC_NEXT_PERSIST: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

fn test_panic_injection() {
    #[cfg(test)]
    if PANIC_NEXT_PERSIST.swap(false, std::sync::atomic::Ordering::SeqCst) {
        panic!("injected writer panic");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_model::ModelConfig;
    use ucp_parallel::{FlatLayout, ParallelConfig, ZeroStage};
    use ucp_tensor::{Shape, Tensor};

    fn snapshot(iteration: u64) -> CheckpointSnapshot {
        let layout = FlatLayout::build(&[("p".to_string(), Shape::new([6]))], 2, 1);
        let mut model = ParamStore::new();
        model.insert("p", Tensor::full([6], 1.5));
        CheckpointSnapshot {
            common: CommonState {
                iteration,
                seed: 1,
                data_cursor: 0,
                adam_step: iteration,
                model: ModelConfig::gpt3_tiny(),
                parallel: ParallelConfig::new(1, 1, 1, 1, ZeroStage::Zero1),
                params_to_average: vec![],
            },
            tp: 0,
            pp: 0,
            model: Some(model),
            shard: OptimShard {
                dp: 0,
                layout: layout.clone(),
                fp32: vec![0.5; layout.chunk],
                exp_avg: vec![0.0; layout.chunk],
                exp_avg_sq: vec![0.0; layout.chunk],
            },
            durable: false,
        }
    }

    #[test]
    fn background_persist_writes_both_files() {
        let base = std::env::temp_dir().join("ucp_snapshot_test");
        std::fs::remove_dir_all(&base).ok();
        std::fs::create_dir_all(&base).unwrap();
        let pending = PendingSave::spawn(snapshot(7), base.clone());
        assert_eq!(pending.step, 7);
        pending.wait().unwrap();
        let step_dir = disk::step_dir(&base, 7);
        assert!(disk::model_states_path(&step_dir, 0, 0).is_file());
        assert!(disk::optim_states_path(&step_dir, 0, 0, 0).is_file());
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn durable_persist_writes_identical_files() {
        let base = std::env::temp_dir().join("ucp_snapshot_durable_test");
        std::fs::remove_dir_all(&base).ok();
        std::fs::create_dir_all(&base).unwrap();
        let mut snap = snapshot(3);
        snap.durable = true;
        snap.persist(&base).unwrap();
        let step_dir = disk::step_dir(&base, 3);
        let durable_bytes = std::fs::read(disk::optim_states_path(&step_dir, 0, 0, 0)).unwrap();
        let mut plain = snapshot(3);
        plain.common.iteration = 4;
        plain.persist(&base).unwrap();
        let plain_bytes =
            std::fs::read(disk::optim_states_path(&disk::step_dir(&base, 4), 0, 0, 0)).unwrap();
        // fsync changes durability, never content; only the header's
        // iteration differs between the two writes.
        assert_eq!(durable_bytes.len(), plain_bytes.len());
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn writer_error_surfaces_at_wait() {
        // An unwritable base propagates the I/O error to wait().
        let base = PathBuf::from("/proc/definitely/not/writable");
        let pending = PendingSave::spawn(snapshot(1), base);
        assert!(pending.wait().is_err());
    }

    #[test]
    fn writer_panic_releases_retention_pin() {
        use ucp_storage::retention::{prune, RetentionPolicy};
        let base = std::env::temp_dir().join("ucp_snapshot_panic_pin_test");
        std::fs::remove_dir_all(&base).ok();
        // Two committed steps on disk; the marker pins step 9.
        for s in [8u64, 9] {
            let dir = disk::step_dir(&base, s);
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("payload"), [0u8; 10]).unwrap();
        }
        disk::write_latest(&base, 9).unwrap();
        // The writer panics before touching disk. Its step stays pinned
        // only while the writer lives — the panic must release the pin,
        // not leak it for the rest of the run.
        PANIC_NEXT_PERSIST.store(true, std::sync::atomic::Ordering::SeqCst);
        let pending = PendingSave::spawn(snapshot(8), base.clone());
        let err = pending.wait().unwrap_err();
        assert!(
            err.to_string().contains("panicked: injected writer panic"),
            "panic payload should surface: {err}"
        );
        // If the pin leaked, step 8 would survive this prune.
        let report = prune(&base, &RetentionPolicy::last(1)).unwrap();
        assert_eq!(report.removed, vec![8], "panicked writer leaked its pin");
        std::fs::remove_dir_all(&base).ok();
    }
}
