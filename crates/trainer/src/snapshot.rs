//! Overlapped checkpointing: snapshot-then-persist in the background.
//!
//! The related work the paper builds on (CheckFreq, Gemini) hides
//! checkpoint I/O behind training compute: the blocking cost drops to an
//! in-memory snapshot, and persistence runs on a background thread. UCP is
//! orthogonal to this optimization — the background writer emits the exact
//! same native distributed checkpoint — so the two compose: this module
//! provides the snapshot/writer machinery behind
//! [`crate::driver::train_run_overlapped`].
//!
//! At per-iteration cadence the snapshot clone itself becomes the fixed
//! cost, so snapshots are drawn from a bounded [`SnapshotPool`]: a small
//! set of reusable buffers recycled when a background writer finishes.
//! Filling a recycled buffer is a `clone_from` (a memcpy into existing
//! capacity, no allocation), and when every buffer is in flight the
//! training thread blocks in [`SnapshotPool::acquire`] — backpressure that
//! bounds snapshot memory instead of letting it grow with writer lag. The
//! wait, if any, lands on the `save/snapshot_pool_wait_us` metric.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ucp_core::checkpoint::{
    save_model_states, save_model_states_durable, save_optim_states, save_optim_states_durable,
    CommonState, OptimShard,
};
use ucp_model::ParamStore;
use ucp_storage::layout as disk;

use crate::TrainError;

/// An owned, immutable copy of everything one rank persists at a step.
#[derive(Debug, Clone)]
pub struct CheckpointSnapshot {
    /// Common training state.
    pub common: CommonState,
    /// (tp, pp) coordinate of the slice.
    pub tp: usize,
    /// Pipeline coordinate.
    pub pp: usize,
    /// Model shards to write (only the zi=0 replica carries them).
    pub model: Option<ParamStore>,
    /// This rank's optimizer chunk.
    pub shard: OptimShard,
    /// `fsync` the files before reporting the save complete — telemetry
    /// then splits serialization (`storage/write`) from durability
    /// (`storage/fsync`).
    pub durable: bool,
    /// Parameter ranges touched since the previous snapshot (shard-flat
    /// coordinates; see [`crate::dirty`]). `None` means unknown — the save
    /// pipeline then exchanges every fragment. `Some(map)` lets writers
    /// send only dirty sub-fragments, and parameters absent from the map
    /// are clean everywhere, so their atoms can be hard-linked from the
    /// prior universal step instead of rewritten.
    pub dirty: Option<crate::dirty::DirtyMap>,
}

impl CheckpointSnapshot {
    /// The cluster rank that owns this snapshot (its writer thread is
    /// traced under this rank's pid).
    pub fn owner_rank(&self) -> usize {
        let p = &self.common.parallel;
        let zi = self.shard.dp;
        p.rank_of(ucp_parallel::RankCoord {
            dp: zi / p.sp,
            sp: zi % p.sp,
            tp: self.tp,
            pp: self.pp,
        })
    }

    /// Persist the snapshot under `base/global_step<iteration>`.
    pub fn persist(&self, base: &Path) -> Result<(), TrainError> {
        let _sp = ucp_telemetry::trace::span(ucp_telemetry::TraceCat::Checkpoint, "persist");
        let t = ucp_telemetry::enabled().then(std::time::Instant::now);
        let step_dir = disk::step_dir(base, self.common.iteration);
        if let Some(model) = &self.model {
            if self.durable {
                save_model_states_durable(&step_dir, &self.common, self.tp, self.pp, model)
            } else {
                save_model_states(&step_dir, &self.common, self.tp, self.pp, model)
            }
            .map_err(TrainError::Ucp)?;
        }
        if self.durable {
            save_optim_states_durable(&step_dir, &self.common, self.tp, self.pp, &self.shard)
        } else {
            save_optim_states(&step_dir, &self.common, self.tp, self.pp, &self.shard)
        }
        .map_err(TrainError::Ucp)?;
        if let Some(t) = t {
            ucp_telemetry::global().record_span("save/persist", t.elapsed());
            ucp_telemetry::count("save/snapshots", 1);
        }
        Ok(())
    }
}

/// A bounded pool of reusable snapshot buffers.
///
/// Capacity is the maximum number of snapshots alive at once — in flight
/// on background writers plus the one being captured. Acquiring past
/// capacity blocks until a writer finishes and its buffer recycles.
pub struct SnapshotPool {
    capacity: usize,
    /// Free slots; `Some` carries a recycled snapshot whose buffers the
    /// next fill reuses, `None` is a never-used slot.
    free: Mutex<Vec<Option<CheckpointSnapshot>>>,
    bell: Condvar,
}

impl SnapshotPool {
    /// A pool of `capacity` buffers (clamped to at least 1).
    pub fn new(capacity: usize) -> Arc<SnapshotPool> {
        let capacity = capacity.max(1);
        Arc::new(SnapshotPool {
            capacity,
            free: Mutex::new((0..capacity).map(|_| None).collect()),
            bell: Condvar::new(),
        })
    }

    /// Check out a buffer, blocking while all are in flight. Every call
    /// records its wait (usually 0) on `save/snapshot_pool_wait_us`.
    pub fn acquire(self: &Arc<Self>) -> PooledSnapshot {
        let t = ucp_telemetry::enabled().then(std::time::Instant::now);
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        while free.is_empty() {
            free = self.bell.wait(free).unwrap_or_else(|e| e.into_inner());
        }
        let slot = free.pop().expect("free list non-empty");
        drop(free);
        if let Some(t) = t {
            ucp_telemetry::observe("save/snapshot_pool_wait_us", t.elapsed().as_micros() as u64);
        }
        PooledSnapshot {
            snap: slot,
            pool: Some(Arc::clone(self)),
        }
    }

    fn recycle(&self, snap: Option<CheckpointSnapshot>) {
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        if free.len() < self.capacity {
            free.push(snap);
        }
        self.bell.notify_one();
    }
}

/// A snapshot slot checked out of a [`SnapshotPool`]. Dropping it returns
/// the buffers to the pool for reuse — including on writer panic, since
/// the background thread owns it for the duration of the save. A plain
/// [`CheckpointSnapshot`] converts `Into<PooledSnapshot>` without a pool
/// attached (nothing recycles; drop just frees it).
pub struct PooledSnapshot {
    snap: Option<CheckpointSnapshot>,
    pool: Option<Arc<SnapshotPool>>,
}

impl PooledSnapshot {
    /// The snapshot held in this slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot has not been filled (freshly acquired slots are
    /// filled by [`crate::RankEngine::snapshot_pooled`]).
    pub fn get(&self) -> &CheckpointSnapshot {
        self.snap.as_ref().expect("pooled snapshot slot is filled")
    }

    /// The raw slot, for in-place filling that reuses a recycled
    /// snapshot's buffers.
    pub(crate) fn slot_mut(&mut self) -> &mut Option<CheckpointSnapshot> {
        &mut self.snap
    }
}

impl From<CheckpointSnapshot> for PooledSnapshot {
    fn from(snap: CheckpointSnapshot) -> PooledSnapshot {
        PooledSnapshot {
            snap: Some(snap),
            pool: None,
        }
    }
}

impl Drop for PooledSnapshot {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.recycle(self.snap.take());
        }
    }
}

/// Handle to an in-flight background persist.
pub struct PendingSave {
    /// The step being persisted.
    pub step: u64,
    handle: JoinHandle<Result<(), TrainError>>,
    /// Signalled by the writer the moment the native persist finishes —
    /// before any born-universal pipeline work — so the training thread
    /// can publish `latest` without waiting for atom assembly.
    persisted: std::sync::mpsc::Receiver<Result<(), String>>,
}

impl PendingSave {
    /// Spawn the background writer for a snapshot. The step is pinned
    /// against retention pruning before the thread starts and stays
    /// pinned until the writer finishes, so `prune` can never delete a
    /// directory that is still materializing.
    pub fn spawn(snapshot: impl Into<PooledSnapshot>, base: PathBuf) -> PendingSave {
        PendingSave::spawn_with(snapshot, base, None)
    }

    /// Like [`PendingSave::spawn`], but after the native persist succeeds
    /// the writer also runs its part of the born-universal save pipeline
    /// ([`crate::pipeline`]) — still on the same background thread, so
    /// atom assembly stays off the training critical path and its trace
    /// spans land on the owning rank's "saver" track. The snapshot's
    /// buffers (pooled or not) are released only when the writer finishes.
    pub fn spawn_with(
        snapshot: impl Into<PooledSnapshot>,
        base: PathBuf,
        pipeline: Option<crate::pipeline::WriterTask>,
    ) -> PendingSave {
        let pooled = snapshot.into();
        let step = pooled.get().common.iteration;
        let guard = ucp_storage::retention::begin_save(&base, step);
        let owner = pooled.get().owner_rank();
        let (persisted_tx, persisted) = std::sync::mpsc::channel();
        let handle = std::thread::spawn(move || {
            // The writer appears as a second thread on the owning rank's
            // trace timeline, making the overlap visible (no-op when
            // tracing is disabled).
            ucp_telemetry::trace::register_rank(owner, "saver");
            // The retention pin must not outlive the writer even when it
            // panics: catch the unwind, release the pin deterministically,
            // and surface the panic as an error. (If the writer dies with
            // a pipeline task in hand, dropping the task's endpoint is
            // what tells peer assemblers to abort instead of hanging; a
            // panic before the persist signal drops `persisted_tx`, which
            // unblocks `wait_persisted` the same way.)
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                test_panic_injection();
                let snapshot = pooled.get();
                let persist_result = snapshot.persist(&base);
                let _ = persisted_tx.send(
                    persist_result
                        .as_ref()
                        .map(|_| ())
                        .map_err(|e| e.to_string()),
                );
                persist_result?;
                match pipeline {
                    Some(task) => crate::pipeline::run_writer(task, snapshot, &base),
                    None => Ok(()),
                }
            }));
            // Recycle the snapshot buffers only after the pipeline is done
            // with them (the unwind path recycles too — `pooled` is owned
            // by this thread either way).
            drop(pooled);
            drop(guard);
            match result {
                Ok(r) => r,
                Err(payload) => Err(TrainError::Config(format!(
                    "background checkpoint writer panicked: {}",
                    panic_message(payload.as_ref())
                ))),
            }
        });
        PendingSave {
            step,
            handle,
            persisted,
        }
    }

    /// Block until the writer's *native persist* is done (success or
    /// failure), leaving the writer running its pipeline work in the
    /// background. The caller may then publish the native `latest` marker
    /// — but must still [`PendingSave::wait`] later to collect the
    /// writer's final result.
    pub fn wait_persisted(&self) -> Result<(), TrainError> {
        match self.persisted.recv() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(msg)) => Err(TrainError::Config(msg)),
            // Sender dropped without a signal: the writer panicked before
            // finishing the persist. The detailed payload surfaces at
            // wait(); this call just reports the persist never completed.
            Err(_) => Err(TrainError::Config(
                "background checkpoint writer died before persisting".into(),
            )),
        }
    }

    /// Block until the writer finishes, surfacing its result.
    pub fn wait(self) -> Result<(), TrainError> {
        self.handle
            .join()
            .map_err(|_| TrainError::Config("background checkpoint writer panicked".into()))?
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Test-only kill switch: makes the next spawned writer panic before it
/// touches disk, so the panic-safety of the retention pin is testable.
#[cfg(test)]
static PANIC_NEXT_PERSIST: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

fn test_panic_injection() {
    #[cfg(test)]
    if PANIC_NEXT_PERSIST.swap(false, std::sync::atomic::Ordering::SeqCst) {
        panic!("injected writer panic");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_model::ModelConfig;
    use ucp_parallel::{FlatLayout, ParallelConfig, ZeroStage};
    use ucp_tensor::{Shape, Tensor};

    fn snapshot(iteration: u64) -> CheckpointSnapshot {
        let layout = FlatLayout::build(&[("p".to_string(), Shape::new([6]))], 2, 1);
        let mut model = ParamStore::new();
        model.insert("p", Tensor::full([6], 1.5));
        CheckpointSnapshot {
            common: CommonState {
                iteration,
                seed: 1,
                data_cursor: 0,
                adam_step: iteration,
                model: ModelConfig::gpt3_tiny(),
                parallel: ParallelConfig::new(1, 1, 1, 1, ZeroStage::Zero1),
                params_to_average: vec![],
            },
            tp: 0,
            pp: 0,
            model: Some(model),
            shard: OptimShard {
                dp: 0,
                layout: layout.clone(),
                fp32: vec![0.5; layout.chunk],
                exp_avg: vec![0.0; layout.chunk],
                exp_avg_sq: vec![0.0; layout.chunk],
            },
            durable: false,
            dirty: None,
        }
    }

    #[test]
    fn pool_recycles_buffers_and_bounds_outstanding() {
        let pool = SnapshotPool::new(2);
        let mut a = pool.acquire();
        let _b = pool.acquire();
        // Fill slot `a`, release it, and check the next acquire gets the
        // recycled buffers back (same fp32 allocation).
        *a.slot_mut() = Some(snapshot(1));
        let ptr = a.get().shard.fp32.as_ptr();
        drop(a);
        let c = pool.acquire();
        assert_eq!(
            c.snap.as_ref().map(|s| s.shard.fp32.as_ptr()),
            Some(ptr),
            "recycled slot should carry the previous snapshot's buffers"
        );
    }

    #[test]
    fn pool_acquire_blocks_until_a_writer_recycles() {
        let pool = SnapshotPool::new(1);
        let held = pool.acquire();
        let (tx, rx) = std::sync::mpsc::channel();
        let p2 = Arc::clone(&pool);
        let waiter = std::thread::spawn(move || {
            let _got = p2.acquire();
            tx.send(()).unwrap();
        });
        assert!(
            rx.recv_timeout(std::time::Duration::from_millis(50))
                .is_err(),
            "acquire should block while the only buffer is out"
        );
        drop(held);
        rx.recv_timeout(std::time::Duration::from_secs(5))
            .expect("recycling must unblock the waiter");
        waiter.join().unwrap();
    }

    #[test]
    fn background_persist_writes_both_files() {
        let base = std::env::temp_dir().join("ucp_snapshot_test");
        std::fs::remove_dir_all(&base).ok();
        std::fs::create_dir_all(&base).unwrap();
        let pending = PendingSave::spawn(snapshot(7), base.clone());
        assert_eq!(pending.step, 7);
        pending.wait().unwrap();
        let step_dir = disk::step_dir(&base, 7);
        assert!(disk::model_states_path(&step_dir, 0, 0).is_file());
        assert!(disk::optim_states_path(&step_dir, 0, 0, 0).is_file());
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn durable_persist_writes_identical_files() {
        let base = std::env::temp_dir().join("ucp_snapshot_durable_test");
        std::fs::remove_dir_all(&base).ok();
        std::fs::create_dir_all(&base).unwrap();
        let mut snap = snapshot(3);
        snap.durable = true;
        snap.persist(&base).unwrap();
        let step_dir = disk::step_dir(&base, 3);
        let durable_bytes = std::fs::read(disk::optim_states_path(&step_dir, 0, 0, 0)).unwrap();
        let mut plain = snapshot(3);
        plain.common.iteration = 4;
        plain.persist(&base).unwrap();
        let plain_bytes =
            std::fs::read(disk::optim_states_path(&disk::step_dir(&base, 4), 0, 0, 0)).unwrap();
        // fsync changes durability, never content; only the header's
        // iteration differs between the two writes.
        assert_eq!(durable_bytes.len(), plain_bytes.len());
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn writer_error_surfaces_at_wait() {
        // An unwritable base propagates the I/O error to wait().
        let base = PathBuf::from("/proc/definitely/not/writable");
        let pending = PendingSave::spawn(snapshot(1), base);
        assert!(pending.wait().is_err());
    }

    #[test]
    fn writer_panic_releases_retention_pin() {
        use ucp_storage::retention::{prune, RetentionPolicy};
        let base = std::env::temp_dir().join("ucp_snapshot_panic_pin_test");
        std::fs::remove_dir_all(&base).ok();
        // Two committed steps on disk; the marker pins step 9.
        for s in [8u64, 9] {
            let dir = disk::step_dir(&base, s);
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("payload"), [0u8; 10]).unwrap();
        }
        disk::write_latest(&base, 9).unwrap();
        // The writer panics before touching disk. Its step stays pinned
        // only while the writer lives — the panic must release the pin,
        // not leak it for the rest of the run.
        PANIC_NEXT_PERSIST.store(true, std::sync::atomic::Ordering::SeqCst);
        let pending = PendingSave::spawn(snapshot(8), base.clone());
        let err = pending.wait().unwrap_err();
        assert!(
            err.to_string().contains("panicked: injected writer panic"),
            "panic payload should surface: {err}"
        );
        // If the pin leaked, step 8 would survive this prune.
        let report = prune(&base, &RetentionPolicy::last(1)).unwrap();
        assert_eq!(report.removed, vec![8], "panicked writer leaked its pin");
        std::fs::remove_dir_all(&base).ok();
    }
}
