//! Distributed training simulator: the "DeepSpeed + Megatron-LM" stand-in.
//!
//! Drives an in-process SPMD cluster through real TP/SP/PP/DP training of
//! the transformer family in `ucp-model`, with ZeRO-partitioned AdamW,
//! mixed precision, and periodic distributed checkpointing. Resuming is
//! supported in two modes that mirror the paper's Fig. 1 contrast:
//!
//! - **native**: same strategy only — a strategy change is a hard error
//!   (the status quo UCP fixes);
//! - **universal**: any strategy, by converting the native checkpoint into
//!   atom checkpoints and re-partitioning them for the target.
//!
//! The driver functions in [`driver`] package complete experiment flows
//! (train → checkpoint → reconfigure → resume), used by the figure
//! harness, the integration tests, and the examples.

pub mod comm_group;
pub mod data;
pub mod dirty;
pub mod driver;
pub mod engine;
pub mod fleet;
pub mod hot;
pub mod pipeline;
pub mod snapshot;
pub mod supervisor;

pub use comm_group::CommGroup;
pub use dirty::{DirtyMap, DirtyTracker};
pub use driver::{
    convert_checkpoint, resume_run, run_elastic, train_run, train_run_overlapped,
    train_run_overlapped_with, ElasticPhase, OverlappedOptions, ResumeMode, RunResult, TrainPlan,
};
pub use engine::{IterStats, PipelineSchedule, RankEngine, TrainConfig, UniversalSource};
pub use hot::HotTier;
pub use pipeline::SavePipelines;
pub use snapshot::{CheckpointSnapshot, PendingSave, PooledSnapshot, SnapshotPool};
pub use supervisor::{
    parse_faults, supervise, FaultKind, RankFault, RestartEvent, SuperviseReport, SupervisorOptions,
};

/// Trainer errors.
#[derive(Debug)]
pub enum TrainError {
    /// Invalid run configuration.
    Config(String),
    /// Communication failure.
    Comm(ucp_collectives::CommError),
    /// Checkpoint/UCP failure.
    Ucp(ucp_core::UcpError),
    /// A native resume was attempted with a different parallelism strategy
    /// — the limitation Universal Checkpointing removes.
    StrategyMismatch {
        /// Strategy recorded in the checkpoint.
        checkpoint: String,
        /// Strategy requested for the resume.
        requested: String,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Config(msg) => write!(f, "config: {msg}"),
            TrainError::Comm(e) => write!(f, "communication: {e}"),
            TrainError::Ucp(e) => write!(f, "checkpoint: {e}"),
            TrainError::StrategyMismatch {
                checkpoint,
                requested,
            } => write!(
                f,
                "cannot resume native checkpoint saved with {checkpoint} under {requested}; \
                 convert it to a universal checkpoint first"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

/// Result alias for trainer operations.
pub type Result<T> = std::result::Result<T, TrainError>;
