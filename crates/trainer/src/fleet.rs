//! Transport for fleet-wide metric aggregation.
//!
//! The aggregation math lives in [`ucp_telemetry::fleet`] (pure data);
//! this module moves the per-rank snapshots. Each rank keeps a small
//! local [`Recorder`] for signals that genuinely differ per rank —
//! iteration wall time, save-stall blocking — and at run end ships its
//! snapshot to rank 0 over a disposable [`ucp_collectives::exchange`]
//! mesh (the same transport the save pipeline uses, wired before the
//! cluster fan-out). Rank 0 merges the snapshots and folds the
//! `fleet/*` aggregates into the process-global recorder, so they ride
//! the ordinary `--metrics-out` JSON and Prometheus exports.

use std::time::Duration;

use parking_lot::Mutex;
use ucp_collectives::exchange::{self, Endpoint};
use ucp_telemetry::fleet::{aggregate, RankSnapshot};
use ucp_telemetry::Recorder;

/// How long rank 0 waits for each peer's snapshot. Generous for healthy
/// in-process threads; a rank that died mid-run simply goes missing from
/// the aggregate (visible as a lower `fleet/ranks`).
const GATHER_DEADLINE: Duration = Duration::from_secs(10);

/// A pre-wired snapshot exchange, one endpoint per rank, claimed once.
pub struct FleetMesh {
    endpoints: Mutex<Vec<Option<Endpoint<RankSnapshot>>>>,
}

impl FleetMesh {
    /// Wire a `world`-rank mesh (call before the cluster fan-out).
    pub fn new(world: usize) -> FleetMesh {
        FleetMesh {
            endpoints: Mutex::new(exchange::endpoints(world).into_iter().map(Some).collect()),
        }
    }

    fn take(&self, rank: usize) -> Option<Endpoint<RankSnapshot>> {
        self.endpoints.lock().get_mut(rank).and_then(Option::take)
    }
}

/// Ship `local`'s snapshot to rank 0; on rank 0, also collect every
/// peer's snapshot, aggregate, and absorb the result into the global
/// recorder. Best-effort by design: metric shipping must never fail a
/// training run, so missing peers are tolerated (and visible in the
/// exported `fleet/ranks`).
pub fn gather(mesh: &FleetMesh, rank: usize, local: &Recorder) {
    gather_into(mesh, rank, local, ucp_telemetry::global());
}

fn gather_into(mesh: &FleetMesh, rank: usize, local: &Recorder, sink: &Recorder) {
    let Some(ep) = mesh.take(rank) else { return };
    let snapshot = RankSnapshot {
        rank,
        report: local.report(&format!("rank{rank}")),
    };
    let _ = ep.send(0, snapshot);
    if rank != 0 {
        return;
    }
    let mut snaps = Vec::new();
    for peer in 0..ep.world() {
        if let Ok(s) = ep.recv_from(peer, GATHER_DEADLINE) {
            snaps.push(s);
        }
    }
    sink.absorb(&aggregate(&snaps));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_claim_once() {
        let mesh = FleetMesh::new(2);
        assert!(mesh.take(0).is_some());
        assert!(mesh.take(0).is_none());
        assert!(mesh.take(1).is_some());
        assert!(mesh.take(7).is_none());
    }

    #[test]
    fn gather_merges_rank_snapshots_into_sink() {
        let sink = Recorder::new();
        let mesh = FleetMesh::new(3);
        std::thread::scope(|s| {
            for rank in 0..3usize {
                let (mesh, sink) = (&mesh, &sink);
                s.spawn(move || {
                    let local = Recorder::new();
                    local.count("rank/ops", (rank as u64 + 1) * 10);
                    gather_into(mesh, rank, &local, sink);
                });
            }
        });
        let report = sink.report("t");
        assert_eq!(report.counter("fleet/ranks"), Some(3));
        assert_eq!(report.counter("fleet/rank/ops/sum"), Some(60));
        assert_eq!(report.counter("fleet/rank/ops/min"), Some(10));
        assert_eq!(report.counter("fleet/rank/ops/max"), Some(30));
        assert_eq!(report.counter("fleet/rank/ops/skew"), Some(20));
    }

    #[test]
    fn missing_rank_lowers_the_rank_count() {
        let sink = Recorder::new();
        let mesh = FleetMesh::new(2);
        // Rank 1 died before gathering: claim and drop its endpoint so
        // rank 0 sees a disconnect instead of a deadline wait.
        drop(mesh.take(1));
        let local = Recorder::new();
        local.count("rank/lonely", 1);
        gather_into(&mesh, 0, &local, &sink);
        let report = sink.report("t");
        assert_eq!(report.counter("fleet/ranks"), Some(1));
    }
}
