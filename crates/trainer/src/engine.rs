//! The per-rank training engine: one SPMD program combining TP/SP/PP/DP
//! with ZeRO-partitioned AdamW and mixed precision.
//!
//! ZeRO semantics follow DeepSpeed + Ulysses: the optimizer state is
//! partitioned across the *combined* data × sequence parallel group (its
//! size is the "ZeRO degree"). Each rank owns one flat chunk of the fp32
//! master and its Adam moments, updates only that chunk, and all-gathers
//! the updated master to refresh its bf16/fp16 model copy. Stages 1–3
//! share this code path — they differ in what is persisted and in the
//! gradient communication pattern, neither of which changes the math
//! (our collectives are deterministic, so reduce-scatter + gather equals
//! all-reduce + slice bitwise).

use std::path::Path;
use std::sync::Arc;

use ucp_collectives::{Comm, Group};
use ucp_core::checkpoint::{
    load_optim_states, save_model_states, save_model_states_durable, save_optim_states,
    save_optim_states_durable, CommonState, OptimShard,
};
use ucp_core::load::{LoadOptions, LoadSession};
use ucp_model::{GradStore, ModelConfig, Partition, Stage, StageIn, StageLayout, StageOut};
use ucp_optim::{clip_scale, AdamConfig, AdamState, LrSchedule};
use ucp_parallel::{FlatLayout, ParallelConfig, RankCoord};
use ucp_storage::layout as disk;
use ucp_telemetry::trace::{self, TraceCat};
use ucp_tensor::{DType, DetRng, Tensor};

use crate::comm_group::CommGroup;
use crate::data;
use crate::dirty::DirtyTracker;
use crate::TrainError;

/// Pipeline execution schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineSchedule {
    /// Run each microbatch's forward and backward to completion before the
    /// next (simple, maximal bubble).
    #[default]
    Sequential,
    /// Non-interleaved 1F1B (PipeDream-flush / Megatron default): warm up
    /// with `P − 1 − stage` forwards, then alternate one forward with one
    /// backward, then drain. Gradients are identical to `Sequential` up to
    /// f64 summation order; activation memory is bounded by the warmup
    /// depth instead of the microbatch count.
    OneFOneB,
}

/// Everything that defines a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Model architecture.
    pub model: ModelConfig,
    /// Parallelism strategy.
    pub parallel: ParallelConfig,
    /// Run seed (initialization + data order).
    pub seed: u64,
    /// Samples per iteration (across all DP replicas).
    pub global_batch: usize,
    /// Samples per microbatch per DP replica.
    pub micro_batch: usize,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// AdamW hyperparameters.
    pub adam: AdamConfig,
    /// Global gradient-norm clip (≤ 0 disables).
    pub grad_clip: f64,
    /// Model-copy precision (mixed-precision training).
    pub dtype: DType,
    /// ZeRO flat-buffer alignment quantum (elements).
    pub alignment: usize,
    /// Pipeline execution schedule.
    pub schedule: PipelineSchedule,
    /// `fsync` checkpoint files before a save is reported complete.
    /// Telemetry then splits serialization (`storage/write`) from
    /// durability (`storage/fsync`) in the save accounting.
    pub durable_saves: bool,
}

impl TrainConfig {
    /// Sensible small defaults for a model + strategy (tests, examples).
    pub fn quick(model: ModelConfig, parallel: ParallelConfig, seed: u64) -> TrainConfig {
        TrainConfig {
            model,
            parallel,
            seed,
            global_batch: 8,
            micro_batch: 2,
            lr: LrSchedule {
                max_lr: 1e-3,
                min_lr: 1e-4,
                warmup_iters: 5,
                decay_iters: 200,
            },
            adam: AdamConfig::default(),
            grad_clip: 1.0,
            dtype: DType::BF16,
            alignment: 8,
            schedule: PipelineSchedule::Sequential,
            durable_saves: false,
        }
    }

    /// The ZeRO partitioning degree: the combined DP × SP group size.
    pub fn zero_degree(&self) -> usize {
        self.parallel.dp * self.parallel.sp
    }

    /// Check divisibility constraints.
    pub fn validate(&self) -> Result<(), String> {
        self.model.validate(self.parallel.tp)?;
        self.parallel
            .validate(self.model.num_layers, self.model.max_seq_len)?;
        let per_replica = self.global_batch.checked_div(self.parallel.dp).unwrap_or(0);
        if per_replica == 0 || !self.global_batch.is_multiple_of(self.parallel.dp) {
            return Err(format!(
                "global batch {} not divisible by DP {}",
                self.global_batch, self.parallel.dp
            ));
        }
        if !per_replica.is_multiple_of(self.micro_batch) {
            return Err(format!(
                "replica batch {per_replica} not divisible by microbatch {}",
                self.micro_batch
            ));
        }
        Ok(())
    }
}

/// Per-iteration observability record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterStats {
    /// Iteration number (1-based, the iteration just completed).
    pub iteration: u64,
    /// Mean LM loss.
    pub loss: f64,
    /// Global (clipped-against) gradient L2 norm.
    pub grad_norm: f64,
    /// Learning rate applied.
    pub lr: f32,
    /// Wall-clock seconds for the iteration on this rank.
    pub wall_secs: f64,
    /// Tokens processed per second (global batch × seq / wall).
    pub tokens_per_sec: f64,
}

/// Where a universal resume reads its atoms from: the committed disk
/// checkpoint (through a shared [`LoadSession`]) or the peer-assembled
/// in-memory hot checkpoint. Both answer the same `GenUcpMetadata` +
/// `Load` queries and yield identical state for the same step.
pub enum UniversalSource<'s> {
    /// On-disk universal checkpoint, loaded through a shared atom cache.
    Session(&'s LoadSession),
    /// In-memory universal checkpoint assembled from peer replicas.
    Memory(&'s ucp_core::MemoryCheckpoint),
}

impl UniversalSource<'_> {
    /// The source checkpoint's manifest.
    pub fn manifest(&self) -> &ucp_core::UcpManifest {
        match self {
            UniversalSource::Session(s) => s.manifest(),
            UniversalSource::Memory(m) => m.manifest(),
        }
    }

    /// `GenUcpMetadata` + `Load` for one target rank.
    pub fn load_rank(
        &self,
        target: &ParallelConfig,
        rank: usize,
        alignment: usize,
    ) -> ucp_core::Result<ucp_core::RankState> {
        match self {
            UniversalSource::Session(s) => s.load_rank(target, rank, alignment),
            UniversalSource::Memory(m) => m.load_rank(target, rank, alignment),
        }
    }
}

/// One rank's training engine.
pub struct RankEngine<'a> {
    /// Run configuration.
    pub cfg: TrainConfig,
    comm: &'a Comm,
    coord: RankCoord,
    /// This rank's pipeline stage (parameters in compute precision).
    pub stage: Stage,
    /// Flat layout of this (tp, pp) slice at the ZeRO degree.
    pub layout: FlatLayout,
    /// This rank's fp32 master chunk.
    pub master: Vec<f32>,
    /// This rank's Adam state chunk.
    pub adam: AdamState,
    /// Completed iterations.
    pub iteration: u64,
    /// Stats of the most recent iteration.
    pub last_stats: Option<IterStats>,
    /// Per-block dirtiness accumulated since the last snapshot.
    dirty: DirtyTracker,
}

impl<'a> RankEngine<'a> {
    /// This rank's index in the ZeRO (dp × sp) partitioning.
    pub fn zero_index(&self) -> usize {
        self.coord.dp * self.cfg.parallel.sp + self.coord.sp
    }

    /// This rank's grid coordinate.
    pub fn coord(&self) -> RankCoord {
        self.coord
    }

    fn stage_layout(cfg: &TrainConfig, coord: RankCoord) -> StageLayout {
        StageLayout {
            tp_size: cfg.parallel.tp,
            tp_rank: coord.tp,
            sp_size: cfg.parallel.sp,
            sp_rank: coord.sp,
            blocks: cfg.parallel.stage_blocks(coord.pp, cfg.model.num_layers),
            is_first: coord.pp == 0,
            is_last: coord.pp == cfg.parallel.pp - 1,
        }
    }

    fn build_layout(cfg: &TrainConfig, stage: &Stage) -> FlatLayout {
        let entries: Vec<(String, ucp_tensor::Shape)> = stage
            .params
            .iter()
            .map(|(name, t)| (name.clone(), t.shape().clone()))
            .collect();
        FlatLayout::build(&entries, cfg.alignment, cfg.zero_degree())
    }

    /// Fresh start: deterministic initialization from the run seed.
    pub fn fresh(cfg: TrainConfig, comm: &'a Comm) -> Result<RankEngine<'a>, TrainError> {
        cfg.validate().map_err(TrainError::Config)?;
        let coord = cfg.parallel.coord(comm.rank());
        let rng = DetRng::new(cfg.seed);
        let mut stage = Stage::new(cfg.model.clone(), Self::stage_layout(&cfg, coord), &rng);
        let layout = Self::build_layout(&cfg, &stage);
        let full = layout.flatten(|name| stage.params.get(name));
        let zi = coord.dp * cfg.parallel.sp + coord.sp;
        let master = full[layout.rank_range(zi)].to_vec();
        let adam = AdamState::new(layout.chunk);
        stage.params.cast_all(cfg.dtype);
        let dirty = DirtyTracker::new(&layout, &cfg.model);
        Ok(RankEngine {
            cfg,
            comm,
            coord,
            stage,
            layout,
            master,
            adam,
            iteration: 0,
            last_stats: None,
            dirty,
        })
    }

    /// Resume from a *native* distributed checkpoint. Fails unless the
    /// current strategy matches the checkpoint's — the exact limitation
    /// (paper Fig. 1) that Universal Checkpointing removes.
    pub fn resume_native(
        cfg: TrainConfig,
        comm: &'a Comm,
        base: &Path,
        step: u64,
    ) -> Result<RankEngine<'a>, TrainError> {
        cfg.validate().map_err(TrainError::Config)?;
        let coord = cfg.parallel.coord(comm.rank());
        let zi = coord.dp * cfg.parallel.sp + coord.sp;
        let step_dir = disk::step_dir(base, step);
        let (common, shard) =
            load_optim_states(&step_dir, zi, coord.tp, coord.pp).map_err(TrainError::Ucp)?;
        if common.parallel != cfg.parallel {
            return Err(TrainError::StrategyMismatch {
                checkpoint: common.parallel.label(),
                requested: cfg.parallel.label(),
            });
        }
        if common.model != cfg.model {
            return Err(TrainError::Config(
                "model architecture differs from checkpoint".into(),
            ));
        }
        let rng = DetRng::new(common.seed);
        let stage = Stage::new(cfg.model.clone(), Self::stage_layout(&cfg, coord), &rng);
        let layout = shard.layout.clone();
        let adam = AdamState {
            exp_avg: shard.exp_avg,
            exp_avg_sq: shard.exp_avg_sq,
            step: common.adam_step,
        };
        let dirty = DirtyTracker::new(&layout, &cfg.model);
        let mut engine = RankEngine {
            cfg,
            comm,
            coord,
            stage,
            layout,
            master: shard.fp32,
            adam,
            iteration: common.iteration,
            last_stats: None,
            dirty,
        };
        // Rebuild the full fp32 view and refresh the compute copy.
        engine.refresh_model_copy()?;
        engine.stage.params.cast_all(engine.cfg.dtype);
        Ok(engine)
    }

    /// Resume from a *universal* checkpoint under an arbitrary new
    /// strategy (the headline capability). Opens a private load session;
    /// when several ranks resume together, share one with
    /// [`RankEngine::resume_universal_session`] so they share an atom
    /// cache.
    pub fn resume_universal(
        cfg: TrainConfig,
        comm: &'a Comm,
        base: &Path,
        step: u64,
    ) -> Result<RankEngine<'a>, TrainError> {
        let session =
            LoadSession::open(base, step, LoadOptions::default()).map_err(TrainError::Ucp)?;
        Self::resume_universal_session(cfg, comm, &session)
    }

    /// [`RankEngine::resume_universal`] against an already-open
    /// [`LoadSession`]. Ranks loading through the same session read each
    /// atom byte range from disk once and serve the rest from the shared
    /// cache.
    pub fn resume_universal_session(
        cfg: TrainConfig,
        comm: &'a Comm,
        session: &LoadSession,
    ) -> Result<RankEngine<'a>, TrainError> {
        Self::resume_universal_source(cfg, comm, &UniversalSource::Session(session))
    }

    /// Resume from any universal-checkpoint source — an on-disk load
    /// session or a peer-assembled in-memory checkpoint. Both serve the
    /// same atoms through the same plan, so the reconstructed engine state
    /// is bitwise-identical for the same step.
    pub fn resume_universal_source(
        cfg: TrainConfig,
        comm: &'a Comm,
        source: &UniversalSource<'_>,
    ) -> Result<RankEngine<'a>, TrainError> {
        cfg.validate().map_err(TrainError::Config)?;
        let coord = cfg.parallel.coord(comm.rank());
        // The paper's loader partitions over the combined dp×sp group; map
        // our coordinate onto the plan's dp axis.
        let plan_parallel = ParallelConfig {
            dp: cfg.zero_degree(),
            sp: 1,
            ..cfg.parallel
        };
        let plan_rank = plan_parallel.rank_of(RankCoord {
            dp: coord.dp * cfg.parallel.sp + coord.sp,
            pp: coord.pp,
            sp: 0,
            tp: coord.tp,
        });
        let manifest = source.manifest().clone();
        let state = source
            .load_rank(&plan_parallel, plan_rank, cfg.alignment)
            .map_err(TrainError::Ucp)?;
        if manifest.model != cfg.model {
            return Err(TrainError::Config(
                "model architecture differs from universal checkpoint".into(),
            ));
        }
        let mut cfg = cfg;
        cfg.seed = manifest.seed;
        let rng = DetRng::new(cfg.seed);
        let mut stage = Stage::new(cfg.model.clone(), Self::stage_layout(&cfg, coord), &rng);
        for (name, t) in &state.model_params {
            stage.params.insert(name.as_ref(), t.cast(cfg.dtype));
        }
        let adam = AdamState {
            exp_avg: state.exp_avg,
            exp_avg_sq: state.exp_avg_sq,
            step: manifest.adam_step,
        };
        let layout = Arc::try_unwrap(state.layout).unwrap_or_else(|a| (*a).clone());
        let dirty = DirtyTracker::new(&layout, &cfg.model);
        Ok(RankEngine {
            cfg,
            comm,
            coord,
            stage,
            layout,
            master: state.fp32,
            adam,
            iteration: manifest.iteration,
            last_stats: None,
            dirty,
        })
    }

    fn grad_group(&self) -> Vec<usize> {
        self.cfg.parallel.grad_group(self.comm.rank())
    }

    /// Ranks spanning (tp, pp) at this rank's (dp, sp) — the model-parallel
    /// group used for the global gradient norm.
    fn model_group(&self) -> Vec<usize> {
        let p = &self.cfg.parallel;
        let mut out = Vec::with_capacity(p.tp * p.pp);
        for pp in 0..p.pp {
            for tp in 0..p.tp {
                out.push(p.rank_of(RankCoord {
                    pp,
                    tp,
                    ..self.coord
                }));
            }
        }
        out.sort_unstable();
        out
    }

    /// All-gather master chunks over the ZeRO group and refresh the full
    /// fp32 view into `stage.params` (still fp32 — caller casts).
    fn refresh_model_copy(&mut self) -> Result<(), TrainError> {
        let group = Group::new(self.grad_group()).expect("grad group");
        let chunk_t =
            Tensor::from_vec(self.master.clone(), [self.master.len()]).expect("chunk tensor");
        let full = if group.size() == 1 {
            self.master.clone()
        } else {
            let all = self
                .comm
                .all_gather_tensors(&group, &chunk_t)
                .map_err(TrainError::Comm)?;
            let mut full = Vec::with_capacity(self.layout.total_len);
            for t in all {
                full.extend_from_slice(t.as_slice());
            }
            full
        };
        for slot in &self.layout.slots {
            self.stage
                .params
                .insert(slot.name.clone(), self.layout.unflatten_one(&full, slot));
        }
        Ok(())
    }

    /// Run one training iteration; returns the mean LM loss (identical on
    /// every rank).
    pub fn train_iteration(&mut self) -> Result<f64, TrainError> {
        let _step_span = trace::span(TraceCat::Compute, "step");
        let t_iter = std::time::Instant::now();
        let p = self.cfg.parallel;
        let rank = self.comm.rank();
        let tp_ops = CommGroup::new(self.comm, p.tp_group(rank));
        let sp_ops = CommGroup::new(self.comm, p.sp_group(rank));

        let per_replica = self.cfg.global_batch / p.dp;
        let n_micro = per_replica / self.cfg.micro_batch;
        let seq = self.cfg.model.max_seq_len;
        let is_first = self.coord.pp == 0;
        let is_last = self.coord.pp == p.pp - 1;

        let mut grads = GradStore::zeros_like(&self.stage.params);
        let mut loss_sum_local = 0.0f64;

        let replica =
            data::replica_indices(self.iteration, self.cfg.global_batch, self.coord.dp, p.dp);

        // One microbatch forward: feed tokens (first stage) or upstream
        // activations, ship the output onward, and return the loss
        // contribution with the backward cache.
        let forward_micro =
            |m: usize, loss_acc: &mut f64| -> Result<ucp_model::StageCache, TrainError> {
                let _sp = trace::span(TraceCat::Compute, "forward");
                let start = replica.start + (m * self.cfg.micro_batch) as u64;
                let samples: Vec<data::Sample> = (0..self.cfg.micro_batch)
                    .map(|k| {
                        data::sample(
                            self.cfg.seed,
                            start + k as u64,
                            seq,
                            self.cfg.model.vocab_size,
                        )
                    })
                    .collect();
                let (inputs, targets) = data::sp_chunk(&samples, self.coord.sp, p.sp);
                let (out, cache) = if is_first {
                    self.stage.forward(
                        StageIn::Tokens(&inputs),
                        self.cfg.micro_batch,
                        is_last.then_some(targets.as_slice()),
                        &tp_ops,
                        &sp_ops,
                    )
                } else {
                    let prev = p.pp_prev(rank).expect("non-first stage has prev");
                    let h = self.comm.recv_tensor(prev).map_err(TrainError::Comm)?;
                    self.stage.forward(
                        StageIn::Hidden(h),
                        self.cfg.micro_batch,
                        is_last.then_some(targets.as_slice()),
                        &tp_ops,
                        &sp_ops,
                    )
                };
                match out {
                    StageOut::Hidden(h) => {
                        let next = p.pp_next(rank).expect("hidden output implies next stage");
                        self.comm.send_tensor(next, &h).map_err(TrainError::Comm)?;
                    }
                    StageOut::Loss { sum, .. } => *loss_acc += sum,
                }
                Ok(cache)
            };

        // One microbatch backward: receive the downstream gradient, run the
        // stage backward, and ship the upstream gradient.
        let backward_micro =
            |cache: &ucp_model::StageCache, grads: &mut GradStore| -> Result<(), TrainError> {
                let _sp = trace::span(TraceCat::Compute, "backward");
                let dh_next = if is_last {
                    None
                } else {
                    let next = p.pp_next(rank).expect("non-last stage has next");
                    Some(self.comm.recv_tensor(next).map_err(TrainError::Comm)?)
                };
                let dh_prev = self.stage.backward(cache, dh_next, grads, &tp_ops, &sp_ops);
                if let Some(dh) = dh_prev {
                    let prev = p.pp_prev(rank).expect("gradient flows to prev stage");
                    self.comm.send_tensor(prev, &dh).map_err(TrainError::Comm)?;
                }
                Ok(())
            };

        match self.cfg.schedule {
            PipelineSchedule::Sequential => {
                for m in 0..n_micro {
                    let cache = forward_micro(m, &mut loss_sum_local)?;
                    backward_micro(&cache, &mut grads)?;
                }
            }
            PipelineSchedule::OneFOneB => {
                // Warmup depth: how many forwards this stage runs ahead of
                // its first backward.
                let warmup = (p.pp - 1 - self.coord.pp).min(n_micro);
                let mut in_flight = std::collections::VecDeque::new();
                for m in 0..warmup {
                    in_flight.push_back(forward_micro(m, &mut loss_sum_local)?);
                }
                for m in warmup..n_micro {
                    in_flight.push_back(forward_micro(m, &mut loss_sum_local)?);
                    let oldest = in_flight.pop_front().expect("one in flight");
                    backward_micro(&oldest, &mut grads)?;
                }
                while let Some(oldest) = in_flight.pop_front() {
                    backward_micro(&oldest, &mut grads)?;
                }
            }
        }

        // Mean loss across the run: only (tp=0, last-stage) ranks
        // contribute, everyone receives the sum.
        let world = Group::world(self.comm.world_size());
        let contribution = if is_last && self.coord.tp == 0 {
            loss_sum_local
        } else {
            0.0
        };
        let token_total = (self.cfg.global_batch * seq) as f64;
        let loss_total = self
            .comm
            .all_reduce_scalar(&world, contribution)
            .map_err(TrainError::Comm)?;
        let mean_loss = loss_total / token_total;

        // Flatten gradients and reduce over the dp×sp group.
        let mut flat = vec![0.0f64; self.layout.total_len];
        for slot in &self.layout.slots {
            let g = grads.get(&slot.name);
            flat[slot.offset..slot.offset + slot.len].copy_from_slice(g);
        }
        let grad_group = Group::new(self.grad_group()).expect("grad group");
        let mut flat = if grad_group.size() > 1 {
            self.comm
                .all_reduce_sum_f64(&grad_group, &flat)
                .map_err(TrainError::Comm)?
        } else {
            flat
        };

        // Tied embeddings under PP > 1: the shared weight lives on both the
        // first and last stages with *different* local gradients (embedding
        // lookup vs LM head); sum them across the shared-embedding group so
        // both replicas apply the identical combined update.
        if self.cfg.model.tie_embeddings && p.pp > 1 && (is_first || is_last) {
            const TIED: &str = "embedding.word_embeddings.weight";
            if let Some(slot) = self.layout.slot(TIED).cloned() {
                let peer_pp = if is_first { p.pp - 1 } else { 0 };
                let peer = p.rank_of(RankCoord {
                    pp: peer_pp,
                    ..self.coord
                });
                let pair = Group::new(vec![rank, peer]).expect("embedding pair group");
                let slice = flat[slot.offset..slot.offset + slot.len].to_vec();
                let summed = self
                    .comm
                    .all_reduce_sum_f64(&pair, &slice)
                    .map_err(TrainError::Comm)?;
                flat[slot.offset..slot.offset + slot.len].copy_from_slice(&summed);
            }
        }
        let flat = flat;

        // Record which blocks this iteration touched — scanned before the
        // f64→f32 cast so a gradient that underflows the cast still counts
        // as dirty (lazy Adam skips exact zeros only; see `crate::dirty`).
        self.dirty.observe_grads(&flat);

        // Scale to mean-loss gradients and clip by the global norm.
        let inv = 1.0 / token_total;
        let specs = self.stage.specs().to_vec();
        let mut local_sq = 0.0f64;
        for slot in &self.layout.slots {
            let spec = specs
                .iter()
                .find(|s| s.name == slot.name)
                .expect("slot has a spec");
            let replicated = matches!(spec.partition, Partition::Replicated);
            if replicated && self.coord.tp != 0 {
                continue;
            }
            // The tied embedding appears on both pipeline-end stages with
            // identical (already-summed) gradients: count it once.
            if matches!(spec.role, ucp_model::LayerRole::SharedEmbedding)
                && p.pp > 1
                && is_last
                && !is_first
            {
                continue;
            }
            for v in &flat[slot.offset..slot.offset + slot.len] {
                let g = v * inv;
                local_sq += g * g;
            }
        }
        let model_group = Group::new(self.model_group()).expect("model group");
        let total_sq = self
            .comm
            .all_reduce_scalar(&model_group, local_sq)
            .map_err(TrainError::Comm)?;
        let grad_norm = total_sq.sqrt();
        let scale = inv * clip_scale(total_sq, self.cfg.grad_clip);

        // AdamW on this rank's chunk, then all-gather and refresh.
        {
            let _sp = trace::span(TraceCat::Compute, "optim");
            let range = self.layout.rank_range(self.zero_index());
            let grad_chunk: Vec<f32> = flat[range].iter().map(|v| (v * scale) as f32).collect();
            self.adam.step(
                &self.cfg.adam,
                &mut self.master,
                &grad_chunk,
                self.cfg.lr.lr_at(self.iteration),
            );
            self.refresh_model_copy()?;
            self.stage.params.cast_all(self.cfg.dtype);
        }

        self.iteration += 1;
        let wall_secs = t_iter.elapsed().as_secs_f64();
        self.last_stats = Some(IterStats {
            iteration: self.iteration,
            loss: mean_loss,
            grad_norm,
            lr: self.cfg.lr.lr_at(self.iteration - 1),
            wall_secs,
            tokens_per_sec: token_total / wall_secs.max(1e-12),
        });
        Ok(mean_loss)
    }

    /// The common (non-tensor) state for checkpointing.
    pub fn common_state(&self) -> CommonState {
        CommonState {
            iteration: self.iteration,
            seed: self.cfg.seed,
            data_cursor: self.iteration * self.cfg.global_batch as u64,
            adam_step: self.adam.step,
            model: self.cfg.model.clone(),
            parallel: self.cfg.parallel,
            params_to_average: Vec::new(),
        }
    }

    /// Capture an owned snapshot of everything this rank persists at the
    /// current step (the blocking half of overlapped checkpointing; see
    /// [`crate::snapshot`]).
    ///
    /// Takes `&mut self` because it also *drains* the dirty tracker: the
    /// returned snapshot carries the set of parameter ranges touched since
    /// the previous snapshot, and the tracker resets to clean. Dropping the
    /// snapshot without saving it therefore loses dirtiness — callers must
    /// hand every snapshot to the save path (the driver does).
    pub fn snapshot(&mut self) -> crate::snapshot::CheckpointSnapshot {
        let _sp = trace::span(TraceCat::Checkpoint, "snapshot");
        let zi = self.zero_index();
        let dirty = self.dirty.take();
        crate::snapshot::CheckpointSnapshot {
            common: self.common_state(),
            tp: self.coord.tp,
            pp: self.coord.pp,
            model: (zi == 0).then(|| self.stage.params.clone()),
            shard: OptimShard {
                dp: zi,
                layout: self.layout.clone(),
                fp32: self.master.clone(),
                exp_avg: self.adam.exp_avg.clone(),
                exp_avg_sq: self.adam.exp_avg_sq.clone(),
            },
            durable: self.cfg.durable_saves,
            dirty: Some(dirty),
        }
    }

    /// Capture this rank's state as a hot-tier shard: the peer-replication
    /// payload (common metadata plus a clone of the flat optimizer chunk).
    /// Unlike [`RankEngine::snapshot`] this does not drain the dirty
    /// tracker — the hot tier drains it explicitly via
    /// [`RankEngine::take_dirty`] so full and delta pushes share one
    /// capture path.
    pub fn hot_shard(&self) -> ucp_core::HotShard {
        ucp_core::HotShard {
            common: self.common_state(),
            tp: self.coord.tp,
            pp: self.coord.pp,
            shard: OptimShard {
                dp: self.zero_index(),
                layout: self.layout.clone(),
                fp32: self.master.clone(),
                exp_avg: self.adam.exp_avg.clone(),
                exp_avg_sq: self.adam.exp_avg_sq.clone(),
            },
        }
    }

    /// Drain the dirty tracker: the parameter ranges touched since the
    /// last drain (by [`RankEngine::snapshot`] or this method). The hot
    /// tier uses the drained map to delta-replicate between full pushes.
    pub fn take_dirty(&mut self) -> crate::dirty::DirtyMap {
        self.dirty.take()
    }

    /// Like [`RankEngine::snapshot`], but fills a reusable buffer drawn
    /// from `pool`, blocking while all pooled buffers are in flight (the
    /// backpressure that bounds snapshot memory at per-iteration cadence).
    /// Filling a recycled buffer is a `clone_from` into existing capacity
    /// — no allocation once the pool is warm.
    pub fn snapshot_pooled(
        &mut self,
        pool: &Arc<crate::snapshot::SnapshotPool>,
    ) -> crate::snapshot::PooledSnapshot {
        let mut pooled = pool.acquire();
        self.snapshot_into(pooled.slot_mut());
        pooled
    }

    fn snapshot_into(&mut self, slot: &mut Option<crate::snapshot::CheckpointSnapshot>) {
        match slot {
            Some(prev) => {
                let _sp = trace::span(TraceCat::Checkpoint, "snapshot");
                let zi = self.zero_index();
                prev.common = self.common_state();
                prev.tp = self.coord.tp;
                prev.pp = self.coord.pp;
                if zi == 0 {
                    match &mut prev.model {
                        Some(m) => m.clone_from(&self.stage.params),
                        m => *m = Some(self.stage.params.clone()),
                    }
                } else {
                    prev.model = None;
                }
                prev.shard.dp = zi;
                prev.shard.layout.clone_from(&self.layout);
                prev.shard.fp32.clone_from(&self.master);
                prev.shard.exp_avg.clone_from(&self.adam.exp_avg);
                prev.shard.exp_avg_sq.clone_from(&self.adam.exp_avg_sq);
                prev.durable = self.cfg.durable_saves;
                prev.dirty = Some(self.dirty.take());
            }
            None => *slot = Some(self.snapshot()),
        }
    }

    /// Barrier the world, then let rank 0 record the `latest` marker for
    /// `step` (split out so overlapped saves can defer it).
    pub fn publish_latest(&self, base: &Path, step: u64) -> Result<(), TrainError> {
        self.publish_markers(base, step, false)
    }

    /// Publish a drained save: barrier the world, then let rank 0 commit
    /// the native `latest` marker — and, when `universal` is set, the
    /// step's `latest_universal` right after it (see
    /// `ucp_storage::layout::publish_step_markers` for the ordering
    /// invariant). The entry barrier is what upholds the commit ordering:
    /// every rank's files for the step are durable before a marker lands.
    /// The overlapped driver always passes `universal: false` — the
    /// born-universal pipeline publishes `latest_universal` from rank 0's
    /// background writer instead, keyed off this publish completing.
    pub fn publish_markers(
        &self,
        base: &Path,
        step: u64,
        universal: bool,
    ) -> Result<(), TrainError> {
        let _sp = trace::span(TraceCat::Checkpoint, "publish");
        let t = ucp_telemetry::enabled().then(std::time::Instant::now);
        let world = Group::world(self.comm.world_size());
        self.comm.barrier(&world).map_err(TrainError::Comm)?;
        if self.comm.rank() == 0 {
            disk::publish_step_markers(base, step, universal)
                .map_err(|e| TrainError::Ucp(e.into()))?;
        }
        self.comm.barrier(&world).map_err(TrainError::Comm)?;
        if let Some(t) = t {
            ucp_telemetry::global().record_span("save/publish", t.elapsed());
        }
        Ok(())
    }

    /// Write this rank's part of a native distributed checkpoint. Rank 0
    /// additionally records the `latest` marker after a barrier.
    pub fn save_checkpoint(&self, base: &Path) -> Result<(), TrainError> {
        let _save_span = trace::span(TraceCat::Checkpoint, "save");
        let persist_span = trace::span(TraceCat::Checkpoint, "persist");
        let t_persist = ucp_telemetry::enabled().then(std::time::Instant::now);
        let step_dir = disk::step_dir(base, self.iteration);
        let common = self.common_state();
        let zi = self.zero_index();
        let durable = self.cfg.durable_saves;
        // One model-states file per (tp, pp), written by the zi=0 replica.
        if zi == 0 {
            if durable {
                save_model_states_durable(
                    &step_dir,
                    &common,
                    self.coord.tp,
                    self.coord.pp,
                    &self.stage.params,
                )
            } else {
                save_model_states(
                    &step_dir,
                    &common,
                    self.coord.tp,
                    self.coord.pp,
                    &self.stage.params,
                )
            }
            .map_err(TrainError::Ucp)?;
        }
        let shard = OptimShard {
            dp: zi,
            layout: self.layout.clone(),
            fp32: self.master.clone(),
            exp_avg: self.adam.exp_avg.clone(),
            exp_avg_sq: self.adam.exp_avg_sq.clone(),
        };
        if durable {
            save_optim_states_durable(&step_dir, &common, self.coord.tp, self.coord.pp, &shard)
        } else {
            save_optim_states(&step_dir, &common, self.coord.tp, self.coord.pp, &shard)
        }
        .map_err(TrainError::Ucp)?;
        // Persist time only — the barriers below measure stragglers, not I/O.
        drop(persist_span);
        if let Some(t) = t_persist {
            ucp_telemetry::global().record_span("save/persist", t.elapsed());
            ucp_telemetry::count("save/snapshots", 1);
        }
        let _publish_span = trace::span(TraceCat::Checkpoint, "publish");
        let world = Group::world(self.comm.world_size());
        self.comm.barrier(&world).map_err(TrainError::Comm)?;
        if self.comm.rank() == 0 {
            disk::write_latest(base, self.iteration).map_err(|e| TrainError::Ucp(e.into()))?;
        }
        // Make the marker visible to everyone before proceeding.
        self.comm.barrier(&world).map_err(TrainError::Comm)?;
        Ok(())
    }
}
