//! Synthetic training data: a deterministic, learnable token stream.
//!
//! Stands in for the paper's Pile subset. Every sample is a pure function
//! of `(seed, sample index)`: sample `i` of the run is identical no matter
//! which DP replica, SP chunk, or microbatch processes it, so the global
//! batch of iteration `k` has exactly the same content under every parallel
//! layout — the property that makes loss curves comparable across
//! reconfigurations.
//!
//! The stream has learnable structure: with probability 0.8 the next token
//! is a fixed affine function of the previous one, otherwise uniform noise.
//! A model that learns the bigram rule drives the loss well below ln(V),
//! giving the visibly decreasing curves of Figs. 6–10.

use ucp_tensor::DetRng;

/// One training sample: `seq_len` input tokens and their shifted targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Input token ids, length `seq_len`.
    pub inputs: Vec<u32>,
    /// Next-token targets, length `seq_len`.
    pub targets: Vec<u32>,
}

/// Probability of following the deterministic bigram rule.
const STRUCTURE_P: f64 = 0.8;

/// Generate sample `index` of the run.
pub fn sample(seed: u64, index: u64, seq_len: usize, vocab: usize) -> Sample {
    let mut rng = DetRng::new(seed).derive("data").derive_u64(index);
    let v = vocab as u64;
    let mut tokens = Vec::with_capacity(seq_len + 1);
    tokens.push(rng.next_bounded(v) as u32);
    for _ in 0..seq_len {
        let prev = u64::from(*tokens.last().expect("non-empty"));
        let next = if rng.next_f64() < STRUCTURE_P {
            (prev.wrapping_mul(31).wrapping_add(17)) % v
        } else {
            rng.next_bounded(v)
        };
        tokens.push(next as u32);
    }
    Sample {
        inputs: tokens[..seq_len].to_vec(),
        targets: tokens[1..].to_vec(),
    }
}

/// The global sample indices of iteration `it` with `global_batch` samples
/// per iteration.
pub fn iteration_indices(it: u64, global_batch: usize) -> std::ops::Range<u64> {
    it * global_batch as u64..(it + 1) * global_batch as u64
}

/// The slice of an iteration's samples owned by DP replica `dp` of `dp_deg`.
pub fn replica_indices(
    it: u64,
    global_batch: usize,
    dp: usize,
    dp_deg: usize,
) -> std::ops::Range<u64> {
    let all = iteration_indices(it, global_batch);
    let per = global_batch / dp_deg;
    all.start + (dp * per) as u64..all.start + ((dp + 1) * per) as u64
}

/// Build the flattened microbatch tensors for SP rank `sp` of `sp_deg`:
/// batch-major token ids over the rank's sequence chunk.
///
/// Returns `(inputs, targets)`, each of length `samples.len() · chunk`.
pub fn sp_chunk(samples: &[Sample], sp: usize, sp_deg: usize) -> (Vec<u32>, Vec<u32>) {
    let seq = samples[0].inputs.len();
    let chunk = seq / sp_deg;
    let start = sp * chunk;
    let mut inputs = Vec::with_capacity(samples.len() * chunk);
    let mut targets = Vec::with_capacity(samples.len() * chunk);
    for s in samples {
        inputs.extend_from_slice(&s.inputs[start..start + chunk]);
        targets.extend_from_slice(&s.targets[start..start + chunk]);
    }
    (inputs, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic_and_distinct() {
        let a = sample(1, 0, 16, 64);
        let b = sample(1, 0, 16, 64);
        assert_eq!(a, b);
        assert_ne!(a, sample(1, 1, 16, 64));
        assert_ne!(a, sample(2, 0, 16, 64));
    }

    #[test]
    fn targets_are_shifted_inputs() {
        let s = sample(3, 7, 16, 64);
        assert_eq!(&s.inputs[1..], &s.targets[..15]);
        assert!(s.inputs.iter().all(|t| (*t as usize) < 64));
    }

    #[test]
    fn stream_has_learnable_structure() {
        // The bigram rule must fire often: count matches of the affine map.
        let mut hits = 0usize;
        let mut total = 0usize;
        for i in 0..50 {
            let s = sample(5, i, 32, 64);
            for (prev, next) in s.inputs.iter().zip(&s.targets) {
                if u64::from(*next) == (u64::from(*prev) * 31 + 17) % 64 {
                    hits += 1;
                }
                total += 1;
            }
        }
        let rate = hits as f64 / total as f64;
        assert!(rate > 0.7, "structure rate {rate}");
        assert!(rate < 0.95, "needs noise too: {rate}");
    }

    #[test]
    fn replica_slices_partition_the_iteration() {
        let mut seen = Vec::new();
        for dp in 0..4 {
            seen.extend(replica_indices(3, 16, dp, 4));
        }
        assert_eq!(seen, iteration_indices(3, 16).collect::<Vec<_>>());
    }

    #[test]
    fn sp_chunks_tile_the_sequence() {
        let samples: Vec<Sample> = (0..2).map(|i| sample(9, i, 16, 32)).collect();
        let (full_in, full_tg) = sp_chunk(&samples, 0, 1);
        let mut cat_in = Vec::new();
        let mut cat_tg = Vec::new();
        // Re-interleave chunks per sample to rebuild the batch-major layout.
        for b in 0..2 {
            for sp in 0..2 {
                let (i, t) = sp_chunk(&samples[b..b + 1], sp, 2);
                cat_in.extend(i);
                cat_tg.extend(t);
            }
        }
        assert_eq!(cat_in, full_in);
        assert_eq!(cat_tg, full_tg);
    }
}
