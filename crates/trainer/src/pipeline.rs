//! The born-universal save pipeline: save → convert → publish as one
//! overlapped background flow.
//!
//! At every checkpoint boundary of [`crate::driver::train_run_overlapped`]
//! each rank's background writer first persists its native fragments
//! (unchanged), then — instead of leaving consolidation to a later offline
//! `convert` pass — feeds its extracted flat fragments to a per-stage
//! [`StageAssembler`], so the universal atom checkpoints materialize
//! *during* the overlapped persist and `latest_universal` is published
//! together with `latest` at drain time. Resume never needs a convert
//! pass.
//!
//! Roles per save step (all on the background "saver" threads):
//!
//! ```text
//! every rank      persist native files, extract flat fragments,
//!                 send one Contribution to its stage assembler
//! stage assembler (tp=0, zero=0 rank of each pp stage) absorb every
//!                 (tp, zero) contribution in order, scatter into atom
//!                 builders, write the stage's atoms durably,
//!                 send StageDone to the publisher
//! publisher       (cluster rank 0) collect StageDone from every stage,
//!                 write the manifest durably
//! ```
//!
//! The foreground training threads never wait on any of this: at the next
//! checkpoint boundary they wait only for the drained step's *native
//! persist* and publish `latest`, then notify rank 0's writer — which
//! publishes `latest_universal` itself once its manifest is durable. Atom
//! assembly therefore never sits on the training critical path; the full
//! writer join happens at run end. Commit ordering — atoms → manifest →
//! `latest` → `latest_universal` — is preserved because the writer only
//! writes the universal marker after both its own manifest write and the
//! native-publish notification, and a monotonic floor guard keeps late
//! writers from moving the marker backwards.
//!
//! Messages move over a disposable per-step all-to-all mesh
//! ([`ucp_collectives::exchange`]) created before the cluster fan-out: the
//! training fabric stays untouched, and a writer that dies mid-save
//! surfaces at its peers as a prompt `Disconnected` instead of a hang.

use std::collections::HashMap;
use std::path::Path;
use std::time::{Duration, Instant};

use ucp_collectives::exchange::{endpoints, Endpoint};
use ucp_core::assemble::{build_manifest, StageAssembler, StageAtoms};
use ucp_core::checkpoint::CommonState;
use ucp_core::ops::{extract_flat, Fragment};
use ucp_parallel::{ParallelConfig, RankCoord};
use ucp_storage::layout as disk;
use ucp_telemetry::{trace, TraceCat};

use crate::snapshot::CheckpointSnapshot;
use crate::TrainError;

/// How long a writer waits on a peer contribution before declaring the
/// save failed. Generous: the peer is another local background thread, so
/// getting anywhere near this means it hung without dropping its endpoint.
const EXCHANGE_DEADLINE: Duration = Duration::from_secs(60);

/// Worker threads each stage assembler uses to write its atoms.
const ATOM_WRITE_WORKERS: usize = 2;

/// One message of the save exchange.
pub enum PipeMsg {
    /// A rank's extracted flat fragments for its stage's assembler.
    Contribution {
        /// Sender's TP coordinate.
        tp: usize,
        /// Sender's ZeRO index (dp × sp composed).
        zi: usize,
        /// Sender's common state (the assembler derives patterns from it).
        common: Box<CommonState>,
        /// Stage parameter names, in flat-layout slot order.
        params: Vec<String>,
        /// `(param, state-key index, fragment)` triples.
        fragments: Vec<(String, usize, Fragment)>,
    },
    /// A stage assembler's completion notice for the publisher.
    StageDone {
        /// The completed stage.
        pp: usize,
        /// What was written.
        atoms: StageAtoms,
    },
}

/// The cluster rank that assembles a stage's atoms: its (tp=0, zero=0)
/// member.
pub fn assembler_rank(p: &ParallelConfig, pp: usize) -> usize {
    p.rank_of(RankCoord {
        dp: 0,
        sp: 0,
        tp: 0,
        pp,
    })
}

/// One background writer's handle on a save step's exchange.
pub struct WriterTask {
    endpoint: Endpoint<PipeMsg>,
    /// Rank 0's writer additionally publishes `latest_universal`.
    publish: Option<PublishTask>,
}

/// What rank 0's writer needs to publish the universal marker off the
/// training critical path.
struct PublishTask {
    /// Fired by rank 0's *training* thread right after the step's native
    /// `latest` marker is durable — the marker-ordering gate.
    native_published: std::sync::mpsc::Receiver<()>,
    /// Serializes marker writes across concurrently-finishing steps so a
    /// slow older writer can never move `latest_universal` backwards.
    marker_lock: std::sync::Arc<parking_lot::Mutex<()>>,
}

/// One save step's pre-wired state.
struct StepPipeline {
    endpoints: Vec<Option<Endpoint<PipeMsg>>>,
    native_published: Option<std::sync::mpsc::Receiver<()>>,
}

/// Pre-created exchanges, one per planned save step. Built on the
/// launching thread before the cluster fan-out so all ranks' writers share
/// one mesh; each rank takes its endpoint exactly once.
pub struct SavePipelines {
    steps: parking_lot::Mutex<HashMap<u64, StepPipeline>>,
    /// Senders for the per-step native-publish notifications, fired by
    /// rank 0's training thread via [`SavePipelines::notify_native_published`].
    notifiers: parking_lot::Mutex<HashMap<u64, std::sync::mpsc::Sender<()>>>,
    marker_lock: std::sync::Arc<parking_lot::Mutex<()>>,
}

impl SavePipelines {
    /// Wire an exchange for every step in `save_steps`.
    pub fn new(world: usize, save_steps: impl IntoIterator<Item = u64>) -> SavePipelines {
        let mut steps = HashMap::new();
        let mut notifiers = HashMap::new();
        for s in save_steps {
            let (tx, rx) = std::sync::mpsc::channel();
            notifiers.insert(s, tx);
            steps.insert(
                s,
                StepPipeline {
                    endpoints: endpoints::<PipeMsg>(world).into_iter().map(Some).collect(),
                    native_published: Some(rx),
                },
            );
        }
        SavePipelines {
            steps: parking_lot::Mutex::new(steps),
            notifiers: parking_lot::Mutex::new(notifiers),
            marker_lock: std::sync::Arc::new(parking_lot::Mutex::new(())),
        }
    }

    /// Claim rank `rank`'s endpoint for `step` (None if the step has no
    /// pipeline or the endpoint was already taken). Rank 0's task also
    /// carries the universal-marker publish duty.
    pub fn take(&self, step: u64, rank: usize) -> Option<WriterTask> {
        let mut steps = self.steps.lock();
        let sp = steps.get_mut(&step)?;
        let endpoint = sp.endpoints.get_mut(rank)?.take()?;
        let publish = (rank == 0).then(|| PublishTask {
            native_published: sp
                .native_published
                .take()
                .expect("rank 0 claims its endpoint once"),
            marker_lock: self.marker_lock.clone(),
        });
        Some(WriterTask { endpoint, publish })
    }

    /// Tell `step`'s writer that the native `latest` marker is durable, so
    /// it may publish `latest_universal` once its manifest is too. Called
    /// by rank 0's training thread; a no-op for unknown steps. Dropping
    /// `SavePipelines` without this call unblocks the writer instead of
    /// hanging it (it then skips the universal publish).
    pub fn notify_native_published(&self, step: u64) {
        if let Some(tx) = self.notifiers.lock().remove(&step) {
            let _ = tx.send(());
        }
    }
}

/// The universal half of one rank's background save, run on the saver
/// thread right after the native persist succeeds. See the module docs
/// for the role split.
pub(crate) fn run_writer(
    task: WriterTask,
    snapshot: &CheckpointSnapshot,
    base: &Path,
) -> Result<(), TrainError> {
    let p = snapshot.common.parallel;
    let WriterTask {
        endpoint: ep,
        publish,
    } = task;
    let rank = ep.rank();
    let step = snapshot.common.iteration;
    let universal = disk::universal_dir(base, step);

    // Every rank: extract this chunk's flat fragments and contribute them
    // to the stage's assembler.
    let t_ex = ucp_telemetry::enabled().then(Instant::now);
    {
        let _sp = trace::span(TraceCat::Checkpoint, "exchange");
        let shard = &snapshot.shard;
        let keys: [&[f32]; 3] = [&shard.fp32, &shard.exp_avg, &shard.exp_avg_sq];
        let mut fragments = Vec::new();
        for (ki, chunk) in keys.into_iter().enumerate() {
            for (name, frag) in extract_flat(&shard.layout, shard.dp, chunk) {
                fragments.push((name, ki, frag));
            }
        }
        let params: Vec<String> = shard.layout.slots.iter().map(|s| s.name.clone()).collect();
        ep.send(
            assembler_rank(&p, snapshot.pp),
            PipeMsg::Contribution {
                tp: snapshot.tp,
                zi: shard.dp,
                common: Box::new(snapshot.common.clone()),
                params,
                fragments,
            },
        )
        .map_err(TrainError::Comm)?;
    }
    if let Some(t) = t_ex {
        ucp_telemetry::global().record_span("save/exchange", t.elapsed());
    }

    // Stage assembler: absorb every (tp, zero) contribution of this stage
    // — ascending tp, so replicated copies verify against the tp-0 one —
    // then write the stage's atoms durably.
    if rank == assembler_rank(&p, snapshot.pp) {
        let t_as = ucp_telemetry::enabled().then(Instant::now);
        let asm = {
            let _sp = trace::span(TraceCat::Checkpoint, "assemble");
            let mut asm: Option<StageAssembler> = None;
            let zero = p.dp * p.sp;
            for tp in 0..p.tp {
                for z in 0..zero {
                    let src = p.rank_of(RankCoord {
                        dp: z / p.sp,
                        sp: z % p.sp,
                        tp,
                        pp: snapshot.pp,
                    });
                    let msg = ep
                        .recv_from(src, EXCHANGE_DEADLINE)
                        .map_err(TrainError::Comm)?;
                    let PipeMsg::Contribution {
                        tp: mtp,
                        common,
                        params,
                        fragments,
                        ..
                    } = msg
                    else {
                        return Err(TrainError::Config(
                            "save pipeline: expected a contribution".into(),
                        ));
                    };
                    let a = match &mut asm {
                        Some(a) => a,
                        None => asm.insert(
                            StageAssembler::new(&universal, &common, snapshot.pp, &params, true)
                                .map_err(TrainError::Ucp)?,
                        ),
                    };
                    a.absorb(mtp, fragments).map_err(TrainError::Ucp)?;
                }
            }
            asm.ok_or_else(|| TrainError::Config("save pipeline: stage has no ranks".into()))?
        };
        if let Some(t) = t_as {
            ucp_telemetry::global().record_span("save/assemble", t.elapsed());
        }
        let t_at = ucp_telemetry::enabled().then(Instant::now);
        let atoms = {
            let _sp = trace::span(TraceCat::Checkpoint, "atoms");
            asm.finalize(ATOM_WRITE_WORKERS, "save/atom_write")
                .map_err(TrainError::Ucp)?
        };
        if let Some(t) = t_at {
            ucp_telemetry::global().record_span("save/atoms", t.elapsed());
            ucp_telemetry::count("save/universal_atoms", atoms.atoms_written as u64);
            ucp_telemetry::count("save/universal_bytes", atoms.bytes_written);
        }
        ep.send(
            0,
            PipeMsg::StageDone {
                pp: snapshot.pp,
                atoms,
            },
        )
        .map_err(TrainError::Comm)?;
    }

    // Publisher: merge the per-stage atom indices and commit the manifest,
    // then — once the training thread reports the step's native `latest`
    // is durable — publish `latest_universal`, closing the atoms →
    // manifest → latest → latest_universal ordering. All of it on this
    // writer thread: training never blocks on the universal half.
    if rank == 0 {
        {
            let t_m = ucp_telemetry::enabled().then(Instant::now);
            let _sp = trace::span(TraceCat::Checkpoint, "manifest");
            let mut metas = Vec::new();
            for pp in 0..p.pp {
                let src = assembler_rank(&p, pp);
                let msg = ep
                    .recv_from(src, EXCHANGE_DEADLINE)
                    .map_err(TrainError::Comm)?;
                let PipeMsg::StageDone { atoms, .. } = msg else {
                    return Err(TrainError::Config(
                        "save pipeline: expected a stage-done notice".into(),
                    ));
                };
                metas.extend(atoms.metas);
            }
            let manifest = build_manifest(&snapshot.common, metas);
            manifest.save(&universal).map_err(TrainError::Ucp)?;
            if let Some(t) = t_m {
                ucp_telemetry::global().record_span("save/manifest", t.elapsed());
            }
        }
        let publish = publish.ok_or_else(|| {
            TrainError::Config("save pipeline: rank 0 task missing its publish duty".into())
        })?;
        let t_p = ucp_telemetry::enabled().then(Instant::now);
        let _sp = trace::span(TraceCat::Checkpoint, "publish_universal");
        match publish.native_published.recv_timeout(EXCHANGE_DEADLINE) {
            Ok(()) => {
                // Serialize against other steps' writers and never move
                // the marker backwards: a slow step-N writer finishing
                // after step-N+k published must not regress it.
                let _guard = publish.marker_lock.lock();
                if disk::read_latest_universal(base).is_none_or(|cur| step > cur) {
                    disk::write_latest_universal(base, step)
                        .map_err(|e| TrainError::Ucp(e.into()))?;
                    // Journal under the marker lock so records land in
                    // marker-publication order.
                    ucp_storage::journal::append(
                        base,
                        &ucp_storage::journal::JournalEvent::UniversalPublished { step },
                    )
                    .map_err(|e| TrainError::Ucp(e.into()))?;
                }
            }
            // The run was torn down before this step's native marker was
            // published (error or early exit): leave the universal marker
            // alone — whatever failed the run reports the real error.
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                return Err(TrainError::Config(
                    "save pipeline: timed out waiting for the native publish".into(),
                ));
            }
        }
        if let Some(t) = t_p {
            ucp_telemetry::global().record_span("save/publish_universal", t.elapsed());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_parallel::ZeroStage;

    #[test]
    fn assembler_is_stage_leader() {
        let p = ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1);
        for pp in 0..p.pp {
            let r = assembler_rank(&p, pp);
            let c = p.coord(r);
            assert_eq!((c.tp, c.dp, c.sp, c.pp), (0, 0, 0, pp));
        }
    }

    #[test]
    fn endpoints_claimed_once() {
        let pipes = SavePipelines::new(2, [4u64]);
        assert!(pipes.take(4, 0).is_some());
        assert!(pipes.take(4, 0).is_none(), "endpoint is single-use");
        assert!(pipes.take(4, 1).is_some());
        assert!(pipes.take(6, 0).is_none(), "step 6 has no pipeline");
    }
}
