//! The born-universal save pipeline: save → convert → publish as one
//! overlapped background flow.
//!
//! At every checkpoint boundary of [`crate::driver::train_run_overlapped`]
//! each rank's background writer first persists its native fragments
//! (unchanged), then — instead of leaving consolidation to a later offline
//! `convert` pass — feeds its extracted flat fragments to a per-stage
//! [`StageAssembler`], so the universal atom checkpoints materialize
//! *during* the overlapped persist and `latest_universal` is published
//! together with `latest` at drain time. Resume never needs a convert
//! pass.
//!
//! Roles per save step (all on the background "saver" threads):
//!
//! ```text
//! every rank      persist native files, extract flat fragments,
//!                 send one Contribution to its stage assembler
//!                 (filtered to the snapshot's dirty ranges)
//! stage assembler (tp=0, zero=0 rank of each pp stage) absorb every
//!                 (tp, zero) contribution in order, patch them into the
//!                 stage's carried atom builders, rewrite dirty atoms and
//!                 hard-link clean ones, send StageDone to the publisher
//! publisher       (cluster rank 0) collect StageDone from every stage,
//!                 write the manifest durably
//! ```
//!
//! The foreground training threads never wait on any of this: at the next
//! checkpoint boundary they wait only for the drained step's *native
//! persist* and publish `latest`, then notify rank 0's writer — which
//! publishes `latest_universal` itself once its manifest is durable. Atom
//! assembly therefore never sits on the training critical path; the full
//! writer join happens at run end. Commit ordering — atoms → manifest →
//! `latest` → `latest_universal` — is preserved because the writer only
//! writes the universal marker after both its own manifest write and the
//! native-publish notification, and a monotonic floor guard keeps late
//! writers from moving the marker backwards.
//!
//! Messages move over one *persistent* all-to-all mesh
//! ([`ucp_collectives::exchange::Mesh`]) built once at run start: each
//! save step leases the fabric under its step number as the epoch tag, so
//! the O(world²) channel wiring is paid once instead of per save — the
//! fixed cost that dominates at `checkpoint_every = 1`. Per-pair FIFO
//! within a step and prompt `Disconnected` on a dead writer are preserved
//! by the epoch demultiplexer. Likewise each stage's [`StageAssembler`]
//! is carried across steps in a [`StageChain`]: consecutive saves patch
//! the consolidated buffers with just the dirty fragments and re-publish
//! untouched atoms as hard links to the previous step's files, so save
//! bytes scale with what training actually touched. Consecutive steps of
//! one stage must finalize in order for that patching to be sound, which
//! the per-rank done-chain enforces (each writer waits for its rank's
//! predecessor before touching the chain).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ucp_collectives::exchange::{EpochLease, Mesh};
use ucp_core::assemble::{build_manifest, StageAssembler, StageAtoms};
use ucp_core::checkpoint::CommonState;
use ucp_core::ops::{extract_flat, Fragment};
use ucp_parallel::{ParallelConfig, RankCoord};
use ucp_storage::layout as disk;
use ucp_storage::retention::InFlightGuard;
use ucp_telemetry::{trace, TraceCat};

use crate::dirty::DirtyMap;
use crate::snapshot::CheckpointSnapshot;
use crate::TrainError;

/// How long a writer waits on a peer contribution before declaring the
/// save failed. Generous: the peer is another local background thread, so
/// getting anywhere near this means it hung without dropping its lease.
const EXCHANGE_DEADLINE: Duration = Duration::from_secs(60);

/// Worker threads each stage assembler uses to write its atoms.
const ATOM_WRITE_WORKERS: usize = 2;

/// Snapshot buffers per rank: the one being captured plus the in-flight
/// background writes the driver allows before it starts draining.
pub const SNAPSHOT_POOL_CAPACITY: usize = 3;

/// One message of the save exchange.
pub enum PipeMsg {
    /// A rank's extracted flat fragments for its stage's assembler.
    Contribution {
        /// Sender's TP coordinate.
        tp: usize,
        /// Sender's ZeRO index (dp × sp composed).
        zi: usize,
        /// Sender's common state (the assembler derives patterns from it).
        common: Box<CommonState>,
        /// Stage parameter names, in flat-layout slot order.
        params: Vec<String>,
        /// `(param, state-key index, fragment)` triples. Filtered to the
        /// snapshot's dirty ranges — possibly empty, but always sent, so
        /// the assembler's receive schedule never depends on dirtiness.
        fragments: Vec<(String, usize, Fragment)>,
    },
    /// A stage assembler's completion notice for the publisher.
    StageDone {
        /// The completed stage.
        pp: usize,
        /// What was written.
        atoms: StageAtoms,
    },
}

/// The cluster rank that assembles a stage's atoms: its (tp=0, zero=0)
/// member.
pub fn assembler_rank(p: &ParallelConfig, pp: usize) -> usize {
    p.rank_of(RankCoord {
        dp: 0,
        sp: 0,
        tp: 0,
        pp,
    })
}

/// Carried assembler state for one pipeline stage, shared by consecutive
/// save steps. The lock is held across a whole step's absorb + finalize,
/// and the done-chain guarantees steps enter in order.
struct StageChain {
    inner: parking_lot::Mutex<ChainState>,
}

impl Default for StageChain {
    fn default() -> StageChain {
        StageChain {
            inner: parking_lot::Mutex::new(ChainState::default()),
        }
    }
}

#[derive(Default)]
struct ChainState {
    /// The stage's assembler, kept warm across steps (consolidated
    /// buffers, run maps, atom builders). `None` until the first save.
    asm: Option<StageAssembler>,
    /// The previous finalized step: hard-link source for clean atoms,
    /// pinned against retention pruning until the next step finalizes.
    prev: Option<PrevStep>,
}

struct PrevStep {
    dir: PathBuf,
    _pin: InFlightGuard,
}

/// Fires its signal on drop — even when the writer panics — so the next
/// writer of the same rank never waits on a dead predecessor.
struct DoneSignal(Option<Sender<()>>);

impl Drop for DoneSignal {
    fn drop(&mut self) {
        if let Some(tx) = self.0.take() {
            let _ = tx.send(());
        }
    }
}

/// One background writer's handle on a save step's exchange.
pub struct WriterTask {
    lease: EpochLease<PipeMsg>,
    /// Completion signal of this rank's previous writer; assemblers wait
    /// on it so consecutive steps patch the stage chain in order.
    prev_done: Option<Receiver<()>>,
    /// Signals this writer's completion to its rank's next writer.
    done: DoneSignal,
    /// Per-stage carry-over assemblers, shared with every other step.
    chains: Arc<parking_lot::Mutex<HashMap<usize, Arc<StageChain>>>>,
    /// Rank 0's writer additionally publishes `latest_universal`.
    publish: Option<PublishTask>,
}

/// What rank 0's writer needs to publish the universal marker off the
/// training critical path.
struct PublishTask {
    /// Fired by rank 0's *training* thread right after the step's native
    /// `latest` marker is durable — the marker-ordering gate.
    native_published: std::sync::mpsc::Receiver<()>,
    /// Serializes marker writes across concurrently-finishing steps so a
    /// slow older writer can never move `latest_universal` backwards.
    marker_lock: std::sync::Arc<parking_lot::Mutex<()>>,
}

/// The save exchange fabric, built once per run and leased to every save
/// step. Construction is O(world²) in channels but independent of how
/// many saves the run performs — at `checkpoint_every = 1` that is the
/// difference between wiring the mesh once and wiring it every iteration.
pub struct SavePipelines {
    mesh: Mesh<PipeMsg>,
    /// Highest step each rank has claimed: a (step, rank) lease is handed
    /// out at most once, and claims are monotonic per rank.
    last_taken: parking_lot::Mutex<Vec<Option<u64>>>,
    /// Per-rank completion receiver of the most recently taken writer,
    /// handed to the next one (the done-chain).
    prev_done: parking_lot::Mutex<Vec<Option<Receiver<()>>>>,
    /// Senders for the per-step native-publish notifications, fired by
    /// rank 0's training thread via [`SavePipelines::notify_native_published`].
    notifiers: parking_lot::Mutex<HashMap<u64, std::sync::mpsc::Sender<()>>>,
    marker_lock: std::sync::Arc<parking_lot::Mutex<()>>,
    chains: Arc<parking_lot::Mutex<HashMap<usize, Arc<StageChain>>>>,
}

impl SavePipelines {
    /// Build the persistent fabric for a `world`-rank run. No save steps
    /// need to be declared up front — any step can lease the mesh, so
    /// dynamic cadences (and chaos schedules) need no pre-planning.
    pub fn new(world: usize) -> SavePipelines {
        SavePipelines {
            mesh: Mesh::new(world),
            last_taken: parking_lot::Mutex::new(vec![None; world]),
            prev_done: parking_lot::Mutex::new((0..world).map(|_| None).collect()),
            notifiers: parking_lot::Mutex::new(HashMap::new()),
            marker_lock: std::sync::Arc::new(parking_lot::Mutex::new(())),
            chains: Arc::new(parking_lot::Mutex::new(HashMap::new())),
        }
    }

    /// Claim rank `rank`'s lease for `step` (None if the rank is out of
    /// range or already claimed this or a later step — leases stay
    /// single-use per (step, rank) and monotonic per rank). Rank 0's task
    /// also carries the universal-marker publish duty.
    pub fn take(&self, step: u64, rank: usize) -> Option<WriterTask> {
        {
            let mut last = self.last_taken.lock();
            let slot = last.get_mut(rank)?;
            if slot.is_some_and(|s| s >= step) {
                return None;
            }
            if slot.is_some() {
                // Reusing the fabric rather than wiring a fresh one: the
                // saving the persistent mesh exists to provide.
                ucp_telemetry::count("save/mesh_reuse", 1);
            }
            *slot = Some(step);
        }
        let lease = self.mesh.lease(rank, step);
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let prev_done = self.prev_done.lock()[rank].replace(done_rx);
        let publish = (rank == 0).then(|| {
            let (tx, rx) = std::sync::mpsc::channel();
            self.notifiers.lock().insert(step, tx);
            PublishTask {
                native_published: rx,
                marker_lock: self.marker_lock.clone(),
            }
        });
        Some(WriterTask {
            lease,
            prev_done,
            done: DoneSignal(Some(done_tx)),
            chains: Arc::clone(&self.chains),
            publish,
        })
    }

    /// Tell `step`'s writer that the native `latest` marker is durable, so
    /// it may publish `latest_universal` once its manifest is too. Called
    /// by rank 0's training thread; a no-op for unknown steps. Dropping
    /// `SavePipelines` without this call unblocks the writer instead of
    /// hanging it (it then skips the universal publish).
    pub fn notify_native_published(&self, step: u64) {
        if let Some(tx) = self.notifiers.lock().remove(&step) {
            let _ = tx.send(());
        }
    }
}

/// Intersect one extracted fragment with its parameter's dirty ranges.
/// `None` dirty info keeps the whole fragment (full save); a parameter
/// absent from the map is clean everywhere and contributes nothing.
fn filter_dirty(name: &str, frag: Fragment, dirty: Option<&DirtyMap>) -> Vec<Fragment> {
    let Some(map) = dirty else {
        return vec![frag];
    };
    let Some(ranges) = map.get(name) else {
        return Vec::new();
    };
    let f_lo = frag.param_offset;
    let f_hi = f_lo + frag.data.len();
    let mut out = Vec::new();
    for &(lo, len) in ranges {
        let hi = lo + len;
        if lo <= f_lo && hi >= f_hi {
            // One range covers the whole fragment: forward it unsliced.
            return vec![frag];
        }
        let s = lo.max(f_lo);
        let e = hi.min(f_hi);
        if s < e {
            out.push(Fragment {
                param_offset: s,
                data: frag.data[s - f_lo..e - f_lo].to_vec(),
            });
        }
    }
    out
}

/// The universal half of one rank's background save, run on the saver
/// thread right after the native persist succeeds. See the module docs
/// for the role split.
pub(crate) fn run_writer(
    task: WriterTask,
    snapshot: &CheckpointSnapshot,
    base: &Path,
) -> Result<(), TrainError> {
    let p = snapshot.common.parallel;
    let WriterTask {
        lease,
        prev_done,
        done,
        chains,
        publish,
    } = task;
    let rank = lease.rank();
    let step = snapshot.common.iteration;
    let universal = disk::universal_dir(base, step);

    // Every rank: extract this chunk's flat fragments, keep the dirty
    // sub-ranges, and contribute them to the stage's assembler. The
    // contribution is sent even when everything is clean — the assembler
    // counts arrivals, not bytes.
    let t_ex = ucp_telemetry::enabled().then(Instant::now);
    {
        let _sp = trace::span(TraceCat::Checkpoint, "exchange");
        let shard = &snapshot.shard;
        let keys: [&[f32]; 3] = [&shard.fp32, &shard.exp_avg, &shard.exp_avg_sq];
        let mut fragments = Vec::new();
        let mut sent_elems: u64 = 0;
        for (ki, chunk) in keys.into_iter().enumerate() {
            for (name, frag) in extract_flat(&shard.layout, shard.dp, chunk) {
                for part in filter_dirty(&name, frag, snapshot.dirty.as_ref()) {
                    sent_elems += part.data.len() as u64;
                    fragments.push((name.clone(), ki, part));
                }
            }
        }
        if ucp_telemetry::enabled() {
            ucp_telemetry::count("save/exchange_bytes", sent_elems * 4);
        }
        let params: Vec<String> = shard.layout.slots.iter().map(|s| s.name.clone()).collect();
        lease
            .send(
                assembler_rank(&p, snapshot.pp),
                PipeMsg::Contribution {
                    tp: snapshot.tp,
                    zi: shard.dp,
                    common: Box::new(snapshot.common.clone()),
                    params,
                    fragments,
                },
            )
            .map_err(TrainError::Comm)?;
    }
    if let Some(t) = t_ex {
        ucp_telemetry::global().record_span("save/exchange", t.elapsed());
    }

    // Stage assembler: absorb every (tp, zero) contribution of this stage
    // — ascending tp, so replicated copies verify against the tp-0 one —
    // then publish the stage's atoms: dirty ones rewritten from the
    // patched buffers, clean ones hard-linked from the previous step.
    if rank == assembler_rank(&p, snapshot.pp) {
        // Consecutive steps patch the same carried buffers, so they must
        // finalize in step order: wait for this rank's previous writer
        // (the signal also fires if it died — its failure is reported on
        // its own save; this step then simply patches on top).
        if let Some(prev) = &prev_done {
            match prev.recv_timeout(EXCHANGE_DEADLINE) {
                Ok(()) | Err(RecvTimeoutError::Disconnected) => {}
                Err(RecvTimeoutError::Timeout) => {
                    return Err(TrainError::Config(
                        "save pipeline: timed out waiting for the previous step's writer".into(),
                    ));
                }
            }
        }
        let chain = {
            let mut chains = chains.lock();
            Arc::clone(chains.entry(snapshot.pp).or_default())
        };
        let mut state = chain.inner.lock();
        let t_as = ucp_telemetry::enabled().then(Instant::now);
        {
            let _sp = trace::span(TraceCat::Checkpoint, "assemble");
            if let Some(asm) = state.asm.as_mut() {
                asm.begin_step(&universal).map_err(TrainError::Ucp)?;
            }
            let zero = p.dp * p.sp;
            for tp in 0..p.tp {
                for z in 0..zero {
                    let src = p.rank_of(RankCoord {
                        dp: z / p.sp,
                        sp: z % p.sp,
                        tp,
                        pp: snapshot.pp,
                    });
                    let msg = lease
                        .recv_from(src, EXCHANGE_DEADLINE)
                        .map_err(TrainError::Comm)?;
                    let PipeMsg::Contribution {
                        tp: mtp,
                        common,
                        params,
                        fragments,
                        ..
                    } = msg
                    else {
                        return Err(TrainError::Config(
                            "save pipeline: expected a contribution".into(),
                        ));
                    };
                    let a = match &mut state.asm {
                        Some(a) => a,
                        None => state.asm.insert(
                            StageAssembler::new(&universal, &common, snapshot.pp, &params, true)
                                .map_err(TrainError::Ucp)?,
                        ),
                    };
                    a.absorb(mtp, fragments).map_err(TrainError::Ucp)?;
                }
            }
        }
        if let Some(t) = t_as {
            ucp_telemetry::global().record_span("save/assemble", t.elapsed());
        }
        let t_at = ucp_telemetry::enabled().then(Instant::now);
        let atoms = {
            let _sp = trace::span(TraceCat::Checkpoint, "atoms");
            let link_from = state.prev.as_ref().map(|prev| prev.dir.clone());
            let asm = state
                .asm
                .as_mut()
                .ok_or_else(|| TrainError::Config("save pipeline: stage has no ranks".into()))?;
            asm.finalize_step(ATOM_WRITE_WORKERS, "save/atom_write", link_from.as_deref())
                .map_err(TrainError::Ucp)?
        };
        // Rotate the hard-link source: this step's atoms must survive
        // retention pruning until the *next* step finalizes against them.
        state.prev = Some(PrevStep {
            dir: universal.clone(),
            _pin: ucp_storage::retention::begin_save(base, step),
        });
        drop(state);
        if let Some(t) = t_at {
            ucp_telemetry::global().record_span("save/atoms", t.elapsed());
            ucp_telemetry::count(
                "save/universal_atoms",
                (atoms.atoms_written + atoms.atoms_skipped) as u64,
            );
            ucp_telemetry::count("save/universal_bytes", atoms.bytes_written);
            ucp_telemetry::count("save/atoms_written", atoms.atoms_written as u64);
            ucp_telemetry::count("save/atoms_skipped", atoms.atoms_skipped as u64);
        }
        lease
            .send(
                0,
                PipeMsg::StageDone {
                    pp: snapshot.pp,
                    atoms,
                },
            )
            .map_err(TrainError::Comm)?;
    }

    // Publisher: merge the per-stage atom indices and commit the manifest,
    // then — once the training thread reports the step's native `latest`
    // is durable — publish `latest_universal`, closing the atoms →
    // manifest → latest → latest_universal ordering. All of it on this
    // writer thread: training never blocks on the universal half.
    if rank == 0 {
        {
            let t_m = ucp_telemetry::enabled().then(Instant::now);
            let _sp = trace::span(TraceCat::Checkpoint, "manifest");
            let mut metas = Vec::new();
            for pp in 0..p.pp {
                let src = assembler_rank(&p, pp);
                let msg = lease
                    .recv_from(src, EXCHANGE_DEADLINE)
                    .map_err(TrainError::Comm)?;
                let PipeMsg::StageDone { atoms, .. } = msg else {
                    return Err(TrainError::Config(
                        "save pipeline: expected a stage-done notice".into(),
                    ));
                };
                metas.extend(atoms.metas);
            }
            let manifest = build_manifest(&snapshot.common, metas);
            manifest.save(&universal).map_err(TrainError::Ucp)?;
            if let Some(t) = t_m {
                ucp_telemetry::global().record_span("save/manifest", t.elapsed());
            }
        }
        let publish = publish.ok_or_else(|| {
            TrainError::Config("save pipeline: rank 0 task missing its publish duty".into())
        })?;
        let t_p = ucp_telemetry::enabled().then(Instant::now);
        let _sp = trace::span(TraceCat::Checkpoint, "publish_universal");
        match publish.native_published.recv_timeout(EXCHANGE_DEADLINE) {
            Ok(()) => {
                // Serialize against other steps' writers and never move
                // the marker backwards: a slow step-N writer finishing
                // after step-N+k published must not regress it.
                let _guard = publish.marker_lock.lock();
                if disk::read_latest_universal(base).is_none_or(|cur| step > cur) {
                    disk::write_latest_universal(base, step)
                        .map_err(|e| TrainError::Ucp(e.into()))?;
                    // Journal under the marker lock so records land in
                    // marker-publication order.
                    ucp_storage::journal::append(
                        base,
                        &ucp_storage::journal::JournalEvent::UniversalPublished { step },
                    )
                    .map_err(|e| TrainError::Ucp(e.into()))?;
                }
            }
            // The run was torn down before this step's native marker was
            // published (error or early exit): leave the universal marker
            // alone — whatever failed the run reports the real error.
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                return Err(TrainError::Config(
                    "save pipeline: timed out waiting for the native publish".into(),
                ));
            }
        }
        if let Some(t) = t_p {
            ucp_telemetry::global().record_span("save/publish_universal", t.elapsed());
        }
    }
    // Clean completion: retire the epoch without broadcasting aborts, and
    // only then wake this rank's next writer.
    lease.finish();
    drop(done);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucp_parallel::ZeroStage;

    #[test]
    fn assembler_is_stage_leader() {
        let p = ParallelConfig::new(2, 2, 2, 1, ZeroStage::Zero1);
        for pp in 0..p.pp {
            let r = assembler_rank(&p, pp);
            let c = p.coord(r);
            assert_eq!((c.tp, c.dp, c.sp, c.pp), (0, 0, 0, pp));
        }
    }

    #[test]
    fn leases_are_single_use_and_monotonic_per_rank() {
        let pipes = SavePipelines::new(2);
        assert!(pipes.take(4, 0).is_some());
        assert!(pipes.take(4, 0).is_none(), "lease is single-use");
        assert!(pipes.take(4, 1).is_some());
        assert!(pipes.take(3, 0).is_none(), "claims are monotonic per rank");
        // Any later step can lease the same fabric — no pre-planned
        // schedule — and out-of-range ranks are rejected.
        assert!(pipes.take(6, 0).is_some());
        assert!(pipes.take(7, 2).is_none(), "rank out of range");
    }

    #[test]
    fn writer_done_chain_links_consecutive_takes() {
        let pipes = SavePipelines::new(1);
        let first = pipes.take(1, 0).expect("first lease");
        assert!(
            first.prev_done.is_none(),
            "first writer of a rank has no predecessor"
        );
        let second = pipes.take(2, 0).expect("second lease");
        let prev = second.prev_done.as_ref().expect("chained to first writer");
        assert!(
            matches!(
                prev.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            ),
            "predecessor still alive: no signal yet"
        );
        drop(first);
        prev.recv_timeout(Duration::from_secs(5))
            .expect("dropping the first writer fires its done signal");
    }

    #[test]
    fn filter_dirty_intersects_fragments_with_ranges() {
        let frag = |off: usize, data: &[f32]| Fragment {
            param_offset: off,
            data: data.to_vec(),
        };
        // No dirty info: everything passes through.
        let full = filter_dirty("p", frag(2, &[1.0, 2.0, 3.0]), None);
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].param_offset, 2);

        let mut map = DirtyMap::new();
        map.insert("p".to_string(), vec![(0, 3), (5, 2)]);
        // Clean parameter: nothing survives.
        assert!(filter_dirty("q", frag(0, &[1.0; 4]), Some(&map)).is_empty());
        // Fragment [2, 8) against dirty [0, 3) ∪ [5, 7): two slices.
        let parts = filter_dirty("p", frag(2, &[2.0, 3.0, 4.0, 5.0, 6.0, 7.0]), Some(&map));
        assert_eq!(parts.len(), 2);
        assert_eq!(
            (parts[0].param_offset, parts[0].data.as_slice()),
            (2, &[2.0f32][..])
        );
        assert_eq!(
            (parts[1].param_offset, parts[1].data.as_slice()),
            (5, &[5.0f32, 6.0][..])
        );
        // A range covering the whole fragment forwards it unsliced.
        map.insert("w".to_string(), vec![(0, 100)]);
        let whole = filter_dirty("w", frag(10, &[1.0; 5]), Some(&map));
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].data.len(), 5);
    }
}
