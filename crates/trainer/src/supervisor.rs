//! Elastic recovery: rank-fault injection and a restart supervisor.
//!
//! The paper's motivating failure scenario is a rank dying mid-run and the
//! job resuming on whatever capacity survives, under a *different*
//! parallelism strategy. This module closes that loop in-process:
//!
//! - a deterministic **rank-fault injector** ([`RankFault`], mirroring the
//!   storage crate's `FaultPlan`): panic / hang / slow-down a chosen rank
//!   at a chosen step boundary, armed programmatically or via the
//!   `UCP_RANK_FAULTS` environment variable;
//! - a **supervisor** ([`supervise`]) that runs a training plan under
//!   [`Cluster::try_run_with`], and on a [`RankFailure`] tears the cluster
//!   down, consults the checkpoint directory for the latest committed
//!   step, degrades the topology to the next rung of a caller-provided
//!   ladder, converts the checkpoint to universal form if needed, and
//!   resumes — repeating until the plan completes or the restart budget is
//!   exhausted.
//!
//! Because resuming replays the loss trajectory deterministically, a
//! supervised run that survives faults is bitwise-comparable to a
//! fault-free run from the same checkpoint — the invariant
//! `tests/elastic_recovery.rs` asserts.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ucp_collectives::{Cluster, ClusterOptions, Comm, RankFailure};
use ucp_core::convert::ConvertOptions;
use ucp_parallel::ParallelConfig;
use ucp_storage::layout;
use ucp_telemetry::trace::{self, TraceCat};

use crate::driver::{collect_results, open_resume_session, ResumeMode, RunResult, TrainPlan};
use crate::engine::RankEngine;
use crate::TrainError;

/// What an injected fault does to its rank at the step boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic immediately — a hard crash the peers observe as a typed
    /// `PeerDead` within one watchdog tick.
    Panic,
    /// Stop participating in collectives without dying. Peers detect the
    /// hang via the watchdog deadline; once the cluster is poisoned the
    /// hung rank unwinds too (so the in-process harness can join it).
    Hang,
    /// Sleep this many milliseconds, then continue. A slow rank under the
    /// deadline is *not* a failure — the negative control.
    SlowMs(u64),
}

/// One scheduled rank fault: `kind` fires on `rank` just before it
/// executes training iteration `step` (0-based, i.e. after `step`
/// iterations have completed). Each fault fires at most once per
/// [`supervise`] call, so a fault at a replayed step does not re-kill the
/// resumed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankFault {
    /// Rank the fault targets (in the topology active when it fires).
    pub rank: usize,
    /// Iteration boundary at which it fires.
    pub step: u64,
    /// What happens.
    pub kind: FaultKind,
}

impl RankFault {
    /// Parse one `rank=R,step=S,kind=K` clause (`K` ∈ `panic` | `hang` |
    /// `slow:<ms>`).
    fn parse(clause: &str) -> Result<RankFault, String> {
        let (mut rank, mut step, mut kind) = (None, None, None);
        for part in clause.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            match key.trim() {
                "rank" => {
                    rank = Some(
                        value
                            .trim()
                            .parse::<usize>()
                            .map_err(|e| format!("bad rank {value:?}: {e}"))?,
                    )
                }
                "step" => {
                    step = Some(
                        value
                            .trim()
                            .parse::<u64>()
                            .map_err(|e| format!("bad step {value:?}: {e}"))?,
                    )
                }
                "kind" => {
                    let value = value.trim();
                    kind = Some(match value {
                        "panic" => FaultKind::Panic,
                        "hang" => FaultKind::Hang,
                        _ => match value.strip_prefix("slow:") {
                            Some(ms) => FaultKind::SlowMs(
                                ms.parse().map_err(|e| format!("bad slow ms {ms:?}: {e}"))?,
                            ),
                            None => return Err(format!("unknown fault kind {value:?}")),
                        },
                    })
                }
                other => return Err(format!("unknown fault field {other:?}")),
            }
        }
        Ok(RankFault {
            rank: rank.ok_or("fault clause missing rank=")?,
            step: step.ok_or("fault clause missing step=")?,
            kind: kind.ok_or("fault clause missing kind=")?,
        })
    }
}

/// Environment variable holding `;`-separated fault clauses, e.g.
/// `UCP_RANK_FAULTS="rank=1,step=3,kind=panic;rank=0,step=5,kind=hang"`.
pub const RANK_FAULTS_ENV: &str = "UCP_RANK_FAULTS";

/// Parse [`RANK_FAULTS_ENV`] (empty vec when unset).
pub fn faults_from_env() -> Result<Vec<RankFault>, String> {
    let Ok(spec) = std::env::var(RANK_FAULTS_ENV) else {
        return Ok(Vec::new());
    };
    parse_faults(&spec)
}

/// Parse a `;`-separated fault schedule string.
pub fn parse_faults(spec: &str) -> Result<Vec<RankFault>, String> {
    spec.split(';')
        .map(str::trim)
        .filter(|c| !c.is_empty())
        .map(RankFault::parse)
        .collect()
}

/// A fault plus its once-only trigger state, shared across restarts.
/// `fired_segment` records which supervised segment the fault fired in,
/// so the recovery path can tell a *co-scheduled* fault (fired in the
/// segment that just died — its rank's memory is gone too) from one that
/// fired before an earlier restart.
struct ArmedFault {
    fault: RankFault,
    fired: AtomicBool,
    fired_segment: AtomicUsize,
}

/// The injection hook: called by the supervised training loop at every
/// step boundary, on every rank. Panics (by design) when a `Panic` or
/// `Hang` fault fires — [`Cluster::try_run_with`] converts the unwind into
/// a structured [`RankFailure`].
fn fault_point(armed: &[ArmedFault], comm: &Comm, step: u64, segment: usize) {
    for a in armed {
        if a.fault.rank != comm.rank() || a.fault.step != step {
            continue;
        }
        if a.fired.swap(true, Ordering::SeqCst) {
            continue; // already fired in an earlier segment
        }
        a.fired_segment.store(segment, Ordering::SeqCst);
        match a.fault.kind {
            FaultKind::Panic => {
                panic!("injected fault: rank {} panics at step {step}", comm.rank())
            }
            FaultKind::Hang => {
                // Stop participating. Peers blocked on this rank trip the
                // watchdog deadline and poison the cluster; only then does
                // this rank unwind (a real hang would never return, but the
                // in-process harness must join every thread).
                let tick = Duration::from_millis(2);
                while !comm.poisoned() {
                    std::thread::sleep(tick);
                }
                panic!("injected fault: rank {} hung at step {step}", comm.rank())
            }
            FaultKind::SlowMs(ms) => std::thread::sleep(Duration::from_millis(ms)),
        }
    }
}

/// The set of ranks whose memory died with this failure: the root cause,
/// every fatal fault that fired in the segment that just died (several
/// ranks can panic at the same boundary; `try_run_with` reports only the
/// first), and every co-scheduled fatal fault at or before the failing
/// step that had not fired yet — the cluster unwound before it could
/// trigger, but the scenario it models (several machines lost at once)
/// means its rank's RAM must not be trusted either. Unfired faults are
/// marked fired so they don't re-kill the resumed run at a replayed step.
fn lost_ranks(failure: &RankFailure, armed: &[ArmedFault], segment: usize) -> Vec<usize> {
    let mut lost = vec![failure.rank];
    for a in armed {
        if !matches!(a.fault.kind, FaultKind::Panic | FaultKind::Hang)
            || a.fault.step > failure.step
        {
            continue;
        }
        if a.fired.swap(true, Ordering::SeqCst) {
            if a.fired_segment.load(Ordering::SeqCst) == segment {
                lost.push(a.fault.rank);
            }
        } else {
            a.fired_segment.store(segment, Ordering::SeqCst);
            lost.push(a.fault.rank);
        }
    }
    lost.sort_unstable();
    lost.dedup();
    lost
}

/// Supervisor policy: watchdog deadline, restart budget, and the
/// degraded-topology ladder consumed one rung per restart.
#[derive(Debug, Clone)]
pub struct SupervisorOptions {
    /// Watchdog deadline for every supervised cluster run.
    pub deadline: Duration,
    /// Restarts allowed before the supervisor gives up.
    pub max_restarts: usize,
    /// Topologies to fall back to, in order, one per restart (e.g.
    /// TP2×PP2×DP2 → TP2×PP2×DP1 → TP1×PP2). When the ladder is
    /// exhausted the last active topology is retried.
    pub ladder: Vec<ParallelConfig>,
    /// Faults to inject (merged with [`RANK_FAULTS_ENV`] at
    /// [`supervise`] entry).
    pub faults: Vec<RankFault>,
    /// Peer-replication factor for the in-memory hot checkpoint tier:
    /// every save, each rank pushes its shard to this many successor
    /// ranks, and recovery tries the surviving RAM copies before falling
    /// back to disk. `None` disables the tier (disk-only recovery, the
    /// pre-hot behaviour). Must be ≥ 1 and < the smallest world size the
    /// run can degrade to.
    pub hot_replicas: Option<usize>,
}

impl Default for SupervisorOptions {
    fn default() -> SupervisorOptions {
        SupervisorOptions {
            deadline: ClusterOptions::default().deadline,
            max_restarts: 3,
            ladder: Vec::new(),
            faults: Vec::new(),
            hot_replicas: None,
        }
    }
}

/// One recovery cycle: what failed, and how the run resumed.
#[derive(Debug, Clone)]
pub struct RestartEvent {
    /// Root-cause rank of the failure.
    pub rank: usize,
    /// Step the failing rank had reached.
    pub step: u64,
    /// Stringified panic payload.
    pub payload: String,
    /// Checkpoint step the run resumed from (`None` = fresh restart, no
    /// committed checkpoint existed).
    pub resume_step: Option<u64>,
    /// Steps of progress lost (failing step − resumed step).
    pub lost_steps: u64,
    /// Topology of the resumed segment.
    pub parallel: ParallelConfig,
    /// Wall-clock milliseconds from observing the failure to having the
    /// resume plan ready (teardown + retention lookup + convert).
    pub recovery_ms: u64,
    /// Which tier served the resume state: `"peer"` when the hot tier
    /// assembled the checkpoint from surviving RAM replicas, `"disk"`
    /// when the run fell back to the latest committed checkpoint (or
    /// restarted fresh).
    pub source: String,
}

/// The outcome of a supervised run.
#[derive(Debug, Clone)]
pub struct SuperviseReport {
    /// Per-segment results; the last segment is the one that completed
    /// the plan.
    pub segments: Vec<RunResult>,
    /// One entry per recovery cycle, in order.
    pub restarts: Vec<RestartEvent>,
}

impl SuperviseReport {
    /// The completed final segment.
    pub fn final_segment(&self) -> &RunResult {
        self.segments.last().expect("supervise returns >=1 segment")
    }
}

/// Run `plan` under supervision: inject scheduled faults, and on each
/// rank failure resume from the latest committed checkpoint under the
/// next topology of the ladder. Returns when the plan's
/// `until_iteration` is reached or errors once the restart budget is
/// spent.
pub fn supervise(
    plan: &TrainPlan,
    opts: &SupervisorOptions,
) -> Result<SuperviseReport, TrainError> {
    let mut faults: Vec<RankFault> = opts.faults.clone();
    faults.extend(faults_from_env().map_err(TrainError::Config)?);
    let armed: Vec<ArmedFault> = faults
        .into_iter()
        .map(|fault| ArmedFault {
            fault,
            fired: AtomicBool::new(false),
            fired_segment: AtomicUsize::new(usize::MAX),
        })
        .collect();

    let hot = match opts.hot_replicas {
        None => None,
        Some(0) => {
            return Err(TrainError::Config(
                "hot_replicas must be >= 1 (use None to disable the hot tier)".to_string(),
            ))
        }
        Some(k) => {
            // The factor must leave room for K distinct successor ranks in
            // *every* topology the run can degrade to, or a late rung would
            // wrap the placement ring onto the source rank itself.
            let min_world = std::iter::once(plan.config.parallel)
                .chain(opts.ladder.iter().copied())
                .map(|p| p.world_size())
                .min()
                .unwrap_or(1);
            if k >= min_world {
                return Err(TrainError::Config(format!(
                    "hot_replicas ({k}) must be < the smallest world size the run \
                     can degrade to ({min_world})"
                )));
            }
            Some(crate::hot::HotTier::new(k))
        }
    };

    let mut current = plan.clone();
    let mut ladder = opts.ladder.iter();
    let mut report = SuperviseReport {
        segments: Vec::new(),
        restarts: Vec::new(),
    };
    loop {
        let segment = report.restarts.len();
        match supervised_segment(&current, opts.deadline, &armed, segment, hot.as_ref()) {
            Ok(result) => {
                report.segments.push(result);
                return Ok(report);
            }
            Err(SegmentError::Hard(e)) => return Err(e),
            Err(SegmentError::Failure(failure)) => {
                let t_recover = Instant::now();
                let _detect = trace::span(TraceCat::Recovery, "recover");
                if ucp_telemetry::enabled() {
                    ucp_telemetry::count("recovery/failures", 1);
                }
                if report.restarts.len() >= opts.max_restarts {
                    return Err(TrainError::Config(format!(
                        "supervisor: restart budget ({}) exhausted; last failure: {failure}",
                        opts.max_restarts
                    )));
                }
                let dir = current.checkpoint_dir.clone().ok_or_else(|| {
                    TrainError::Config(format!(
                        "supervisor: no checkpoint_dir to recover from after: {failure}"
                    ))
                })?;
                if failure.payload.contains("watchdog") {
                    journal(
                        &dir,
                        &ucp_storage::JournalEvent::Watchdog {
                            rank: failure.rank,
                            step: failure.step,
                            detail: failure.payload.clone(),
                        },
                    )?;
                }
                journal(
                    &dir,
                    &ucp_storage::JournalEvent::RecoveryBegin {
                        rank: failure.rank,
                        step: failure.step,
                        cause: failure.payload.clone(),
                    },
                )?;
                if let Some(tier) = &hot {
                    tier.mark_lost(&lost_ranks(&failure, &armed, segment));
                }
                if let Some(next) = ladder.next() {
                    current.config.parallel = *next;
                }
                // Tiered recovery: surviving RAM replicas first, disk only
                // when the hot copy is incomplete or stale.
                let mut source = "disk".to_string();
                let mut resume_step = None;
                if let Some(tier) = &hot {
                    journal(
                        &dir,
                        &ucp_storage::JournalEvent::HotRecoveryBegin { step: failure.step },
                    )?;
                    let hot_resume = tier.try_recover().filter(|(ckpt, _)| {
                        // A committed disk checkpoint newer than the hot copy
                        // wins — survivors only retain the last few saves, so
                        // a long demotion backlog cannot happen, but a disk
                        // save that completed after the newest surviving
                        // replica generation can.
                        layout::read_latest(&dir).is_none_or(|d| d <= ckpt.step())
                    });
                    match hot_resume {
                        Some((ckpt, served)) => {
                            let step = ckpt.step();
                            journal(
                                &dir,
                                &ucp_storage::JournalEvent::HotRecoveryEnd {
                                    served_ranks: served,
                                    fallback: false,
                                },
                            )?;
                            ucp_telemetry::count("recovery/source_peer", 1);
                            current.resume = ResumeMode::Hot {
                                checkpoint: std::sync::Arc::new(ckpt),
                            };
                            source = "peer".to_string();
                            resume_step = Some(step);
                        }
                        None => {
                            journal(
                                &dir,
                                &ucp_storage::JournalEvent::HotRecoveryEnd {
                                    served_ranks: Vec::new(),
                                    fallback: true,
                                },
                            )?;
                            ucp_telemetry::count("recovery/fallback_disk", 1);
                        }
                    }
                }
                if source != "peer" {
                    resume_step = recovery_resume(&dir, &mut current)?;
                }
                let lost_steps = failure.step.saturating_sub(resume_step.unwrap_or(0));
                let recovery_ms = t_recover.elapsed().as_millis() as u64;
                journal(
                    &dir,
                    &ucp_storage::JournalEvent::RecoveryEnd {
                        resume_step,
                        lost_steps,
                        recovery_ms,
                        parallel: current.config.parallel.label(),
                        source: source.clone(),
                    },
                )?;
                if ucp_telemetry::enabled() {
                    ucp_telemetry::count("recovery/restarts", 1);
                    ucp_telemetry::count("recovery/lost_steps", lost_steps);
                    ucp_telemetry::observe("recovery/recovery_ms", recovery_ms);
                }
                eprintln!(
                    "supervisor: rank {} failed at step {} ({}); resuming {} under {}",
                    failure.rank,
                    failure.step,
                    failure.payload,
                    match (&source[..], resume_step) {
                        ("peer", Some(s)) => format!("from peer-memory replicas at step {s}"),
                        (_, Some(s)) => format!("from committed step {s}"),
                        (_, None) => "fresh (no committed checkpoint)".to_string(),
                    },
                    current.config.parallel.label(),
                );
                report.restarts.push(RestartEvent {
                    rank: failure.rank,
                    step: failure.step,
                    payload: failure.payload,
                    resume_step,
                    lost_steps,
                    parallel: current.config.parallel,
                    recovery_ms,
                    source,
                });
            }
        }
    }
}

/// Append a lifecycle event to the run journal under `dir`. The
/// supervisor is single-threaded at the point of recovery, so these
/// records are totally ordered with the driver's save events.
fn journal(dir: &std::path::Path, event: &ucp_storage::JournalEvent) -> Result<(), TrainError> {
    ucp_storage::journal::append(dir, event).map_err(|e| TrainError::Ucp(e.into()))
}

/// Point `current.resume` at the latest committed checkpoint under
/// `dir`, converting it to universal form first if that has not happened
/// yet. Returns the resume step (`None` → fresh restart).
fn recovery_resume(
    dir: &std::path::Path,
    current: &mut TrainPlan,
) -> Result<Option<u64>, TrainError> {
    match layout::read_latest(dir) {
        Some(step) => {
            let universal = layout::universal_dir(dir, step);
            if !layout::manifest_path(&universal).exists() {
                let _convert = trace::span(TraceCat::Recovery, "convert");
                crate::driver::convert_checkpoint(dir, step, &ConvertOptions::default())?;
            } else {
                // Born-universal tree: the save pipeline already published
                // the atoms, so recovery skips the convert pass entirely.
                ucp_telemetry::count("recovery/convert_skipped", 1);
            }
            current.resume = ResumeMode::Universal {
                dir: dir.to_path_buf(),
                step,
            };
            Ok(Some(step))
        }
        None => {
            current.resume = ResumeMode::Fresh;
            Ok(None)
        }
    }
}

enum SegmentError {
    /// A rank died; recoverable.
    Failure(RankFailure),
    /// A non-failure error (bad config, unreadable checkpoint, ...).
    Hard(TrainError),
}

/// One supervised cluster run: [`crate::train_run`] with the watchdog
/// deadline applied and [`fault_point`] consulted at every step boundary.
/// The training math is identical to `train_run` — the hook only sleeps
/// or panics — so surviving segments stay bitwise-comparable to
/// unsupervised runs.
fn supervised_segment(
    plan: &TrainPlan,
    deadline: Duration,
    armed: &[ArmedFault],
    segment: usize,
    hot: Option<&crate::hot::HotTier>,
) -> Result<RunResult, SegmentError> {
    plan.config
        .validate()
        .map_err(|e| SegmentError::Hard(TrainError::Config(e)))?;
    let world = plan.config.parallel.world_size();
    let session = open_resume_session(&plan.resume).map_err(SegmentError::Hard)?;
    if let Some(tier) = hot {
        // Fresh mesh + empty replica banks for the new topology: epochs
        // restart per segment, and stale replicas from a previous shape
        // cannot masquerade as current ones.
        tier.begin_segment(world);
    }
    let cluster_opts = ClusterOptions { deadline };
    let results =
        Cluster::try_run_with(world, &cluster_opts, |comm| -> Result<RunResult, String> {
            let _resume = trace::span(TraceCat::Recovery, "segment");
            let t_load = Instant::now();
            let mut engine = match &plan.resume {
                ResumeMode::Fresh => RankEngine::fresh(plan.config.clone(), comm),
                ResumeMode::Native { dir, step } => {
                    RankEngine::resume_native(plan.config.clone(), comm, dir, *step)
                }
                ResumeMode::Universal { .. } => RankEngine::resume_universal_session(
                    plan.config.clone(),
                    comm,
                    session.as_ref().expect("session opened for Universal"),
                ),
                ResumeMode::Hot { checkpoint } => RankEngine::resume_universal_source(
                    plan.config.clone(),
                    comm,
                    &crate::engine::UniversalSource::Memory(checkpoint.as_ref()),
                ),
            }
            .map_err(|e| e.to_string())?;
            let load_secs = t_load.elapsed().as_secs_f64();

            let start_iteration = engine.iteration;
            let mut losses = Vec::new();
            let mut metrics = Vec::new();
            let mut save_secs = 0.0f64;
            while engine.iteration < plan.until_iteration {
                let it = engine.iteration;
                comm.set_step(it);
                fault_point(armed, comm, it, segment);
                let loss = engine.train_iteration().map_err(|e| e.to_string())?;
                losses.push((it + 1, loss));
                metrics.extend(engine.last_stats);
                if let (Some(every), Some(dir)) = (plan.checkpoint_every, &plan.checkpoint_dir) {
                    if engine.iteration % every == 0 {
                        let t0 = Instant::now();
                        let step = engine.iteration;
                        if comm.rank() == 0 {
                            journal(dir, &ucp_storage::JournalEvent::SaveStarted { step })
                                .map_err(|e| e.to_string())?;
                        }
                        engine.save_checkpoint(dir).map_err(|e| e.to_string())?;
                        if comm.rank() == 0 {
                            journal(dir, &ucp_storage::JournalEvent::NativePersisted { step })
                                .map_err(|e| e.to_string())?;
                        }
                        if let Some(tier) = hot {
                            // Replicate the freshly saved shard into K peer
                            // banks. All ranks save at the same boundary, so
                            // the wave completes before any fault can fire.
                            // A push failure degrades to disk-only recovery
                            // for this generation — never fails the run.
                            let dirty = engine.take_dirty();
                            match tier.replicate(
                                comm.rank(),
                                step,
                                engine.hot_shard(),
                                &dirty,
                                deadline,
                            ) {
                                Ok(bytes) => {
                                    if comm.rank() == 0 {
                                        journal(
                                            dir,
                                            &ucp_storage::JournalEvent::HotReplicated {
                                                step,
                                                ranks: comm.world_size() as u64,
                                                bytes,
                                            },
                                        )
                                        .map_err(|e| e.to_string())?;
                                    }
                                }
                                Err(e) => {
                                    ucp_telemetry::count("hot/replica_errors", 1);
                                    eprintln!(
                                        "hot tier: rank {} replication at step {step} \
                                         failed ({e}); this generation recovers from disk",
                                        comm.rank()
                                    );
                                }
                            }
                        }
                        save_secs += t0.elapsed().as_secs_f64();
                    }
                }
            }
            Ok(RunResult {
                losses,
                start_iteration,
                save_secs,
                load_secs,
                metrics,
            })
        });
    match results {
        Ok(per_rank) => collect_results(per_rank).map_err(SegmentError::Hard),
        Err(failure) => Err(SegmentError::Failure(failure)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fault_schedules() {
        let faults = parse_faults(
            "rank=1,step=3,kind=panic; rank=0,step=5,kind=hang;rank=2,step=1,kind=slow:250",
        )
        .unwrap();
        assert_eq!(
            faults,
            vec![
                RankFault {
                    rank: 1,
                    step: 3,
                    kind: FaultKind::Panic
                },
                RankFault {
                    rank: 0,
                    step: 5,
                    kind: FaultKind::Hang
                },
                RankFault {
                    rank: 2,
                    step: 1,
                    kind: FaultKind::SlowMs(250)
                },
            ]
        );
    }

    #[test]
    fn recovery_skips_convert_when_manifest_exists() {
        use ucp_model::ModelConfig;
        use ucp_parallel::{ParallelConfig, ZeroStage};

        let dir = std::env::temp_dir().join(format!(
            "ucp_supervisor_skip_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // A born-universal tree: the native marker names step 4 and the
        // universal manifest is already on disk. The tree is otherwise
        // empty, so if recovery tried to convert anyway it would fail —
        // returning Ok proves the skip branch was taken.
        let universal = layout::universal_dir(&dir, 4);
        std::fs::create_dir_all(&universal).unwrap();
        std::fs::write(layout::manifest_path(&universal), b"stub").unwrap();
        layout::write_latest(&dir, 4).unwrap();
        let mut plan = TrainPlan {
            config: crate::TrainConfig::quick(
                ModelConfig::gpt3_tiny(),
                ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
                21,
            ),
            until_iteration: 6,
            resume: ResumeMode::Fresh,
            checkpoint_every: Some(2),
            checkpoint_dir: Some(dir.clone()),
        };
        assert_eq!(recovery_resume(&dir, &mut plan).unwrap(), Some(4));
        assert!(matches!(plan.resume, ResumeMode::Universal { step: 4, .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panic_fault_triggers_degraded_resume() {
        use ucp_model::ModelConfig;
        use ucp_parallel::{ParallelConfig, ZeroStage};

        let dir = std::env::temp_dir().join(format!(
            "ucp_supervisor_panic_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = crate::TrainConfig::quick(
            ModelConfig::gpt3_tiny(),
            ParallelConfig::new(1, 1, 2, 1, ZeroStage::Zero1),
            21,
        );
        let plan = TrainPlan {
            config: cfg,
            until_iteration: 6,
            resume: ResumeMode::Fresh,
            checkpoint_every: Some(2),
            checkpoint_dir: Some(dir.clone()),
        };
        let opts = SupervisorOptions {
            deadline: Duration::from_secs(5),
            max_restarts: 2,
            ladder: vec![ParallelConfig::single()],
            faults: vec![RankFault {
                rank: 1,
                step: 3,
                kind: FaultKind::Panic,
            }],
            hot_replicas: None,
        };
        let report = supervise(&plan, &opts).unwrap();
        assert_eq!(report.restarts.len(), 1, "exactly one recovery cycle");
        let restart = &report.restarts[0];
        assert_eq!(restart.rank, 1);
        assert_eq!(restart.step, 3);
        assert!(restart.payload.contains("injected fault"), "{restart:?}");
        // Checkpoints landed at steps 2 (then the kill hit before step 3
        // finished): the resume starts from the last committed step.
        assert_eq!(restart.resume_step, Some(2));
        assert_eq!(restart.lost_steps, 1);
        assert_eq!(restart.parallel, ParallelConfig::single());
        let last = report.final_segment();
        assert_eq!(last.start_iteration, 2);
        assert_eq!(last.losses.last().unwrap().0, 6);
        assert!(last.losses.iter().all(|(_, l)| l.is_finite()));
        // The run journal recorded the full lifecycle in order: the saves
        // around the failure and exactly one recovery begin/end pair.
        let journal = ucp_storage::journal::read(&dir).unwrap();
        assert!(!journal.torn_tail, "no crash mid-append happened");
        assert_eq!(journal.malformed, 0);
        assert_eq!(journal.last_step("save_started"), Some(6));
        assert_eq!(journal.last_step("native_persisted"), Some(6));
        assert_eq!(journal.of_kind("recovery_begin").count(), 1);
        let ends: Vec<_> = journal.of_kind("recovery_end").collect();
        assert_eq!(ends.len(), 1);
        match &ends[0].event {
            ucp_storage::JournalEvent::RecoveryEnd {
                resume_step,
                lost_steps,
                parallel,
                ..
            } => {
                assert_eq!(*resume_step, Some(2));
                assert_eq!(*lost_steps, 1);
                assert_eq!(parallel, &ParallelConfig::single().label());
            }
            other => panic!("unexpected event: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_budget_exhaustion_is_an_error() {
        use ucp_model::ModelConfig;
        use ucp_parallel::ParallelConfig;

        let dir = std::env::temp_dir().join(format!(
            "ucp_supervisor_budget_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = crate::TrainConfig::quick(ModelConfig::gpt3_tiny(), ParallelConfig::single(), 5);
        let plan = TrainPlan {
            config: cfg,
            until_iteration: 4,
            resume: ResumeMode::Fresh,
            checkpoint_every: Some(2),
            checkpoint_dir: Some(dir.clone()),
        };
        // Two scheduled kills but a budget of one restart.
        let opts = SupervisorOptions {
            deadline: Duration::from_secs(5),
            max_restarts: 1,
            ladder: Vec::new(),
            faults: vec![
                RankFault {
                    rank: 0,
                    step: 1,
                    kind: FaultKind::Panic,
                },
                RankFault {
                    rank: 0,
                    step: 3,
                    kind: FaultKind::Panic,
                },
            ],
            hot_replicas: None,
        };
        let err = supervise(&plan, &opts).unwrap_err();
        assert!(
            err.to_string().contains("restart budget"),
            "unexpected error: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_fault_is_not_a_failure() {
        use ucp_model::ModelConfig;
        use ucp_parallel::ParallelConfig;

        let cfg = crate::TrainConfig::quick(ModelConfig::gpt3_tiny(), ParallelConfig::single(), 9);
        let plan = TrainPlan::simple(cfg, 3);
        let opts = SupervisorOptions {
            deadline: Duration::from_secs(5),
            faults: vec![RankFault {
                rank: 0,
                step: 1,
                kind: FaultKind::SlowMs(30),
            }],
            ..SupervisorOptions::default()
        };
        let report = supervise(&plan, &opts).unwrap();
        assert!(report.restarts.is_empty());
        assert_eq!(report.final_segment().losses.len(), 3);
    }

    #[test]
    fn rejects_malformed_fault_schedules() {
        assert!(parse_faults("rank=1,step=3").is_err()); // missing kind
        assert!(parse_faults("rank=1,step=3,kind=explode").is_err());
        assert!(parse_faults("rank=x,step=3,kind=panic").is_err());
        assert!(parse_faults("rank=1,step=3,kind=slow:fast").is_err());
        assert!(parse_faults("bogus").is_err());
        assert!(parse_faults("").unwrap().is_empty());
    }
}
